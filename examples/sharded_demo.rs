//! Sharded scheduling demo: the same declarative SS2PL rule, now running on
//! four shards behind a footprint-hash router — driven through exactly the
//! same `Session` surface as the unsharded quickstart, with a cross-shard
//! transaction taking the serialized escalation lane.
//!
//! Run with: `cargo run --release --example sharded_demo`
//!
//! Three phases:
//!  1. a burst of single-shard transactions fans out over the fleet,
//!     pipelined from one session (no shard ever talks to another),
//!  2. one spanning transaction gets escalated: the lane freezes its two
//!     home shards, proves conflict-freedom with the same declarative rule
//!     over the union of their history relations, and executes inside the
//!     epoch,
//!  3. the unified report shows where the time went.

use declsched::{shard_of, Protocol, ProtocolKind, SchedulerConfig, TriggerPolicy};
use session::{Scheduler, Txn};

fn main() {
    const SHARDS: usize = 4;
    const ROWS: usize = 10_000;

    // Only this builder differs from the unsharded quickstart.
    let scheduler = Scheduler::builder()
        .policy(Protocol::algebra(ProtocolKind::Ss2pl))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 16,
            },
            ..SchedulerConfig::default()
        })
        .table("accounts", ROWS)
        .shards(SHARDS)
        .build()
        .expect("fleet starts");
    let mut session = scheduler.connect();

    // Phase 1: 64 single-object transactions, uniformly spread and fully
    // pipelined.  Each routes to its object's home shard and runs there
    // without any cross-shard synchronization.
    println!("phase 1: 64 single-shard transactions across {SHARDS} shards (pipelined)");
    let mut tickets = Vec::new();
    for ta in 1..=64u64 {
        let object = (ta * 151) as i64 % ROWS as i64;
        let txn = Txn::new(ta).write(object, ta as i64).commit();
        println!(
            "   T{ta:<3} updates object {object:<5} -> shard {}",
            shard_of(object, SHARDS)
        );
        tickets.push(session.submit(txn).expect("fleet is up"));
    }
    for ticket in tickets {
        ticket.wait().expect("single-shard transactions commit");
    }

    // Phase 2: a transaction whose footprint spans two shards.  The router
    // escalates it; the lane freezes both home shards, evaluates the SS2PL
    // rule over their merged history relations and executes in the epoch.
    let a: i64 = (0..ROWS as i64)
        .find(|&o| shard_of(o, SHARDS) == 0)
        .expect("shard 0 owns objects");
    let b: i64 = (0..ROWS as i64)
        .find(|&o| shard_of(o, SHARDS) == 1)
        .expect("shard 1 owns objects");
    let spanning = Txn::new(100).write(a, -1).write(b, 1).commit();
    println!(
        "\nphase 2: T100 moves value between object {a} (shard 0) and object {b} (shard 1), footprint {:?}",
        spanning.footprint()
    );
    session
        .execute(spanning)
        .expect("the spanning transaction commits through the escalation lane");
    println!("   escalated, barrier-executed and committed on both shards");

    // Phase 3: the unified report (with its sharded detail).
    let report = scheduler.shutdown();
    let detail = report.sharded.as_ref().expect("sharded deployment");
    println!("\nphase 3: fleet report (backend={})", report.backend);
    println!(
        "   transactions routed      : {} ({} cross-shard)",
        report.transactions, detail.cross_shard_transactions
    );
    println!(
        "   escalation lane          : {} escalations, {} retries, {} requests",
        detail.escalation.escalations,
        detail.escalation.retries,
        detail.escalation.escalated_requests
    );
    println!(
        "   executed on the fleet    : {} data statements, {} commits",
        report.dispatch.executed, report.dispatch.commits
    );
    println!(
        "   scheduling rounds        : {} across all shards (max batch {}, peak pending {})",
        report.rounds, report.scheduler.max_batch, detail.peak_pending
    );
    for shard in &detail.reports {
        println!(
            "   shard {}: {} rounds, {} scheduled, {} writes, {} commits",
            shard.shard,
            shard.scheduler.rounds,
            shard.scheduler.requests_scheduled,
            shard.dispatch.writes,
            shard.dispatch.commits
        );
    }
    println!(
        "\n{} requests/s across the fleet ({:.1} ms wall clock)",
        report.requests_per_sec() as u64,
        report.wall.as_secs_f64() * 1e3
    );
}
