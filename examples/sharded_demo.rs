//! Sharded scheduling demo: the same declarative SS2PL rule, now running on
//! four shards behind a footprint-hash router, with a cross-shard
//! transaction taking the serialized escalation lane.
//!
//! Run with: `cargo run --release --example sharded_demo`
//!
//! Three phases:
//!  1. a burst of single-shard transactions fans out over the fleet (no
//!     shard ever talks to another),
//!  2. one spanning transaction gets escalated: the lane freezes its two
//!     home shards, proves conflict-freedom with the same declarative rule
//!     over the union of their history relations, and executes inside the
//!     epoch,
//!  3. the merged fleet metrics show where the time went.

use declsched::{shard_of, Protocol, ProtocolKind, Request, SchedulerConfig, TriggerPolicy};
use shard::{ShardConfig, ShardRouter};

fn main() {
    const SHARDS: usize = 4;
    const ROWS: usize = 10_000;

    let config = ShardConfig::new(SHARDS, Protocol::algebra(ProtocolKind::Ss2pl))
        .with_scheduler(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 16,
            },
            ..SchedulerConfig::default()
        })
        .with_table("accounts", ROWS);
    let router = ShardRouter::start(config).expect("fleet starts");

    // Phase 1: 64 single-object transactions, uniformly spread.  Each routes
    // to its object's home shard and runs there without any cross-shard
    // synchronization.
    println!("phase 1: 64 single-shard transactions across {SHARDS} shards");
    let mut tickets = Vec::new();
    for ta in 1..=64u64 {
        let object = (ta * 151) as i64 % ROWS as i64;
        let txn = vec![Request::write(0, ta, 0, object), Request::commit(0, ta, 1)];
        println!(
            "   T{ta:<3} updates object {object:<5} -> shard {}",
            shard_of(object, SHARDS)
        );
        tickets.push(router.submit_transaction(txn).expect("fleet is up"));
    }
    for ticket in tickets {
        ticket.wait().expect("single-shard transactions commit");
    }

    // Phase 2: a transaction whose footprint spans two shards.  The router
    // escalates it; the lane freezes both home shards, evaluates the SS2PL
    // rule over their merged history relations and executes in the epoch.
    let a: i64 = (0..ROWS as i64)
        .find(|&o| shard_of(o, SHARDS) == 0)
        .expect("shard 0 owns objects");
    let b: i64 = (0..ROWS as i64)
        .find(|&o| shard_of(o, SHARDS) == 1)
        .expect("shard 1 owns objects");
    println!("\nphase 2: T100 moves value between object {a} (shard 0) and object {b} (shard 1)");
    router
        .execute_transaction(vec![
            Request::write(0, 100, 0, a),
            Request::write(0, 100, 1, b),
            Request::commit(0, 100, 2),
        ])
        .expect("the spanning transaction commits through the escalation lane");
    println!("   escalated, barrier-executed and committed on both shards");

    // Phase 3: the merged fleet metrics.
    let report = router.shutdown();
    let m = &report.metrics;
    println!("\nphase 3: fleet report");
    println!(
        "   transactions routed      : {} ({} cross-shard, rate {:.1}%)",
        m.transactions,
        m.cross_shard_transactions,
        m.cross_shard_rate() * 100.0
    );
    println!(
        "   escalation lane          : {} escalations, {} retries, {} requests",
        m.escalation.escalations, m.escalation.retries, m.escalation.escalated_requests
    );
    println!(
        "   executed on the fleet    : {} data statements, {} commits",
        m.dispatch.executed, m.dispatch.commits
    );
    println!(
        "   scheduling rounds        : {} across all shards (max batch {}, peak pending {})",
        m.merged.rounds, m.merged.max_batch, m.peak_pending
    );
    for shard in &report.shards {
        println!(
            "   shard {}: {} rounds, {} scheduled, {} writes, {} commits",
            shard.shard,
            shard.scheduler.rounds,
            shard.scheduler.requests_scheduled,
            shard.dispatch.writes,
            shard.dispatch.commits
        );
    }
    println!(
        "\n{} requests/s across the fleet ({:.1} ms wall clock)",
        m.throughput_rps() as u64,
        m.wall.as_secs_f64() * 1e3
    );
}
