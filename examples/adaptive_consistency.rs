//! Adaptive consistency under load — the paper's cloud-scheduling goal:
//! "reduced consistency criteria may be used during times of high load."
//!
//! Run with: `cargo run -p examples --bin adaptive_consistency`
//!
//! The scheduler is configured with an adaptive policy: SS2PL while the
//! pending load stays below a threshold, relaxed reads above it.  The example
//! drives a low-load phase and a bursty phase against the same hot rows and
//! shows the protocol switching (and admission improving) automatically.

use declsched::prelude::*;
use declsched::protocol::Backend;
use declsched::AdaptiveProtocol;

fn main() -> SchedResult<()> {
    let adaptive = AdaptiveProtocol::ss2pl_with_relaxed_overflow(Backend::Algebra, 16);
    println!(
        "adaptive policy: {} below {} pending requests, {} at or above\n",
        adaptive.normal.name(),
        adaptive.overload_threshold,
        adaptive.overload.name()
    );

    let mut scheduler = DeclarativeScheduler::new(
        adaptive,
        SchedulerConfig {
            trigger: TriggerPolicy::Always,
            ..SchedulerConfig::default()
        },
    );
    let mut dispatcher = Dispatcher::new("hot", 64)?;
    let mut next_ta = 0u64;

    // A long-running writer holds locks on the 8 hot rows throughout.
    next_ta += 1;
    let writer = next_ta;
    for object in 0..8 {
        scheduler.submit(Request::write(0, writer, object as u32, object), 0);
    }
    dispatcher.execute_batch(&scheduler.run_round(0)?)?;

    // Phase 1: light read traffic on the locked rows — strict mode defers it.
    for i in 0..6 {
        next_ta += 1;
        scheduler.submit(Request::read(0, next_ta, 0, i % 8), 1);
    }
    let light = scheduler.run_round(1)?;
    println!(
        "light load : protocol={:<13} pending={:<3} admitted={}",
        light.protocol,
        light.pending_before,
        light.len()
    );
    dispatcher.execute_batch(&light)?;

    // Phase 2: a burst of 40 readers arrives — the policy switches to relaxed
    // reads and admits them despite the write locks.
    for i in 0..40 {
        next_ta += 1;
        scheduler.submit(Request::read(0, next_ta, 0, i % 8), 2);
    }
    let burst = scheduler.run_round(2)?;
    println!(
        "burst load : protocol={:<13} pending={:<3} admitted={}",
        burst.protocol,
        burst.pending_before,
        burst.len()
    );
    dispatcher.execute_batch(&burst)?;

    // Phase 3: the burst is over; the writer commits and strict mode resumes.
    scheduler.submit(Request::commit(0, writer, 8), 3);
    let calm = scheduler.run_round(3)?;
    println!(
        "calm       : protocol={:<13} pending={:<3} admitted={}",
        calm.protocol,
        calm.pending_before,
        calm.len()
    );
    dispatcher.execute_batch(&calm)?;
    let tail = scheduler.run_round(4)?;
    dispatcher.execute_batch(&tail)?;

    let metrics = scheduler.metrics();
    println!(
        "\n{} rounds, {} of them in overload mode; {} requests scheduled in total",
        metrics.rounds, metrics.overload_rounds, metrics.requests_scheduled
    );
    println!("policy label: {}", scheduler.policy_label());
    Ok(())
}
