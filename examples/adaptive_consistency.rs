//! Adaptive consistency under load — the paper's cloud-scheduling goal:
//! "reduced consistency criteria may be used during times of high load."
//!
//! Run with: `cargo run --example adaptive_consistency`
//!
//! The deployment is built with an adaptive policy: SS2PL while the pending
//! load stays below a threshold, relaxed reads above it.  A long-running
//! writer holds locks on the hot rows; light read traffic is deferred by
//! the strict rule, then a burst pushes the scheduler into overload mode
//! and the relaxed rule admits the readers despite the write locks — all
//! driven through the same pipelined `Session` surface.

use declsched::protocol::Backend;
use declsched::{AdaptiveProtocol, SchedResult, SchedulerConfig, TriggerPolicy};
use session::{Scheduler, Txn};
use std::time::Duration;

fn main() -> SchedResult<()> {
    let adaptive = AdaptiveProtocol::ss2pl_with_relaxed_overflow(Backend::Algebra, 16);
    println!(
        "adaptive policy: {} below {} pending requests, {} at or above\n",
        adaptive.normal.name(),
        adaptive.overload_threshold,
        adaptive.overload.name()
    );

    let scheduler = Scheduler::builder()
        .policy(adaptive)
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 2,
                threshold: 64,
            },
            ..SchedulerConfig::default()
        })
        .table("hot", 64)
        .build()?;
    let mut session = scheduler.connect();

    // A long-running writer takes locks on the 8 hot rows and holds them
    // (no terminal yet).
    let mut writer = Txn::new(1);
    for object in 0..8 {
        writer = writer.write(object, object);
    }
    session.submit(writer)?.wait()?;
    println!("writer T1 holds write locks on the 8 hot rows");

    // Phase 1: light read traffic on the locked rows — strict mode defers
    // it, so the tickets stay unresolved.
    for i in 0..6i64 {
        session.submit(Txn::new(2 + i as u64).read(i % 8))?;
    }
    std::thread::sleep(Duration::from_millis(20));
    println!(
        "light load : {} readers still in flight (ss2pl defers reads on locked rows)",
        session.in_flight()
    );

    // Phase 2: a burst of 40 readers arrives — pending load crosses the
    // threshold, the policy switches to relaxed reads and admits everyone
    // despite the write locks.
    for i in 0..40i64 {
        session.submit(Txn::new(100 + i as u64).read(i % 8))?;
    }
    session.drain()?;
    println!("burst load : all 46 readers completed under the relaxed rule");

    // Phase 3: the burst is over; the writer commits and strict mode
    // resumes for whatever comes next.
    session.submit(Txn::resume(1, 8).commit())?.wait()?;
    println!("calm       : writer committed, locks released");

    let report = scheduler.shutdown();
    println!(
        "\n{} rounds, {} of them in overload mode; {} requests scheduled in total on the {} backend",
        report.rounds, report.scheduler.overload_rounds, report.scheduler.requests_scheduled, report.backend
    );
    Ok(())
}
