//! Quickstart: schedule a handful of conflicting transactions declaratively.
//!
//! Run with: `cargo run -p examples --bin quickstart`
//!
//! Two clients race for the same row.  The SS2PL protocol — defined as a
//! declarative rule, not as scheduler code — lets the first writer through,
//! defers the second transaction until the first commits, and the dispatcher
//! executes every scheduled batch on a server whose own locking is disabled.

use declsched::prelude::*;
use declsched::protocol::Backend;

fn main() -> SchedResult<()> {
    // 1. A declarative scheduler running the paper's SS2PL rule (Listing 1).
    let mut scheduler = DeclarativeScheduler::new(
        Protocol::new(ProtocolKind::Ss2pl, Backend::Algebra),
        SchedulerConfig {
            trigger: TriggerPolicy::Always,
            ..SchedulerConfig::default()
        },
    );
    // 2. A server with its native scheduler disabled: the middleware is in
    //    charge of correctness now.
    let mut dispatcher = Dispatcher::new("accounts", 100)?;

    // 3. Two clients, both touching account 42.
    println!("submitting: T1 and T2 both update account 42\n");
    scheduler.submit(Request::write(0, 1, 0, 42), 0);
    scheduler.submit(Request::write(0, 2, 0, 42), 0);

    let mut now_ms = 0;
    let mut t1_committed = false;
    while scheduler.pending() > 0 || scheduler.queued() > 0 || !t1_committed {
        let batch = scheduler.run_round(now_ms)?;
        println!(
            "round {:>2}: protocol={} qualified={} deferred={} ({} µs rule evaluation)",
            batch.round,
            batch.protocol,
            batch.len(),
            batch.pending_after,
            batch.rule_eval_micros
        );
        for request in &batch.requests {
            println!("   -> dispatch {request}");
        }
        dispatcher.execute_batch(&batch)?;

        // Once T1's write is through, its client sends the commit, which
        // releases the declarative write lock and unblocks T2.
        if !t1_committed && batch.requests.iter().any(|r| r.ta == 1) {
            scheduler.submit(Request::commit(0, 1, 1), now_ms + 1);
            t1_committed = true;
        }
        now_ms += 1;
        if batch.is_empty() && scheduler.queued() == 0 && scheduler.pending() == 0 {
            break;
        }
    }
    // Flush the remaining rounds (T2's deferred write).
    while scheduler.pending() > 0 || scheduler.queued() > 0 {
        let batch = scheduler.run_round(now_ms)?;
        for request in &batch.requests {
            println!("   -> dispatch {request}");
        }
        dispatcher.execute_batch(&batch)?;
        now_ms += 1;
    }

    let metrics = scheduler.metrics();
    println!(
        "\nscheduled {} requests in {} rounds (avg batch {:.1})",
        metrics.requests_scheduled,
        metrics.rounds,
        metrics.avg_batch_size()
    );
    println!(
        "server executed {} data statements, {} commits — final value of account 42: {}",
        dispatcher.totals().executed,
        dispatcher.totals().commits,
        dispatcher
            .engine()
            .store()
            .read("accounts", 42)
            .expect("row exists")
            .values[0]
    );
    Ok(())
}
