//! Quickstart: the unified Session API over the declarative scheduler.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Two transactions race for the same row.  The SS2PL protocol — defined as
//! a declarative rule, not as scheduler code — lets the first writer
//! through, defers the second transaction until the first commits, and the
//! middleware executes every scheduled batch on a server whose own locking
//! is disabled.
//!
//! Everything goes through one surface: `Scheduler::builder()` picks the
//! deployment, `Session::submit` pipelines transactions, `Ticket::wait`
//! collects completions, `Scheduler::shutdown()` returns one unified
//! `Report`.  Swap `.shards(4)` or `.passthrough()` into the builder and
//! the same driver code runs against a sharded fleet or the native-locking
//! baseline.

use declsched::{Protocol, ProtocolKind, SchedResult, SchedulerConfig, TriggerPolicy};
use session::{Scheduler, Txn};

fn main() -> SchedResult<()> {
    // 1. One entry point for every deployment.  The default is the paper's
    //    unsharded middleware; try `.shards(4)` or `.passthrough()` here.
    let scheduler = Scheduler::builder()
        .policy(Protocol::algebra(ProtocolKind::Ss2pl))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 4,
            },
            ..SchedulerConfig::default()
        })
        .table("accounts", 100)
        .build()?;

    // 2. One session per client; submission is pipelined — both
    //    transactions are in flight before either is awaited.
    let mut session = scheduler.connect();
    println!("submitting: T1 and T2 both update account 42 (pipelined)\n");
    let t1 = session.submit(Txn::new(1).write(42, 100).commit())?;
    let t2 = session.submit(Txn::new(2).write(42, 200).commit())?;

    // 3. Tickets resolve in execution order and may be awaited in any
    //    order; the rule serialised the conflicting writes for us.
    let r2 = t2.wait()?;
    let r1 = t1.wait()?;
    println!("T{} completed ({} statements)", r1.ta, r1.statements);
    println!("T{} completed ({} statements)", r2.ta, r2.statements);

    // 4. One unified report, whatever the backend.
    let report = scheduler.shutdown();
    println!("\nexecution order on the server:");
    for request in &report.executed_log {
        println!("   -> {request}");
    }
    println!(
        "\nbackend={} rounds={} scheduled={} (avg batch {:.1})",
        report.backend,
        report.rounds,
        report.scheduler.requests_scheduled,
        report.scheduler.avg_batch_size()
    );
    println!(
        "server executed {} data statements, {} commits — final value of account 42: {}",
        report.dispatch.executed, report.dispatch.commits, report.final_rows[42]
    );
    Ok(())
}
