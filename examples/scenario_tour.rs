//! A tour of the scenario library: list every registered scenario, show
//! its arrival shape, and replay one of them through the unified Session
//! façade on two deployments.
//!
//! Run with: `cargo run --release --example scenario_tour`

use session::{Scheduler, Txn};
use simkit::arrival::ArrivalSchedule;
use workload::scenario::{registry, ScenarioParams};
use workload::ArrivalSpec;

fn main() {
    let params = ScenarioParams {
        transactions: 128,
        table_rows: 1_024,
        seed: 42,
    };

    println!("registered scenarios ({}):\n", registry().len());
    for scenario in registry() {
        let stream = scenario.generate(&params);
        let statements: usize = stream.iter().map(|t| t.statements.len()).sum();
        let arrival = match scenario.arrival() {
            ArrivalSpec::Closed { depth } => format!("closed loop, {depth} in flight"),
            ArrivalSpec::Poisson { rate_tps } => {
                format!("open loop, Poisson @ {rate_tps:.0} tps nominal")
            }
            ArrivalSpec::Bursty {
                base_tps,
                burst_tps,
                period_ms,
                burst_ms,
            } => format!(
                "open loop, bursts {burst_tps:.0}/{base_tps:.0} tps ({burst_ms}ms of every {period_ms}ms)"
            ),
        };
        println!("  {:<15} {}", scenario.name(), scenario.description());
        println!(
            "  {:<15} {} txns / {statements} statements; {arrival}",
            "",
            stream.len()
        );
        if scenario.arrival().is_open_loop() {
            let schedule =
                ArrivalSchedule::generate(&scenario.arrival(), stream.len(), params.seed);
            println!(
                "  {:<15} arrival schedule spans {:.1} ms (offered {:.0} tps)",
                "",
                schedule.duration_us() as f64 / 1e3,
                schedule.offered_tps()
            );
        }
        println!();
    }

    // Replay one scenario on two deployments through the one façade.
    let scenario = workload::scenario::by_name("order-pipeline").expect("registered");
    let stream = scenario.generate(&params);
    for shards in [0usize, 4] {
        let builder = Scheduler::builder().table("bench", params.table_rows);
        let scheduler = if shards == 0 {
            builder.unsharded()
        } else {
            builder.shards(shards)
        }
        .build()
        .expect("deployment starts");
        let mut session = scheduler.connect();
        let tickets: Vec<_> = stream
            .iter()
            .map(|t| {
                session
                    .submit(Txn::from_statements(&t.statements))
                    .expect("submission succeeds")
            })
            .collect();
        for ticket in tickets {
            ticket.wait().expect("scheduled transactions commit");
        }
        let report = scheduler.shutdown();
        println!(
            "{} replayed {} on {:?}: {} transactions, {} scheduling rounds, {:.0} commits/s",
            scenario.name(),
            if shards == 0 {
                "unsharded".to_string()
            } else {
                format!("{shards}-shard")
            },
            report.backend,
            report.transactions,
            report.rounds,
            report.commits_per_sec()
        );
    }
}
