//! Web-shop SLA scenario: premium customers ahead of free-tier customers.
//!
//! Run with: `cargo run -p examples --bin webshop_sla`
//!
//! The paper motivates declarative scheduling with service-level agreements
//! "e.g. for premium vs. free customers in Web applications".  This example
//! generates an SLA-tiered OLTP workload, runs it once under plain FIFO
//! SS2PL and once under the SLA-priority protocol, and compares how early
//! each class gets scheduled.  Only the protocol object changes — no
//! scheduler code.

use declsched::prelude::*;
use declsched::protocol::Backend;
use std::collections::HashMap;
use workload::{ClientClass, OltpSpec, SlaSpec};

fn run(policy_name: &str, protocol: Protocol) -> SchedResult<()> {
    let spec = SlaSpec {
        oltp: OltpSpec::small(12),
        premium_fraction: 0.25,
        free_fraction: 0.5,
        mean_think_time_ms: 5,
        seed: 2,
    };
    let (clients, metas) = spec.generate();
    let class_of: HashMap<u64, ClientClass> = metas.iter().map(|m| (m.txn.0, m.class)).collect();

    let mut scheduler = DeclarativeScheduler::new(
        protocol,
        SchedulerConfig {
            trigger: TriggerPolicy::Always,
            ..SchedulerConfig::default()
        },
    );
    let mut dispatcher = Dispatcher::new("shop", 500)?;

    // Submit the first request of every client's first transaction, tagged
    // with its SLA class, so one scheduling round has to arbitrate between
    // premium and free traffic.
    for client in &clients {
        let txn = &client.transactions[0];
        let stmt = &txn.statements[0];
        let meta = metas
            .iter()
            .find(|m| m.txn == txn.txn)
            .expect("meta exists");
        let request = Request::from_statement(0, stmt).with_sla(SlaMeta {
            priority: meta.class.priority(),
            class: meta.class.as_str(),
            arrival_ms: meta.arrival_ms,
            deadline_ms: meta.deadline_ms,
        });
        scheduler.submit(request, meta.arrival_ms);
    }

    let batch = scheduler.run_round(100)?;
    dispatcher.execute_batch(&batch)?;

    // Dispatch position per class: lower is better.
    let mut first_position: HashMap<&'static str, usize> = HashMap::new();
    for (pos, request) in batch.requests.iter().enumerate() {
        let class = class_of[&request.ta].as_str();
        first_position.entry(class).or_insert(pos);
    }
    println!("--- {policy_name} ---");
    println!("dispatch order ({} requests):", batch.len());
    for (pos, request) in batch.requests.iter().enumerate() {
        println!(
            "  {:>2}. T{:<3} {} (class {})",
            pos + 1,
            request.ta,
            request.op,
            class_of[&request.ta].as_str()
        );
    }
    for class in ["premium", "standard", "free"] {
        if let Some(pos) = first_position.get(class) {
            println!("  first {class} request dispatched at position {}", pos + 1);
        }
    }
    println!();
    Ok(())
}

fn main() -> SchedResult<()> {
    run(
        "FIFO SS2PL (arrival order)",
        Protocol::new(ProtocolKind::Ss2pl, Backend::Algebra),
    )?;
    run(
        "SLA priority (premium first)",
        Protocol::new(ProtocolKind::SlaPriority, Backend::Algebra),
    )?;
    run(
        "Earliest deadline first",
        Protocol::new(ProtocolKind::EarliestDeadline, Backend::Datalog),
    )?;
    println!("Same correctness rule, three QoS policies — only the declarative protocol changed.");
    Ok(())
}
