//! Web-shop SLA scenario: premium customers ahead of free-tier customers.
//!
//! Run with: `cargo run --example webshop_sla`
//!
//! The paper motivates declarative scheduling with service-level agreements
//! "e.g. for premium vs. free customers in Web applications".  This example
//! generates an SLA-tiered OLTP workload, drives it through the unified
//! `Session` API once under plain FIFO SS2PL and once under the
//! SLA-priority protocol, and compares how early each class gets
//! dispatched.  Only the `.policy(...)` line changes — no scheduler code,
//! no driver code.
//!
//! The `Txn::with_sla` metadata travels end-to-end: through the session,
//! the middleware channel, the scheduler's `sla` relation, and back out in
//! the report's execution log.

use declsched::{Protocol, ProtocolKind, SchedResult, SchedulerConfig, SlaMeta, TriggerPolicy};
use session::{Scheduler, Txn};
use std::collections::HashMap;
use workload::{ClientClass, OltpSpec, SlaSpec};

fn run(policy_name: &str, protocol: Protocol) -> SchedResult<()> {
    let spec = SlaSpec {
        oltp: OltpSpec::small(12),
        premium_fraction: 0.25,
        free_fraction: 0.5,
        mean_think_time_ms: 5,
        seed: 2,
    };
    let (clients, metas) = spec.generate();
    let class_of: HashMap<u64, ClientClass> = metas.iter().map(|m| (m.txn.0, m.class)).collect();

    // A wide trigger window batches every submission into one scheduling
    // round, so that round has to arbitrate between premium and free
    // traffic.
    let scheduler = Scheduler::builder()
        .policy(protocol)
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 40,
                threshold: 64,
            },
            ..SchedulerConfig::default()
        })
        .table("shop", 500)
        .build()?;
    let mut session = scheduler.connect();

    // Submit the first request of every client's first transaction, tagged
    // with its SLA class — pipelined, nothing waits in between.
    for client in &clients {
        let txn = &client.transactions[0];
        let stmt = &txn.statements[0];
        let meta = metas
            .iter()
            .find(|m| m.txn == txn.txn)
            .expect("meta exists");
        session.submit(
            Txn::from_statements(std::slice::from_ref(stmt)).with_sla(SlaMeta {
                priority: meta.class.priority(),
                class: meta.class.as_str(),
                arrival_ms: meta.arrival_ms,
                deadline_ms: meta.deadline_ms,
            }),
        )?;
    }
    session.drain()?;
    let report = scheduler.shutdown();

    // Dispatch position per class: lower is better.
    let mut first_position: HashMap<&'static str, usize> = HashMap::new();
    for (pos, request) in report.executed_log.iter().enumerate() {
        let class = class_of[&request.ta].as_str();
        first_position.entry(class).or_insert(pos);
    }
    println!("--- {policy_name} ---");
    println!("dispatch order ({} requests):", report.executed_log.len());
    for (pos, request) in report.executed_log.iter().enumerate() {
        println!(
            "  {:>2}. T{:<3} {} (class {})",
            pos + 1,
            request.ta,
            request.op,
            class_of[&request.ta].as_str()
        );
    }
    for class in ["premium", "standard", "free"] {
        if let Some(pos) = first_position.get(class) {
            println!("  first {class} request dispatched at position {}", pos + 1);
        }
    }
    println!();
    Ok(())
}

fn main() -> SchedResult<()> {
    run(
        "FIFO SS2PL (arrival order)",
        Protocol::algebra(ProtocolKind::Ss2pl),
    )?;
    run(
        "SLA priority (premium first)",
        Protocol::algebra(ProtocolKind::SlaPriority),
    )?;
    run(
        "Earliest deadline first",
        Protocol::datalog(ProtocolKind::EarliestDeadline),
    )?;
    println!("Same correctness rule, three QoS policies — only the declarative protocol changed.");
    Ok(())
}
