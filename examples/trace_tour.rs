//! Observability tour: the flight recorder, the live metrics registry and
//! phase histograms, on a 2-shard fleet — full guide in
//! `docs/OBSERVABILITY.md`.
//!
//! Run with: `cargo run --release --example trace_tour`
//!
//! Four stops:
//!  1. turn the flight recorder on with one builder call and submit a mix
//!     of single-shard and one cross-shard transaction,
//!  2. peek at the live metrics registry *mid-run* (snapshot + Prometheus
//!     text — no shutdown needed),
//!  3. reconstruct per-request timelines from `Report::trace`, including
//!     the cross-shard escalation protocol stamped event by event,
//!  4. read the phase histograms the whole trace aggregates into.

use declsched::shard_of;
use session::{Scheduler, Txn};

fn main() {
    const SHARDS: usize = 2;
    const ROWS: usize = 1_000;

    // Stop 1: `.trace(...)` is the only observability-specific line.
    // `TraceConfig::full` records every transaction; `sampled(16, cap)`
    // records 1-in-16 (whole transactions, so timelines stay complete);
    // the default is off and costs one branch per instrumentation site.
    let scheduler = Scheduler::builder()
        .table("accounts", ROWS)
        .shards(SHARDS)
        .trace(obs::TraceConfig::full(obs::TraceConfig::DEFAULT_CAPACITY))
        .build()
        .expect("fleet starts");
    let mut session = scheduler.connect();

    // A handful of single-shard writes...
    let mut tickets = Vec::new();
    for ta in 1..=8u64 {
        let object = (ta * 37) as i64 % ROWS as i64;
        tickets.push(
            session
                .submit(Txn::new(ta).write(object, ta as i64).commit())
                .expect("fleet is up"),
        );
    }
    // ...and one transaction whose footprint spans both shards, so it
    // takes the escalation lane and leaves the richest timeline.
    let left = (0..ROWS as i64)
        .find(|&o| shard_of(o, SHARDS) == 0)
        .expect("shard 0 owns something");
    let right = (0..ROWS as i64)
        .find(|&o| shard_of(o, SHARDS) == 1)
        .expect("shard 1 owns something");
    let spanning_ta = 9u64;
    tickets.push(
        session
            .submit(
                Txn::new(spanning_ta)
                    .write(left, -1)
                    .write(right, -2)
                    .commit(),
            )
            .expect("fleet is up"),
    );
    for ticket in tickets {
        ticket.wait().expect("all transactions commit");
    }

    // Stop 2: the registry is live — snapshot it while the fleet is still
    // running.  Counters/gauges/histograms are shared atomics, so this
    // never blocks a worker.
    let registry = scheduler.registry();
    let snap = registry.snapshot();
    println!("mid-run registry snapshot:");
    println!(
        "   session.submitted   = {}",
        snap.counter("session.submitted")
    );
    println!(
        "   session.committed   = {}",
        snap.counter("session.committed")
    );
    println!(
        "   router.cross_shard  = {}",
        snap.counter("router.cross_shard")
    );
    println!(
        "   lane.escalations    = {}",
        snap.counter("lane.escalations")
    );
    println!("\nthe same, as a Prometheus scrape body (excerpt):");
    for line in registry
        .render_text()
        .lines()
        .filter(|l| l.contains("session_") || l.contains("router_"))
    {
        println!("   {line}");
    }

    // Stop 3: shut down and merge every per-thread ring into one
    // time-ordered trace.
    let report = scheduler.shutdown();
    println!(
        "\nmerged trace: {} events ({} dropped by ring bounds)",
        report.trace.len(),
        report.trace.dropped()
    );

    // A single-shard request: Submitted → Routed{home} → Qualified →
    // Dispatched → Executed → Committed.
    println!("\ntimeline of T1 (single-shard):");
    for ev in report.trace.transaction(1) {
        println!("   {:>6}µs  {:<14} {}", ev.at_us, ev.kind.label(), ev.req);
    }

    // The spanning transaction: Escalated{shards} replaces Routed, the
    // lane qualifies it once, and its commit request is dispatched and
    // executed once per frozen shard.
    println!("\ntimeline of T{spanning_ta} (cross-shard, via the escalation lane):");
    for ev in report.trace.transaction(spanning_ta) {
        println!("   {:>6}µs  {:<14} {}", ev.at_us, ev.kind.label(), ev.req);
    }

    // Stop 4: phase histograms across every traced request.
    let phases = report.trace.phase_histograms();
    println!("\nphase histograms over the whole trace:");
    for (name, stats) in [
        ("queue (submit→qualify)", &phases.queue),
        ("execute (dispatch→exec)", &phases.execute),
        ("end-to-end", &phases.end_to_end),
    ] {
        println!(
            "   {name:<24} n={:<3} mean={:>6.1}µs max={:>5}µs",
            stats.count,
            stats.mean_us(),
            stats.max_us
        );
    }

    // Anomaly windows would appear here: a poisoned scheduler, a deadlock
    // victim, a shed burst or a rehome freezes the recent event stream
    // into `report.anomalies`.  This clean run has none.
    println!("\nanomaly windows: {}", report.anomalies.len());
}
