//! Defining a brand-new, application-specific consistency protocol in
//! SchedLang — without touching any scheduler code — and deploying it
//! through the unified Session API.
//!
//! Run with: `cargo run --example custom_protocol`
//!
//! The scenario is the paper's hotel-reservation example: reads of room
//! availability may be slightly stale (they never wait), but bookings
//! (writes to room objects) must stay serialisable, and during a flash sale
//! everything touching the promotional object 999 is admitted
//! unconditionally.

use declsched::{SchedResult, SchedulerConfig, TriggerPolicy};
use schedlang::compile_protocol;
use session::{Scheduler, Txn};

const HOTEL_PROTOCOL: &str = r#"
protocol hotel_reservations {
    order by arrival;

    define finished(T)   when history(_, T, _, "c", _);
    define finished(T)   when history(_, T, _, "a", _);
    define wlocked(O, T) when history(_, T, _, "w", O), not finished(T);

    # Availability reads never wait.
    admit when op = "r";
    # The flash-sale counter is eventually consistent on purpose.
    admit when obj = 999;

    # Bookings keep write-write exclusion.
    block when op = "w", wlocked(obj, T2), T2 != ta;
    block when op = "w", requests(_, T1, _, "w", obj), T1 < ta;

    admit otherwise;
}
"#;

fn main() -> SchedResult<()> {
    println!(
        "SchedLang source ({} non-empty lines):",
        HOTEL_PROTOCOL
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    );
    println!("{HOTEL_PROTOCOL}");

    let protocol = compile_protocol(HOTEL_PROTOCOL).expect("the protocol compiles");
    println!(
        "compiled to protocol `{}` on the {} back-end\n",
        protocol.name(),
        protocol.rules.backend.label()
    );

    // The compiled protocol deploys like any shipped one.
    let scheduler = Scheduler::builder()
        .policy(protocol)
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 8,
            },
            ..SchedulerConfig::default()
        })
        .table("rooms", 1_000)
        .build()?;
    let mut session = scheduler.connect();

    // Booking in flight: T1 wrote room 7 and has not committed yet.
    session.submit(Txn::new(1).write(7, 1))?.wait()?;
    println!("T1 booked room 7 (uncommitted — write lock held)\n");

    // Now a burst of traffic arrives, pipelined in one go.
    let availability = session.submit(Txn::new(2).read(7))?; //      stale read of room 7
    let competing = session.submit(Txn::new(3).write(7, 3).commit())?; // competing booking
    let flash_sale = session.submit(Txn::new(4).write(999, 4).commit())?; // flash-sale counter
    let free_room = session.submit(Txn::new(5).write(12, 5).commit())?; // booking of a free room

    // Three of the four complete immediately under the custom rule …
    availability.wait()?;
    flash_sale.wait()?;
    free_room.wait()?;
    println!("admitted immediately: T2 (stale read), T4 (flash sale), T5 (free room)");
    println!(
        "still in flight: {} (the competing booking of room 7 waits for T1)",
        session.in_flight()
    );

    // … and the competing booking goes through once T1 commits.
    session.submit(Txn::resume(1, 1).commit())?.wait()?;
    competing.wait()?;
    println!("after T1 committed, the deferred booking T3 was scheduled\n");

    let report = scheduler.shutdown();
    println!("execution order:");
    for request in &report.executed_log {
        println!("  {request}");
    }
    println!(
        "server totals: {} data statements, {} commits",
        report.dispatch.executed, report.dispatch.commits
    );
    Ok(())
}
