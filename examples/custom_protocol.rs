//! Defining a brand-new, application-specific consistency protocol in
//! SchedLang — without touching any scheduler code.
//!
//! Run with: `cargo run -p examples --bin custom_protocol`
//!
//! The scenario is the paper's hotel-reservation example: reads of room
//! availability may be slightly stale (they never wait), but bookings
//! (writes to room objects, ids 0–99) must stay serialisable, and during a
//! flash sale everything touching the promotional object 999 is admitted
//! unconditionally.

use declsched::prelude::*;
use schedlang::compile_protocol;

const HOTEL_PROTOCOL: &str = r#"
protocol hotel_reservations {
    order by arrival;

    define finished(T)   when history(_, T, _, "c", _);
    define finished(T)   when history(_, T, _, "a", _);
    define wlocked(O, T) when history(_, T, _, "w", O), not finished(T);

    # Availability reads never wait.
    admit when op = "r";
    # The flash-sale counter is eventually consistent on purpose.
    admit when obj = 999;

    # Bookings keep write-write exclusion.
    block when op = "w", wlocked(obj, T2), T2 != ta;
    block when op = "w", requests(_, T1, _, "w", obj), T1 < ta;

    admit otherwise;
}
"#;

fn main() -> SchedResult<()> {
    println!(
        "SchedLang source ({} non-empty lines):",
        HOTEL_PROTOCOL
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    );
    println!("{HOTEL_PROTOCOL}");

    let protocol = compile_protocol(HOTEL_PROTOCOL).expect("the protocol compiles");
    println!(
        "compiled to protocol `{}` on the {} back-end\n",
        protocol.name(),
        protocol.rules.backend.label()
    );

    let mut scheduler = DeclarativeScheduler::new(
        protocol,
        SchedulerConfig {
            trigger: TriggerPolicy::Always,
            ..SchedulerConfig::default()
        },
    );
    let mut dispatcher = Dispatcher::new("rooms", 1_000)?;

    // Booking in flight: T1 wrote room 7 and has not committed yet.
    scheduler.submit(Request::write(0, 1, 0, 7), 0);
    dispatcher.execute_batch(&scheduler.run_round(0)?)?;

    // Now a burst of traffic arrives.
    scheduler.submit(Request::read(0, 2, 0, 7), 1); //   availability read of room 7
    scheduler.submit(Request::write(0, 3, 0, 7), 1); //  competing booking of room 7
    scheduler.submit(Request::write(0, 4, 0, 999), 1); // flash-sale counter update
    scheduler.submit(Request::write(0, 5, 0, 12), 1); //  booking of a free room

    let batch = scheduler.run_round(1)?;
    println!("qualified this round ({} of 4):", batch.len());
    for request in &batch.requests {
        println!("  {request}");
    }
    println!(
        "deferred: {} (the competing booking of room 7 waits for T1)",
        batch.pending_after
    );
    dispatcher.execute_batch(&batch)?;

    // T1 commits; the deferred booking goes through on the next round.
    scheduler.submit(Request::commit(0, 1, 1), 2);
    let batch = scheduler.run_round(2)?;
    dispatcher.execute_batch(&batch)?;
    let batch = scheduler.run_round(3)?;
    dispatcher.execute_batch(&batch)?;
    println!(
        "\nafter T1 committed, the deferred booking was scheduled: pending = {}",
        scheduler.pending()
    );
    println!(
        "server totals: {} data statements, {} commits",
        dispatcher.totals().executed,
        dispatcher.totals().commits
    );
    Ok(())
}
