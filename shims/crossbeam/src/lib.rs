//! Minimal, dependency-free stand-in for the `crossbeam` crate.
//!
//! The workspace builds offline, so this local shim provides the
//! `crossbeam::channel` API subset the middleware and shard crates use:
//! `bounded` / `unbounded` MPSC channels with `send`, `recv`, `try_recv` and
//! `recv_timeout`, plus disconnect detection on both ends.  Built on
//! `std::sync::{Mutex, Condvar}`.

/// Multi-producer channels with timeouts and disconnect detection.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        cap: Option<usize>,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; carries
    /// the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently buffered.
        Empty,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Every sender is gone and the buffer is drained.
        Disconnected,
    }

    /// The sending half of a channel; cheap to clone.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a channel buffering at most `cap` messages (a zero capacity is
    /// rounded up to one; true rendezvous channels are not supported).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                cap,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Number of messages currently buffered in the channel.
        pub fn len(&self) -> usize {
            self.inner
                .state
                .lock()
                .expect("channel lock poisoned")
                .queue
                .len()
        }

        /// Whether the channel buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Send a message, blocking while a bounded channel is full.  Fails
        /// (returning the message) once every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel lock poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = state.cap.is_some_and(|c| state.queue.len() >= c);
                if !full {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .inner
                    .not_full
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner
                .state
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel lock poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .inner
                    .not_empty
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().expect("channel lock poisoned");
            if let Some(value) = state.queue.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock poisoned");
                state = next;
                if timed_out.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel lock poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn round_trip_and_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed_on_both_ends() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn timeout_fires_and_messages_cross_threads() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let t = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Ok(42));
            t.join().unwrap();
        }

        #[test]
        fn cloned_senders_keep_channel_alive() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(7).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
