//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds offline, so this local shim provides the API subset
//! the benches use: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `BatchSize`, `black_box` and the `criterion_group!` / `criterion_main!`
//! macros.  Instead of rigorous statistics it runs a short warm-up plus a
//! fixed number of timed iterations and prints mean wall-clock time per
//! iteration — enough to compare configurations by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; only a label here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on inputs produced by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        println!(
            "{}/{}: {:>12.3} µs/iter ({} iters)",
            self.name,
            id.label,
            per_iter * 1e6,
            bencher.iterations
        );
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op; printing happens per benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::LargeInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_benches_run() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("ss2pl", "algebra").label, "ss2pl/algebra");
        assert_eq!(BenchmarkId::from_parameter(32).label, "32");
    }
}
