//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds offline, so this local shim provides the API subset
//! the property tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! integer-range and tuple strategies, `collection::vec`, a deterministic
//! [`test_runner::TestRng`], `ProptestConfig::with_cases` and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! There is no shrinking: a failing case panics with the case number and
//! the active RNG seed so it can be replayed.  Generation is fully
//! deterministic; set `CHAOS_SEED=<n>` to replay a printed failure (or
//! explore a different schedule) — the same knob the chaos engine uses.

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic test runner substrate.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The documented default seed: every property run is deterministic
    /// unless `CHAOS_SEED` overrides it.
    pub const DEFAULT_SEED: u64 = 0x5eed_dec1_a4a7_1e57;

    /// The seed driving this process's property tests: `CHAOS_SEED` from
    /// the environment when set (shared with the chaos engine's repro
    /// knob), the documented default otherwise.
    pub fn seed_from_env() -> u64 {
        std::env::var("CHAOS_SEED")
            .ok()
            .and_then(|raw| raw.trim().parse().ok())
            .unwrap_or(DEFAULT_SEED)
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed, documented seed so failures replay.
        pub fn deterministic() -> Self {
            TestRng::seeded(DEFAULT_SEED)
        }

        /// A generator seeded explicitly (replaying a `CHAOS_SEED` repro).
        pub fn seeded(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Assert inside a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each function runs `cases` times with fresh
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = $strat;
                let seed = $crate::test_runner::seed_from_env();
                let mut rng = $crate::test_runner::TestRng::seeded(seed);
                for case in 0..config.cases {
                    let $pat = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                    let run = || -> () { $body };
                    if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "property {} failed at case {case}/{}; \
                             reproduce with: CHAOS_SEED={seed}",
                            stringify!($name),
                            config.cases
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_map_and_vec_generate() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let strat = (0u64..6, 0i64..8).prop_map(|(a, b)| (a + 100, b));
        for _ in 0..50 {
            let (a, b) = strat.generate(&mut rng);
            assert!((100..106).contains(&a));
            assert!((0..8).contains(&b));
        }
        let vecs = crate::collection::vec(0u8..3, 1..12);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 12);
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself compiles and runs with a tuple pattern.
        #[test]
        fn macro_smoke((a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
