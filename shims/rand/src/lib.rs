//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds offline, so instead of the real `rand` this local
//! shim provides exactly the API subset the `workload` crate uses:
//! `StdRng` + `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`
//! over integer/float ranges, and `seq::SliceRandom::shuffle`.
//!
//! The generator is splitmix64 — deterministic, fast and statistically good
//! enough for workload generation and the skew assertions in the tests.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i64, u64, i32, u32, u8, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: i64 = a.gen_range(0..50);
            assert_eq!(x, b.gen_range(0..50));
            assert!((0..50).contains(&x));
        }
        let f: f64 = a.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&f));
        let i: u64 = a.gen_range(0..=3u64);
        assert!(i <= 3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
