//! A cheap hasher for the small id-keyed bookkeeping maps instrumentation
//! keeps on emission hot paths (e.g. the per-request submission-round map
//! behind `RoundDeferred`).
//!
//! SipHash — the std `HashMap` default — is keyed and DoS-resistant, which
//! matters for maps fed attacker-controlled strings and not at all for
//! maps keyed by scheduler-assigned transaction/request ids.  At flight-
//! recorder rates the SipHash rounds cost more than the ring write the
//! lookup supports, so instrumentation maps use this multiply-xor mixer
//! instead.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor [`Hasher`] for machine-generated integer ids.  **Not** for
/// externally controlled keys: it has no DoS resistance.
#[derive(Default)]
pub struct FastIdHasher(u64);

/// [`std::hash::BuildHasher`] plugging [`FastIdHasher`] into a
/// `HashMap`/`HashSet` type.
pub type FastIdBuildHasher = BuildHasherDefault<FastIdHasher>;

impl Hasher for FastIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Byte-wise FNV-1a fallback for derived fields that are not plain
        // integers; id keys never take this path.
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        // One golden-ratio multiply plus a fold: enough mixing to spread
        // sequential ids across buckets.
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 32;
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn sequential_ids_spread_and_round_trip() {
        let mut map: HashMap<(u64, u32), u64, FastIdBuildHasher> = HashMap::default();
        for ta in 0..1000u64 {
            map.insert((ta, 0), ta);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(617, 0)), Some(&617));
        assert_eq!(map.get(&(617, 1)), None);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let hash = |ta: u64, intra: u32| {
            let mut hasher = FastIdHasher::default();
            hasher.write_u64(ta);
            hasher.write_u32(intra);
            hasher.finish()
        };
        let mut seen = std::collections::HashSet::new();
        for ta in 0..4096u64 {
            for intra in 0..4u32 {
                seen.insert(hash(ta, intra));
            }
        }
        assert_eq!(seen.len(), 4096 * 4, "no collisions on a dense id grid");
    }
}
