//! The flight recorder's event vocabulary: what can happen to a request,
//! stamped when, identified how.

/// Identity of one request inside a run: the transaction id plus the
/// intra-transaction sequence number, matching
/// `declsched::Request::{ta, intra}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId {
    /// Transaction id.
    pub ta: u64,
    /// Intra-transaction sequence number.
    pub intra: u32,
}

impl ReqId {
    /// Build a request id.
    pub fn new(ta: u64, intra: u32) -> Self {
        ReqId { ta, intra }
    }
}

impl std::fmt::Display for ReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}#{}", self.ta, self.intra)
    }
}

/// One lifecycle step of a request.
///
/// The nominal order is `Submitted → Routed → (Escalated) →
/// (RoundDeferred) → Qualified → Dispatched → Executed →
/// Committed | Aborted | Shed`; unsharded deployments skip `Routed`,
/// single-shard transactions skip `Escalated`, requests qualified on their
/// first round skip `RoundDeferred`, and passthrough deployments record
/// only the session-level events (`Submitted` plus a terminal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The session accepted the request from the client.
    Submitted,
    /// The router picked a home shard for the transaction's fast path.
    Routed {
        /// Target shard index.
        shard: usize,
    },
    /// The transaction's footprint spans shards; it took the escalation
    /// lane over the listed shards.
    Escalated {
        /// Every shard frozen for the escalation, ascending.
        shards: Vec<usize>,
    },
    /// The request sat in the pending relation for `rounds` scheduling
    /// rounds before qualifying (emitted only when `rounds > 0`).
    RoundDeferred {
        /// Rounds spent pending before qualification.
        rounds: u64,
    },
    /// The declarative rule qualified the request.
    Qualified,
    /// The dispatcher picked the request up for execution.
    Dispatched,
    /// The storage engine finished executing the request.  Escalated
    /// terminals are replicated to every frozen shard, so one request may
    /// carry several `Executed` events.
    Executed,
    /// Terminal: the transaction committed and the client was notified.
    Committed,
    /// Terminal: the transaction aborted (rule failure, deadlock victim,
    /// shutdown straggler).
    Aborted,
    /// Terminal: the session's overload policy rejected the transaction
    /// before it reached a backend.
    Shed,
}

impl EventKind {
    /// Whether this event ends a request's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            EventKind::Committed | EventKind::Aborted | EventKind::Shed
        )
    }

    /// Stable label used in timelines and exposition dumps.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::Routed { .. } => "routed",
            EventKind::Escalated { .. } => "escalated",
            EventKind::RoundDeferred { .. } => "round_deferred",
            EventKind::Qualified => "qualified",
            EventKind::Dispatched => "dispatched",
            EventKind::Executed => "executed",
            EventKind::Committed => "committed",
            EventKind::Aborted => "aborted",
            EventKind::Shed => "shed",
        }
    }

    /// Lifecycle rank used to break timestamp ties when merging per-worker
    /// rings: with microsecond resolution, a request can qualify, dispatch
    /// and execute inside one tick, and the rank keeps the merged timeline
    /// in causal order.
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::Submitted => 0,
            EventKind::Routed { .. } => 1,
            EventKind::Escalated { .. } => 2,
            EventKind::RoundDeferred { .. } => 3,
            EventKind::Qualified => 4,
            EventKind::Dispatched => 5,
            EventKind::Executed => 6,
            EventKind::Committed | EventKind::Aborted | EventKind::Shed => 7,
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Routed { shard } => write!(f, "routed(shard {shard})"),
            EventKind::Escalated { shards } => write!(f, "escalated{shards:?}"),
            EventKind::RoundDeferred { rounds } => write!(f, "round_deferred({rounds})"),
            other => f.write_str(other.label()),
        }
    }
}

/// One timestamped lifecycle event of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Which request.
    pub req: ReqId,
    /// Microseconds since the trace sink's epoch (shared across all
    /// workers, so cross-thread ordering is meaningful).
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_exactly_the_rank_7_events() {
        let kinds = [
            EventKind::Submitted,
            EventKind::Routed { shard: 3 },
            EventKind::Escalated { shards: vec![0, 2] },
            EventKind::RoundDeferred { rounds: 4 },
            EventKind::Qualified,
            EventKind::Dispatched,
            EventKind::Executed,
            EventKind::Committed,
            EventKind::Aborted,
            EventKind::Shed,
        ];
        for kind in &kinds {
            assert_eq!(kind.is_terminal(), kind.rank() == 7, "{kind}");
        }
        // Ranks are monotone in the nominal lifecycle order.
        let ranks: Vec<u8> = kinds.iter().map(EventKind::rank).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted);
    }

    #[test]
    fn req_id_orders_by_ta_then_intra() {
        assert!(ReqId::new(1, 9) < ReqId::new(2, 0));
        assert!(ReqId::new(2, 0) < ReqId::new(2, 1));
        assert_eq!(ReqId::new(7, 3).to_string(), "T7#3");
    }
}
