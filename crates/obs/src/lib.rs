//! # obs — low-overhead observability for the declarative scheduler
//!
//! Three pieces, threaded through every layer of the reproduction:
//!
//! 1. **Request flight recorder** — per-request timestamped lifecycle
//!    events (`Submitted → Routed → RoundDeferred → Qualified →
//!    Dispatched → Executed → Committed/Aborted/Shed/Escalated`) written
//!    to per-worker bounded drop-oldest ring buffers ([`Recorder`]),
//!    sampled by transaction id ([`TraceConfig`]), merged at shutdown
//!    into a queryable [`Trace`] (`Report::trace` in the `session`
//!    crate).
//! 2. **Live metrics registry** — named atomic counters, gauges and
//!    histograms ([`Registry`]) the core scheduler, shard workers,
//!    router, escalation lane, control plane and session shedding all
//!    register into; snapshot-able mid-run, renderable as
//!    Prometheus-style text.
//! 3. **Anomaly hooks** — on poisoned locks, deadlock-victim aborts,
//!    shed bursts and placement rehomes, the surrounding event window is
//!    frozen into an [`AnomalyWindow`] for post-mortem
//!    (`Report::anomalies`).
//!
//! The crate is a dependency-free leaf: every other crate in the
//! workspace may depend on it.
//!
//! ```
//! use obs::{EventKind, Registry, TraceConfig, TraceSink};
//!
//! let sink = TraceSink::new(TraceConfig::full(1024));
//! let mut recorder = sink.recorder();
//! recorder.emit(7, 0, EventKind::Submitted);
//! recorder.emit(7, 0, EventKind::Qualified);
//! recorder.emit(7, 0, EventKind::Committed);
//! drop(recorder); // worker join flushes the ring
//!
//! let trace = sink.merged_trace();
//! assert_eq!(trace.timeline(obs::ReqId::new(7, 0)).len(), 3);
//!
//! let registry = Registry::new();
//! registry.counter("core.rounds").inc();
//! assert_eq!(registry.snapshot().counter("core.rounds"), 1);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod event;
mod hash;
mod registry;
mod trace;

pub use event::{Event, EventKind, ReqId};
pub use hash::{FastIdBuildHasher, FastIdHasher};
pub use registry::{Counter, Gauge, MetricHistogram, MetricsSnapshot, Registry};
pub use trace::{
    AnomalyWindow, PhaseHistograms, PhaseStats, Recorder, SharedRecorder, Trace, TraceConfig,
    TraceSink, MAX_ANOMALY_WINDOWS,
};
