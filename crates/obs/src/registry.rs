//! The live metrics registry: named atomic counters, gauges and
//! histograms every layer registers into, snapshot-able mid-run and
//! renderable as Prometheus-style exposition text.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing counter handle.  Cheap to clone; all clones
/// and registry snapshots observe the same atomic.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge's value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const HISTOGRAM_BUCKETS: usize = 32;

/// A concurrent power-of-two histogram: bucket 0 counts zero-valued
/// observations, bucket `i ≥ 1` counts values in `[2^(i-1), 2^i)`.
#[derive(Debug, Default)]
pub struct MetricHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl MetricHistogram {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        let index = (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket counts (`buckets()[i]` = observations with
    /// `64 - leading_zeros(v) == i`, clamped into the last bucket).
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return if index == 0 { 0 } else { 1u64 << index };
            }
        }
        u64::MAX
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram `(count, sum)` by name.
    pub histograms: BTreeMap<String, (u64, u64)>,
}

impl MetricsSnapshot {
    /// A counter's value, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, defaulting to 0 when absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

/// The registry: get-or-create named metrics, adopt pre-existing atomics
/// (so live counters owned by other subsystems surface without double
/// counting), snapshot, and render.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<MetricHistogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = lock_or_recover(&self.counters);
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = lock_or_recover(&self.gauges);
        let cell = gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<MetricHistogram> {
        let mut histograms = lock_or_recover(&self.histograms);
        let cell = histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(MetricHistogram::default()));
        Arc::clone(cell)
    }

    /// Register an atomic another subsystem already owns and updates as
    /// the counter `name` — snapshots read it live, nothing is copied.
    pub fn adopt_counter(&self, name: &str, cell: Arc<AtomicU64>) {
        lock_or_recover(&self.counters).insert(name.to_string(), cell);
    }

    /// Register an externally owned atomic as the gauge `name`.
    pub fn adopt_gauge(&self, name: &str, cell: Arc<AtomicU64>) {
        lock_or_recover(&self.gauges).insert(name.to_string(), cell);
    }

    /// A point-in-time copy of every metric — safe to call mid-run from
    /// any thread.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock_or_recover(&self.counters)
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: lock_or_recover(&self.gauges)
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            histograms: lock_or_recover(&self.histograms)
                .iter()
                .map(|(name, h)| (name.clone(), (h.count(), h.sum())))
                .collect(),
        }
    }

    /// Render every metric as Prometheus-style exposition text: names are
    /// prefixed `declsched_` with `.`/`-` mapped to `_`, counters get a
    /// `_total` suffix, histograms emit cumulative `_bucket{le="..."}`
    /// lines plus `_sum`/`_count`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, cell) in lock_or_recover(&self.counters).iter() {
            let metric = format!("declsched_{}_total", sanitize(name));
            out.push_str(&format!("# TYPE {metric} counter\n"));
            out.push_str(&format!("{metric} {}\n", cell.load(Ordering::Relaxed)));
        }
        for (name, cell) in lock_or_recover(&self.gauges).iter() {
            let metric = format!("declsched_{}", sanitize(name));
            out.push_str(&format!("# TYPE {metric} gauge\n"));
            out.push_str(&format!("{metric} {}\n", cell.load(Ordering::Relaxed)));
        }
        for (name, histogram) in lock_or_recover(&self.histograms).iter() {
            let metric = format!("declsched_{}", sanitize(name));
            out.push_str(&format!("# TYPE {metric} histogram\n"));
            let mut cumulative = 0;
            for (index, count) in histogram.buckets().into_iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                let le = if index == 0 { 0 } else { 1u64 << index };
                out.push_str(&format!("{metric}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{metric}_bucket{{le=\"+Inf\"}} {}\n",
                histogram.count()
            ));
            out.push_str(&format!("{metric}_sum {}\n", histogram.sum()));
            out.push_str(&format!("{metric}_count {}\n", histogram.count()));
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_the_atomic() {
        let registry = Registry::new();
        let a = registry.counter("core.rounds");
        let b = registry.counter("core.rounds");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(registry.snapshot().counter("core.rounds"), 5);
        assert_eq!(registry.snapshot().counter("missing"), 0);
    }

    #[test]
    fn adopted_atomics_are_read_live() {
        let registry = Registry::new();
        let live = Arc::new(AtomicU64::new(0));
        registry.adopt_gauge("shard.0.queue_depth", Arc::clone(&live));
        live.store(17, Ordering::Relaxed);
        assert_eq!(registry.snapshot().gauge("shard.0.queue_depth"), 17);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let registry = Registry::new();
        let h = registry.histogram("core.batch_size");
        h.observe(0);
        h.observe(1);
        h.observe(3);
        h.observe(100);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 104);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 128);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["core.batch_size"], (4, 104));
    }

    #[test]
    fn exposition_text_is_prometheus_shaped() {
        let registry = Registry::new();
        registry.counter("router.cross-shard").add(2);
        registry.gauge("control.shard.1.queue_depth").set(9);
        registry.histogram("core.batch_size").observe(5);
        let text = registry.render_text();
        assert!(text.contains("# TYPE declsched_router_cross_shard_total counter"));
        assert!(text.contains("declsched_router_cross_shard_total 2"));
        assert!(text.contains("declsched_control_shard_1_queue_depth 9"));
        assert!(text.contains("declsched_core_batch_size_bucket{le=\"8\"} 1"));
        assert!(text.contains("declsched_core_batch_size_count 1"));
    }
}
