//! The request flight recorder: per-worker bounded drop-oldest ring
//! buffers, a shared sink that merges them at shutdown, and the queryable
//! [`Trace`] the merged events become.

use crate::event::{Event, EventKind, ReqId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Upper bound on anomaly windows kept per run, so a pathological run
/// (e.g. a shed storm) cannot grow `Report::anomalies` without bound.
pub const MAX_ANOMALY_WINDOWS: usize = 32;

/// Tracing knob: how many transactions to sample and how much history each
/// worker keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sample one transaction in this many (`0` disables tracing, `1`
    /// traces everything).  Sampling is by transaction id (`ta %
    /// sample_one_in == 0`), so every event of a sampled transaction is
    /// kept and a timeline is never partial.
    pub sample_one_in: u64,
    /// Ring capacity (events) per worker.  When a ring fills, the oldest
    /// events are overwritten and counted as dropped.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default per-worker ring capacity.  Deliberately small enough
    /// (~0.5 MB of events) that a cycling ring stays cache-resident: a
    /// multi-megabyte ring turns every emission into a cache miss *and*
    /// evicts the scheduler's working set, which is where a flight
    /// recorder's overhead actually comes from.  Runs that need a complete
    /// event log (integration tests, short diagnostic captures) pass an
    /// explicit larger capacity.
    pub const DEFAULT_CAPACITY: usize = 8_192;

    /// Tracing disabled: recorders become no-ops.
    pub fn off() -> Self {
        TraceConfig {
            sample_one_in: 0,
            capacity: 0,
        }
    }

    /// Trace every transaction.
    pub fn full(capacity: usize) -> Self {
        TraceConfig {
            sample_one_in: 1,
            capacity,
        }
    }

    /// Trace one transaction in `n`.
    pub fn sampled(n: u64, capacity: usize) -> Self {
        TraceConfig {
            sample_one_in: n,
            capacity,
        }
    }

    /// Whether any tracing happens at all.
    pub fn enabled(&self) -> bool {
        self.sample_one_in > 0 && self.capacity > 0
    }

    /// Whether transaction `ta` is in the sample.  The full-tracing case
    /// short-circuits before the modulo: a hardware division per emission
    /// is most expensive exactly when every transaction takes it.
    pub fn samples(&self, ta: u64) -> bool {
        self.enabled() && (self.sample_one_in == 1 || ta.is_multiple_of(self.sample_one_in))
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// A frozen event window captured around an anomaly (poisoned lock,
/// deadlock-victim abort, shed burst, placement rehome): the recorder's
/// current ring contents at the moment the anomaly was noticed, plus a
/// reason string and timestamp.  With tracing off the window is empty but
/// the reason and timestamp are still recorded.
#[derive(Debug, Clone)]
pub struct AnomalyWindow {
    /// What tripped the hook.
    pub reason: String,
    /// Microseconds since the sink epoch when the window was frozen.
    pub at_us: u64,
    /// The freezing worker's ring contents, oldest first.
    pub events: Vec<Event>,
}

fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Microseconds in `elapsed`, in `u64` arithmetic throughout —
/// `Duration::as_micros` divides a 128-bit nanosecond count, which shows
/// up at flight-recorder emission rates.
fn duration_us(elapsed: std::time::Duration) -> u64 {
    elapsed.as_secs() * 1_000_000 + u64::from(elapsed.subsec_micros())
}

struct SinkInner {
    config: TraceConfig,
    epoch: Instant,
    /// Flushed events from retired recorders, unordered until merge.
    merged: Mutex<Vec<Event>>,
    dropped: Mutex<u64>,
    anomalies: Mutex<Vec<AnomalyWindow>>,
    /// Live shared recorders (session-side), flushed in place at merge
    /// time.  Weak, because each recorder holds an `Arc` back to this
    /// sink and a strong reference both ways would leak the pair.
    shared: Mutex<Vec<Weak<Mutex<Recorder>>>>,
}

/// The per-run trace sink: hands out [`Recorder`]s to workers, keeps the
/// shared epoch clock, and merges everything into a [`Trace`] at shutdown.
/// Cheap to clone (one `Arc`).
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

impl TraceSink {
    /// A sink with the given tracing configuration.
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            inner: Arc::new(SinkInner {
                config,
                epoch: Instant::now(),
                merged: Mutex::new(Vec::new()),
                dropped: Mutex::new(0),
                anomalies: Mutex::new(Vec::new()),
                shared: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A sink that records nothing (anomaly reasons are still kept).
    pub fn disabled() -> Self {
        TraceSink::new(TraceConfig::off())
    }

    /// The sink's tracing configuration.
    pub fn config(&self) -> TraceConfig {
        self.inner.config
    }

    /// Whether tracing is enabled on this sink.
    pub fn enabled(&self) -> bool {
        self.inner.config.enabled()
    }

    /// Microseconds since this sink's epoch — the shared monotonic clock
    /// every recorder stamps events with.
    pub fn now_us(&self) -> u64 {
        duration_us(self.inner.epoch.elapsed())
    }

    /// A thread-owned recorder for one worker.  Emission never locks; the
    /// ring is flushed into the sink when the recorder drops (worker join).
    pub fn recorder(&self) -> Recorder {
        Recorder::new(Arc::clone(&self.inner))
    }

    /// A clonable recorder for call sites without a single owning thread
    /// (the session layer, the router).  Emission takes one uncontended
    /// mutex; the sink flushes it in place during [`TraceSink::merged_trace`],
    /// so it need not be dropped before merging.
    pub fn shared_recorder(&self) -> SharedRecorder {
        let recorder = Arc::new(Mutex::new(Recorder::new(Arc::clone(&self.inner))));
        lock_or_recover(&self.inner.shared).push(Arc::downgrade(&recorder));
        SharedRecorder {
            enabled: self.inner.config.enabled(),
            sample_one_in: self.inner.config.sample_one_in,
            epoch: self.inner.epoch,
            inner: recorder,
        }
    }

    /// Merge every flushed ring (plus any still-live shared recorders)
    /// into one causally ordered [`Trace`].  Call after all worker-owned
    /// recorders have dropped, i.e. after the backend threads joined.
    pub fn merged_trace(&self) -> Trace {
        for weak in lock_or_recover(&self.inner.shared).drain(..) {
            if let Some(live) = weak.upgrade() {
                lock_or_recover(&live).flush();
            }
        }
        let mut events = std::mem::take(&mut *lock_or_recover(&self.inner.merged));
        events.sort_by(|a, b| {
            (a.at_us, a.req.ta, a.req.intra, a.kind.rank()).cmp(&(
                b.at_us,
                b.req.ta,
                b.req.intra,
                b.kind.rank(),
            ))
        });
        Trace {
            events,
            dropped: *lock_or_recover(&self.inner.dropped),
            sample_one_in: self.inner.config.sample_one_in,
        }
    }

    /// Take the anomaly windows frozen so far (drains the sink's list).
    pub fn take_anomalies(&self) -> Vec<AnomalyWindow> {
        std::mem::take(&mut *lock_or_recover(&self.inner.anomalies))
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::disabled()
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("config", &self.inner.config)
            .finish()
    }
}

/// A thread-owned event ring: bounded, drop-oldest, no locking on the
/// emission path.  Obtained from [`TraceSink::recorder`]; its contents move
/// into the sink when it drops or is explicitly flushed.
pub struct Recorder {
    inner: Arc<SinkInner>,
    sample_one_in: u64,
    capacity: usize,
    ring: Vec<Event>,
    head: usize,
    dropped: u64,
}

impl Recorder {
    fn new(inner: Arc<SinkInner>) -> Self {
        let config = inner.config;
        Recorder {
            inner,
            sample_one_in: config.sample_one_in,
            capacity: if config.enabled() { config.capacity } else { 0 },
            ring: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Whether tracing is enabled on the owning sink.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Whether transaction `ta` is in the sample.  Callers check this once
    /// per transaction and skip all bookkeeping for unsampled ones.  Full
    /// tracing short-circuits before the modulo (see
    /// [`TraceConfig::samples`]).
    pub fn samples(&self, ta: u64) -> bool {
        self.capacity > 0 && (self.sample_one_in == 1 || ta.is_multiple_of(self.sample_one_in))
    }

    /// Microseconds since the sink epoch.
    pub fn now_us(&self) -> u64 {
        duration_us(self.inner.epoch.elapsed())
    }

    /// Record an event for request `(ta, intra)` stamped now.  No-op when
    /// `ta` is not sampled.
    pub fn emit(&mut self, ta: u64, intra: u32, kind: EventKind) {
        if self.samples(ta) {
            let at_us = self.now_us();
            self.push(Event {
                req: ReqId::new(ta, intra),
                at_us,
                kind,
            });
        }
    }

    /// Record an event with a caller-provided timestamp, so a batch of
    /// requests qualified together can share one clock read.
    pub fn emit_at(&mut self, ta: u64, intra: u32, at_us: u64, kind: EventKind) {
        if self.samples(ta) {
            self.push(Event {
                req: ReqId::new(ta, intra),
                at_us,
                kind,
            });
        }
    }

    fn push(&mut self, event: Event) {
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            // Compare-and-reset rather than modulo: once the ring wraps,
            // every subsequent emission takes this branch, and a division
            // per event is measurable at full-tracing rates.
            self.ring[self.head] = event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// The ring's contents, oldest first.
    fn ordered(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Move the ring's contents into the sink and reset the ring.
    pub fn flush(&mut self) {
        if !self.ring.is_empty() {
            let events = self.ordered();
            lock_or_recover(&self.inner.merged).extend(events);
            self.ring.clear();
            self.head = 0;
        }
        if self.dropped > 0 {
            *lock_or_recover(&self.inner.dropped) += self.dropped;
            self.dropped = 0;
        }
    }

    /// Freeze the current ring contents into an anomaly window on the
    /// sink.  Works with tracing off too (empty window, reason kept), so
    /// anomaly *occurrence* is always visible post-mortem.  Windows past
    /// [`MAX_ANOMALY_WINDOWS`] are dropped.
    pub fn freeze_anomaly(&mut self, reason: &str) {
        let window = AnomalyWindow {
            reason: reason.to_string(),
            at_us: self.now_us(),
            events: self.ordered(),
        };
        let mut anomalies = lock_or_recover(&self.inner.anomalies);
        if anomalies.len() < MAX_ANOMALY_WINDOWS {
            anomalies.push(window);
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.capacity)
            .field("len", &self.ring.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

/// A clonable recorder for multi-threaded call sites (session handles, the
/// router): one mutex around a [`Recorder`], with the sampling check
/// answerable without taking it.
#[derive(Clone)]
pub struct SharedRecorder {
    enabled: bool,
    sample_one_in: u64,
    epoch: Instant,
    inner: Arc<Mutex<Recorder>>,
}

impl SharedRecorder {
    /// Whether transaction `ta` is in the sample (lock-free check).
    pub fn samples(&self, ta: u64) -> bool {
        self.enabled && (self.sample_one_in == 1 || ta.is_multiple_of(self.sample_one_in))
    }

    /// Microseconds since the sink epoch (lock-free — the epoch is a copy
    /// of the sink's, so reading the clock never contends with emission).
    pub fn now_us(&self) -> u64 {
        duration_us(self.epoch.elapsed())
    }

    /// Record an event stamped now.  No-op when `ta` is not sampled.
    pub fn emit(&self, ta: u64, intra: u32, kind: EventKind) {
        if self.samples(ta) {
            let at_us = self.now_us();
            lock_or_recover(&self.inner).emit_at(ta, intra, at_us, kind);
        }
    }

    /// Record an event with a caller-provided timestamp.
    pub fn emit_at(&self, ta: u64, intra: u32, at_us: u64, kind: EventKind) {
        if self.samples(ta) {
            lock_or_recover(&self.inner).emit_at(ta, intra, at_us, kind);
        }
    }

    /// Record one `kind` event per request of a transaction, all stamped
    /// `at_us`, under a single lock acquisition — the session layer emits
    /// `Submitted` and terminal brackets for every request of a
    /// transaction at once, and one lock per request would double the
    /// session-side emission cost.
    pub fn emit_group_at(&self, ta: u64, intras: &[u32], at_us: u64, kind: EventKind) {
        if self.samples(ta) && !intras.is_empty() {
            let mut recorder = lock_or_recover(&self.inner);
            for &intra in intras {
                recorder.emit_at(ta, intra, at_us, kind.clone());
            }
        }
    }

    /// Freeze the current window into the sink's anomaly list.
    pub fn freeze_anomaly(&self, reason: &str) {
        lock_or_recover(&self.inner).freeze_anomaly(reason);
    }
}

impl std::fmt::Debug for SharedRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRecorder")
            .field("enabled", &self.enabled)
            .finish()
    }
}

/// The merged, causally ordered flight-recorder output of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
    dropped: u64,
    sample_one_in: u64,
}

impl Trace {
    /// An empty trace (what disabled tracing reports).
    pub fn empty() -> Self {
        Trace::default()
    }

    /// All events, sorted by `(timestamp, ta, intra, lifecycle rank)`.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten in full rings before they could be merged.  When
    /// nonzero, early timelines may be truncated.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The sampling rate the trace was recorded at (`0` = tracing off).
    pub fn sample_one_in(&self) -> u64 {
        self.sample_one_in
    }

    /// The full lifecycle of one request, in causal order.
    pub fn timeline(&self, req: ReqId) -> Vec<Event> {
        self.events
            .iter()
            .filter(|e| e.req == req)
            .cloned()
            .collect()
    }

    /// Every event of one transaction (all intra positions), in causal
    /// order.
    pub fn transaction(&self, ta: u64) -> Vec<Event> {
        self.events
            .iter()
            .filter(|e| e.req.ta == ta)
            .cloned()
            .collect()
    }

    /// Per-phase latency histograms over every request with the relevant
    /// event pairs: queue wait (`Submitted → Qualified`), execution
    /// (`Dispatched → Executed`), and end-to-end (`Submitted → terminal`).
    pub fn phase_histograms(&self) -> PhaseHistograms {
        #[derive(Default)]
        struct Life {
            submitted: Option<u64>,
            dispatched: Option<u64>,
            qualified: Option<u64>,
            executed: Option<u64>,
            terminal: Option<u64>,
        }
        let mut lives: HashMap<ReqId, Life> = HashMap::new();
        for event in &self.events {
            let life = lives.entry(event.req).or_default();
            match event.kind {
                EventKind::Submitted => life.submitted = life.submitted.or(Some(event.at_us)),
                EventKind::Qualified => life.qualified = life.qualified.or(Some(event.at_us)),
                EventKind::Dispatched => life.dispatched = life.dispatched.or(Some(event.at_us)),
                EventKind::Executed => life.executed = Some(event.at_us),
                ref kind if kind.is_terminal() => {
                    life.terminal = life.terminal.or(Some(event.at_us))
                }
                _ => {}
            }
        }
        let mut histograms = PhaseHistograms::default();
        for life in lives.values() {
            if let (Some(s), Some(q)) = (life.submitted, life.qualified) {
                histograms.queue.record(q.saturating_sub(s));
            }
            if let (Some(d), Some(x)) = (life.dispatched, life.executed) {
                histograms.execute.record(x.saturating_sub(d));
            }
            if let (Some(s), Some(t)) = (life.submitted, life.terminal) {
                histograms.end_to_end.record(t.saturating_sub(s));
            }
        }
        histograms
    }
}

const PHASE_BUCKETS: usize = 40;

/// Latency statistics for one lifecycle phase: count/sum/min/max plus a
/// power-of-two bucket histogram (bucket 0 holds zero; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)` microseconds).
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum_us: u64,
    /// Smallest sample (µs); 0 when empty.
    pub min_us: u64,
    /// Largest sample (µs).
    pub max_us: u64,
    /// Power-of-two buckets.
    pub buckets: [u64; PHASE_BUCKETS],
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats {
            count: 0,
            sum_us: 0,
            min_us: 0,
            max_us: 0,
            buckets: [0; PHASE_BUCKETS],
        }
    }
}

impl PhaseStats {
    /// Record one sample in microseconds.
    pub fn record(&mut self, us: u64) {
        if self.count == 0 || us < self.min_us {
            self.min_us = us;
        }
        self.max_us = self.max_us.max(us);
        self.count += 1;
        self.sum_us += us;
        let index = (64 - us.leading_zeros() as usize).min(PHASE_BUCKETS - 1);
        self.buckets[index] += 1;
    }

    /// Mean sample in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if index == 0 { 0 } else { 1u64 << index };
            }
        }
        self.max_us
    }
}

/// Per-phase latency histograms derived from a [`Trace`].
#[derive(Debug, Clone, Default)]
pub struct PhaseHistograms {
    /// `Submitted → Qualified`: queue wait plus rule-evaluation share.
    pub queue: PhaseStats,
    /// `Dispatched → Executed`: storage-engine execution latency.
    pub execute: PhaseStats,
    /// `Submitted → terminal`: full client-visible latency.
    pub end_to_end: PhaseStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_samples_nothing() {
        let config = TraceConfig::off();
        assert!(!config.enabled());
        assert!(!config.samples(0));
        let sink = TraceSink::new(config);
        let mut recorder = sink.recorder();
        recorder.emit(0, 0, EventKind::Submitted);
        drop(recorder);
        assert!(sink.merged_trace().is_empty());
    }

    #[test]
    fn sampling_is_by_transaction_id() {
        let config = TraceConfig::sampled(4, 16);
        assert!(config.samples(0));
        assert!(config.samples(8));
        assert!(!config.samples(3));
    }

    #[test]
    fn merge_orders_by_time_then_lifecycle_rank() {
        let sink = TraceSink::new(TraceConfig::full(64));
        let mut a = sink.recorder();
        let mut b = sink.recorder();
        // Same timestamp, ranks force causal order regardless of ring.
        b.emit_at(1, 0, 10, EventKind::Executed);
        a.emit_at(1, 0, 10, EventKind::Qualified);
        a.emit_at(1, 0, 5, EventKind::Submitted);
        drop(a);
        drop(b);
        let trace = sink.merged_trace();
        let kinds: Vec<&'static str> = trace.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, vec!["submitted", "qualified", "executed"]);
        assert_eq!(trace.timeline(ReqId::new(1, 0)).len(), 3);
        assert!(trace.timeline(ReqId::new(2, 0)).is_empty());
    }

    #[test]
    fn ring_drops_oldest_and_counts_it() {
        let sink = TraceSink::new(TraceConfig::full(4));
        let mut recorder = sink.recorder();
        for i in 0..10u64 {
            recorder.emit_at(1, 0, i, EventKind::Qualified);
        }
        drop(recorder);
        let trace = sink.merged_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.dropped(), 6);
        // The survivors are the newest four, oldest first.
        let stamps: Vec<u64> = trace.events().iter().map(|e| e.at_us).collect();
        assert_eq!(stamps, vec![6, 7, 8, 9]);
    }

    #[test]
    fn shared_recorders_flush_at_merge_without_dropping() {
        let sink = TraceSink::new(TraceConfig::full(64));
        let shared = sink.shared_recorder();
        shared.emit(2, 1, EventKind::Submitted);
        shared.emit(3, 0, EventKind::Shed);
        // `shared` is still alive — merged_trace must see its events.
        let trace = sink.merged_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.transaction(3)[0].kind, EventKind::Shed);
    }

    #[test]
    fn anomaly_window_freezes_ring_even_when_tracing_off() {
        let sink = TraceSink::disabled();
        let mut recorder = sink.recorder();
        recorder.freeze_anomaly("poisoned: scheduler");
        let windows = sink.take_anomalies();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].reason, "poisoned: scheduler");
        assert!(windows[0].events.is_empty());
        assert!(sink.take_anomalies().is_empty());

        let sink = TraceSink::new(TraceConfig::full(8));
        let mut recorder = sink.recorder();
        recorder.emit(1, 0, EventKind::Submitted);
        recorder.freeze_anomaly("deadlock victim T1");
        let windows = sink.take_anomalies();
        assert_eq!(windows[0].events.len(), 1);
    }

    #[test]
    fn anomaly_windows_are_capped() {
        let sink = TraceSink::new(TraceConfig::full(8));
        let mut recorder = sink.recorder();
        for i in 0..(MAX_ANOMALY_WINDOWS + 10) {
            recorder.freeze_anomaly(&format!("window {i}"));
        }
        assert_eq!(sink.take_anomalies().len(), MAX_ANOMALY_WINDOWS);
    }

    #[test]
    fn phase_histograms_measure_the_three_phases() {
        let sink = TraceSink::new(TraceConfig::full(64));
        let mut r = sink.recorder();
        r.emit_at(1, 0, 100, EventKind::Submitted);
        r.emit_at(1, 0, 180, EventKind::Qualified);
        r.emit_at(1, 0, 200, EventKind::Dispatched);
        r.emit_at(1, 0, 230, EventKind::Executed);
        r.emit_at(1, 0, 300, EventKind::Committed);
        drop(r);
        let phases = sink.merged_trace().phase_histograms();
        assert_eq!(phases.queue.count, 1);
        assert_eq!(phases.queue.sum_us, 80);
        assert_eq!(phases.execute.sum_us, 30);
        assert_eq!(phases.end_to_end.sum_us, 200);
        assert!(phases.end_to_end.quantile_us(0.99) >= 200);
        assert_eq!(phases.end_to_end.mean_us(), 200.0);
    }

    #[test]
    fn recorder_timestamps_are_monotone() {
        let sink = TraceSink::new(TraceConfig::full(16));
        let recorder = sink.recorder();
        let a = recorder.now_us();
        let b = recorder.now_us();
        assert!(b >= a);
        assert!(sink.now_us() >= b);
    }
}
