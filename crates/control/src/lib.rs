//! # control — the adaptive control plane
//!
//! The sharded scheduler partitions the object space by a fixed hash, which
//! balances *uniform* traffic perfectly and skewed traffic terribly: a
//! handful of hot objects that happen to hash together turn an N-shard
//! fleet into one hot worker with N−1 idle bystanders.  This crate closes
//! the loop: a [`ControlPlane`] thread samples per-shard load and the
//! router's hot-object frequency sketch through [`shard::ControlHandle`],
//! and when it finds a shard carrying disproportionate load it **re-homes**
//! the hottest objects of that shard onto the least-loaded shards through
//! the router's epoch-fenced placement-migration lever.
//!
//! ```text
//!   ┌──────────────────────── ControlPlane (one thread) ───────────────┐
//!   │ every `interval`:                                                │
//!   │   depths  = handle.queue_depths()      (live per-shard gauges)   │
//!   │   hot     = handle.drain_hot_objects() (space-saving sketch)     │
//!   │   if max(depths) > skew_ratio · mean(depths):                    │
//!   │       for hottest objects homed on the overloaded shard:         │
//!   │           handle.rehome(object, least-loaded shard)              │
//!   │             └─ fences submissions, quiesces the object,          │
//!   │                moves its row, flips the placement overlay        │
//!   └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Migrations are conservative by construction: the router only moves an
//! object that is completely idle on its current home (no queued or
//! pending request, no live lock), so a migration can never reorder or
//! violate admitted work — a busy object simply reports
//! [`shard::RehomeOutcome::Busy`] and is retried on a later cycle.
//!
//! The second overload lever — SLA-aware shedding — lives in the session
//! layer (`session::ShedPolicy`): it needs to act on every submission
//! before routing, not once per sampling cycle.
//!
//! ```no_run
//! use control::{ControlConfig, ControlPlane};
//! use session::Scheduler;
//!
//! let scheduler = Scheduler::builder().shards(4).build().unwrap();
//! let control = ControlPlane::start(
//!     scheduler.sharded_control().expect("sharded deployment"),
//!     ControlConfig::default(),
//! );
//! // ... drive traffic ...
//! let stats = control.stop();
//! assert!(stats.cycles > 0 || stats.migrations == 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use shard::{ControlHandle, RehomeOutcome};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the [`ControlPlane`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Sampling interval between control cycles.
    pub interval: Duration,
    /// A shard is considered hot when its queue depth exceeds
    /// `skew_ratio ×` the mean depth across shards (and `min_depth`).
    pub skew_ratio: f64,
    /// Ignore shards whose absolute queue depth is below this — tiny
    /// backlogs are noise, not skew.
    pub min_depth: u64,
    /// Upper bound on migrations per cycle, so one cycle cannot churn the
    /// whole placement at once.
    pub max_moves_per_cycle: usize,
    /// Only objects whose accumulated sketch weight reaches this are worth
    /// migrating — a migration fences every submission, so moving
    /// cold-tail objects is pure overhead.
    pub min_object_weight: u64,
    /// Cycles an object is immune from re-migration after a move, so two
    /// comparably loaded shards cannot ping-pong a hot object between them.
    pub cooldown_cycles: u64,
    /// Once depth skew is detected, keep rebalancing for this many further
    /// cycles even if the live queues drain meanwhile.  An object under
    /// sustained load is almost never idle at the instant a migration
    /// probes it; the lull right after a hot burst is when migrations
    /// actually land, and the skew that triggered the window is about to
    /// come back.
    pub sticky_cycles: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            interval: Duration::from_millis(10),
            skew_ratio: 1.5,
            min_depth: 8,
            max_moves_per_cycle: 8,
            min_object_weight: 8,
            cooldown_cycles: 100,
            sticky_cycles: 100,
        }
    }
}

/// What the control plane did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Sampling cycles executed.
    pub cycles: u64,
    /// Objects successfully re-homed.
    pub migrations: u64,
    /// Migration attempts refused because the object was busy (retried on
    /// later cycles).
    pub busy: u64,
    /// Migration attempts that failed outright (fleet shutting down).
    pub failed: u64,
}

/// The running control plane: one sampling/rebalancing thread over a shard
/// fleet.  Stop it (or drop it) before shutting the fleet down.
pub struct ControlPlane {
    stop: Sender<()>,
    handle: Option<JoinHandle<ControlStats>>,
}

impl ControlPlane {
    /// Start the control loop over `handle` with the given tuning.
    pub fn start(handle: ControlHandle, config: ControlConfig) -> Self {
        Self::start_inner(handle, config, None)
    }

    /// Like [`ControlPlane::start`], mirroring the control loop's state
    /// into `registry` once per cycle: the `control.*` counters (cycles,
    /// migrations, busy, failed), per-shard `control.shard.<i>.queue_depth`
    /// gauges, and the `control.hot_backlog_weight` gauge (the decaying
    /// hot-object weight the rebalancer is tracking).
    pub fn start_observed(
        handle: ControlHandle,
        config: ControlConfig,
        registry: std::sync::Arc<obs::Registry>,
    ) -> Self {
        Self::start_inner(handle, config, Some(registry))
    }

    fn start_inner(
        handle: ControlHandle,
        config: ControlConfig,
        registry: Option<std::sync::Arc<obs::Registry>>,
    ) -> Self {
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let thread = std::thread::Builder::new()
            .name("declsched-control".to_string())
            .spawn(move || {
                let mut rebalancer = Rebalancer::new(config);
                let mut stats = ControlStats::default();
                let metrics = registry.map(|registry| {
                    let depth_gauges: Vec<obs::Gauge> = (0..handle.shards())
                        .map(|shard| registry.gauge(&format!("control.shard.{shard}.queue_depth")))
                        .collect();
                    (
                        registry.counter("control.cycles"),
                        registry.counter("control.migrations"),
                        registry.counter("control.busy"),
                        registry.counter("control.failed"),
                        registry.gauge("control.hot_backlog_weight"),
                        depth_gauges,
                    )
                });
                loop {
                    match stop_rx.recv_timeout(config.interval) {
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => break,
                        Err(RecvTimeoutError::Timeout) => {}
                    }
                    stats.cycles += 1;
                    let before = stats;
                    rebalancer.cycle(&handle, &mut stats);
                    if let Some((cycles, migrations, busy, failed, backlog, depths)) = &metrics {
                        cycles.inc();
                        migrations.add(stats.migrations - before.migrations);
                        busy.add(stats.busy - before.busy);
                        failed.add(stats.failed - before.failed);
                        backlog.set(rebalancer.backlog_weight());
                        for (gauge, depth) in depths.iter().zip(handle.queue_depths()) {
                            gauge.set(depth);
                        }
                    }
                }
                stats
            })
            .expect("spawning the control thread cannot fail");
        ControlPlane {
            stop: stop_tx,
            handle: Some(thread),
        }
    }

    /// Stop the control loop and return its lifetime stats.
    pub fn stop(mut self) -> ControlStats {
        let _ = self.stop.send(());
        self.handle
            .take()
            .expect("control thread present until stop")
            .join()
            .expect("control thread never panics")
    }
}

impl Drop for ControlPlane {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The rebalancing policy, separated from the sampling thread so tests can
/// drive cycles deterministically.
///
/// Hot-object observations are carried across cycles in a decaying
/// backlog: the router's sketch resets on every drain, and a hot object
/// that was busy when its migration was attempted must still be a
/// candidate on the next cycle.
pub struct Rebalancer {
    config: ControlConfig,
    /// Accumulated hot-object weights, decayed by half each cycle so stale
    /// heat dies out.
    backlog: Vec<(i64, u64)>,
    /// Cycles executed (the cooldown clock).
    cycle_count: u64,
    /// object → cycle it was last migrated at.
    moved_at: std::collections::HashMap<i64, u64>,
    /// Keep rebalancing until this cycle (the sticky skew window).
    hot_until: u64,
}

impl Rebalancer {
    /// A fresh rebalancer with the given tuning.
    pub fn new(config: ControlConfig) -> Self {
        Rebalancer {
            config,
            backlog: Vec::new(),
            cycle_count: 0,
            moved_at: std::collections::HashMap::new(),
            hot_until: 0,
        }
    }

    /// One sampling/rebalancing cycle over the fleet.
    ///
    /// **Detection** is depth-based: a shard whose live queue exceeds
    /// `skew_ratio ×` the mean opens (or extends) the sticky rebalancing
    /// window.  **Action** is weight-based: within the window, the sketch
    /// backlog is grouped by current home shard, and hot objects are moved
    /// from the weight-heaviest shard to the weight-lightest until the
    /// weights balance — so migrations keep landing during the lulls in
    /// which hot objects are actually idle.
    pub fn cycle(&mut self, handle: &ControlHandle, stats: &mut ControlStats) {
        self.cycle_count += 1;
        let depths = handle.queue_depths();
        self.absorb(handle.drain_hot_objects());
        if depths.len() < 2 || self.backlog.is_empty() {
            return;
        }

        let config = self.config;
        let depth_mean = depths.iter().sum::<u64>() as f64 / depths.len() as f64;
        let depth_max = depths.iter().copied().max().unwrap_or(0);
        if depth_max >= config.min_depth
            && (depth_max as f64) > config.skew_ratio * depth_mean.max(1.0)
        {
            self.hot_until = self.cycle_count + config.sticky_cycles;
        }
        if self.cycle_count > self.hot_until {
            return;
        }

        // The hot backlog grouped by current home shard.
        let mut weights = vec![0u64; depths.len()];
        for &(object, weight) in &self.backlog {
            weights[handle.shard_of(object)] += weight;
        }
        let mut moved = 0usize;
        let mut remaining = Vec::with_capacity(self.backlog.len());
        for &(object, weight) in &self.backlog {
            let weight_mean = weights.iter().sum::<u64>() as f64 / weights.len() as f64;
            let (source, &source_weight) = weights
                .iter()
                .enumerate()
                .max_by_key(|(_, &w)| w)
                .expect("at least two shards");
            // Stop once the hot set is spread evenly enough.
            if (source_weight as f64) <= config.skew_ratio * weight_mean.max(1.0) {
                remaining.push((object, weight));
                continue;
            }
            let cooling = self
                .moved_at
                .get(&object)
                .is_some_and(|&at| self.cycle_count.saturating_sub(at) < config.cooldown_cycles);
            if moved >= config.max_moves_per_cycle
                || weight < config.min_object_weight
                || cooling
                || handle.shard_of(object) != source
            {
                remaining.push((object, weight));
                continue;
            }
            let (target, _) = weights
                .iter()
                .enumerate()
                .filter(|(shard, _)| *shard != source)
                .min_by_key(|(_, &w)| w)
                .expect("at least two shards");
            match handle.rehome(object, target) {
                Ok(RehomeOutcome::Done) => {
                    stats.migrations += 1;
                    moved += 1;
                    self.moved_at.insert(object, self.cycle_count);
                    // The hot object's traffic follows it; it stays in the
                    // backlog (still hot, just re-homed) so future weight
                    // accounting sees it on its new shard.
                    weights[target] += weight;
                    weights[source] -= weight;
                    remaining.push((object, weight));
                }
                Ok(RehomeOutcome::Busy) => {
                    stats.busy += 1;
                    // Keep it hot; retry next cycle.
                    remaining.push((object, weight));
                }
                Ok(RehomeOutcome::NoOp) => {}
                Err(_) => {
                    stats.failed += 1;
                    // The fleet is going away; stop trying this cycle.
                    remaining.push((object, weight));
                    break;
                }
            }
        }
        self.backlog = remaining;
    }

    /// Total weight of the decaying hot-object backlog — how much heat the
    /// rebalancer is currently tracking (exported as the
    /// `control.hot_backlog_weight` gauge).
    pub fn backlog_weight(&self) -> u64 {
        self.backlog.iter().map(|&(_, weight)| weight).sum()
    }

    /// Merge freshly drained sketch counters into the decaying backlog.
    /// Heat halves every 16 cycles — fast enough that yesterday's hot set
    /// ages out, slow enough that a traffic lull (exactly when migrations
    /// land) does not erase the candidates before they can be moved.
    fn absorb(&mut self, hot: Vec<(i64, u64)>) {
        if self.cycle_count.is_multiple_of(16) {
            for (_, weight) in self.backlog.iter_mut() {
                *weight /= 2;
            }
            self.backlog.retain(|&(_, weight)| weight > 0);
        }
        for (object, weight) in hot {
            match self.backlog.iter_mut().find(|(o, _)| *o == object) {
                Some((_, w)) => *w += weight,
                None => self.backlog.push((object, weight)),
            }
        }
        self.backlog
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.backlog.truncate(256);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use declsched::{shard_of, Protocol, ProtocolKind, SchedulerConfig, TriggerPolicy};
    use session::{Scheduler, Txn};

    fn sharded_scheduler(shards: usize) -> Scheduler {
        Scheduler::builder()
            .table("bench", 1_024)
            .scheduler_config(SchedulerConfig {
                trigger: TriggerPolicy::Hybrid {
                    interval_ms: 1,
                    threshold: 8,
                },
                ..SchedulerConfig::default()
            })
            .policy(Protocol::algebra(ProtocolKind::Ss2pl))
            .shards(shards)
            .build()
            .expect("fleet starts")
    }

    /// Objects that hash to the given shard at 2-way partitioning.
    fn objects_on_shard(shard: usize, n: usize) -> Vec<i64> {
        (0..1_024i64)
            .filter(|&o| shard_of(o, 2) == shard)
            .take(n)
            .collect()
    }

    #[test]
    fn idle_cycle_migrates_nothing() {
        let scheduler = sharded_scheduler(2);
        let handle = scheduler.sharded_control().expect("sharded");
        let mut stats = ControlStats::default();
        Rebalancer::new(ControlConfig::default()).cycle(&handle, &mut stats);
        assert_eq!(stats.migrations, 0);
        assert_eq!(handle.placement_epoch(), 0);
        let _ = scheduler.shutdown();
    }

    #[test]
    fn skewed_traffic_is_rebalanced_onto_the_idle_shard() {
        let scheduler = sharded_scheduler(2);
        let handle = scheduler.sharded_control().expect("sharded");
        let mut session = scheduler.connect();

        // Heat up 4 objects homed on shard 0, sequentially so they are all
        // idle afterwards (nothing pending, no locks held).
        let on_zero = objects_on_shard(0, 5);
        let (hot, cold) = (&on_zero[..4], on_zero[4]);
        let mut ta = 0u64;
        for round in 0..40 {
            let object = hot[round % hot.len()];
            ta += 1;
            session
                .execute(Txn::new(ta).write(object, 1).commit())
                .expect("hot traffic commits");
        }

        // Pile a backlog onto shard 0 behind a held lock on a *different*
        // object, so the shard reads as overloaded while the hot objects
        // stay migratable.
        ta += 1;
        let blocker = ta;
        session
            .submit(Txn::new(blocker).write(cold, 9))
            .expect("lock holder submits")
            .wait()
            .expect("lock holder executes");
        let mut blocked = Vec::new();
        for _ in 0..32 {
            ta += 1;
            blocked.push(
                session
                    .submit(Txn::new(ta).write(cold, 9).commit())
                    .expect("blocked traffic submits"),
            );
        }
        // Let the worker fold the backlog into its depth gauge.
        std::thread::sleep(Duration::from_millis(10));

        let mut stats = ControlStats::default();
        let mut rebalancer = Rebalancer::new(ControlConfig {
            min_depth: 1,
            skew_ratio: 1.0,
            max_moves_per_cycle: 4,
            min_object_weight: 1,
            ..ControlConfig::default()
        });
        for _ in 0..100 {
            rebalancer.cycle(&handle, &mut stats);
            if stats.migrations >= 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            stats.migrations >= 1,
            "skewed traffic must trigger at least one migration: {stats:?}"
        );
        assert!(handle.placement_epoch() >= 1);
        // Migrated objects now live away from their hash home (on the only
        // other shard).
        assert_eq!(handle.rehomed_objects() as u64, stats.migrations);

        // Release the backlog and finish the run cleanly.
        ta += 1;
        session
            .submit(Txn::resume(blocker, 1).commit())
            .expect("lock holder commits")
            .wait()
            .expect("commit executes");
        let _ = ta;
        for ticket in blocked {
            ticket.wait().expect("blocked traffic drains");
        }
        session.drain().expect("session drains");

        let report = scheduler.shutdown();
        let detail = report.sharded.expect("sharded detail");
        assert_eq!(detail.placement.len() as u64, stats.migrations);
        assert_eq!(detail.unreclaimed_homes, 0);
        // Final state is correct despite the migrations: hot rows hold 1,
        // the contested cold row holds its last committed write.
        for &object in hot {
            assert_eq!(report.final_rows[object as usize], 1, "object {object}");
        }
        assert_eq!(report.final_rows[cold as usize], 9);
    }

    #[test]
    fn control_plane_thread_starts_and_stops_cleanly() {
        let scheduler = sharded_scheduler(2);
        let control = ControlPlane::start(
            scheduler.sharded_control().expect("sharded"),
            ControlConfig {
                interval: Duration::from_millis(1),
                ..ControlConfig::default()
            },
        );
        std::thread::sleep(Duration::from_millis(10));
        let stats = control.stop();
        assert!(stats.cycles >= 1, "the loop must have sampled: {stats:?}");
        assert_eq!(stats.migrations, 0);
        let _ = scheduler.shutdown();
    }
}
