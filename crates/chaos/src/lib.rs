//! Deterministic chaos engine: seeded fault plans fired at named hook
//! points threaded through the scheduler stack.
//!
//! The stack calls [`FaultInjector::fire`] at every instrumented hook
//! point (worker round, terminal execution, router fast-path send,
//! escalation-lane job, session submission).  The injector counts visits
//! per hook and hands back the scripted [`Fault`] when a visit number in
//! the [`FaultPlan`] comes up — so the same plan against the same
//! workload replays the same fault at the same place, every run.
//!
//! Faults are *data*, not behaviour: each subsystem interprets the fault
//! it receives (a worker sleeps on `Stall`, drops dead on `Kill`; the
//! router fails the mailbox send on `SendFail`; the session layer flips
//! the live shed policy on `ShedFlip`).  A hook that receives a fault
//! variant it cannot express simply ignores it.
//!
//! Everything is reproducible from one `u64`: [`FaultPlan::seeded`]
//! derives a survivable plan from a seed via an internal splitmix64
//! stream, [`seed_from_env`] lets `CHAOS_SEED=<n>` override it, and
//! [`announce_seed_on_panic`] makes any panicking harness print the
//! one-command repro line.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once};

// ---------------------------------------------------------------------------
// Hook points
// ---------------------------------------------------------------------------

/// A named instrumentation point in the scheduler stack.
///
/// Hooks are identified by site *and* shard, so a plan can target one
/// worker of a sharded deployment while its peers run clean.  Unsharded
/// and passthrough deployments report their single execution loop as
/// shard `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Hook {
    /// Top of a scheduler/worker loop iteration, after draining the
    /// mailbox.  `Stall` sleeps the loop; `Kill` turns the worker dead.
    WorkerRound {
        /// Shard whose loop is visiting the hook.
        shard: usize,
    },
    /// Immediately before a terminal (commit/rollback) request executes.
    /// `Stall` here is an artificial lock-hold extension: every lock the
    /// transaction owns stays held for the stall duration.
    WorkerCommit {
        /// Shard executing the terminal request.
        shard: usize,
    },
    /// Immediately before the router's fast-path mailbox send to a shard
    /// worker.  `SendFail` fails the submission as if the mailbox were
    /// gone.
    RouterSend {
        /// Shard the transaction was routed to.
        shard: usize,
    },
    /// Top of an escalation-lane job, when the coordinator dequeues it
    /// (before any runner starts).  `Stall` delays the whole lane.
    LaneJob,
    /// Immediately before the lane sends a two-phase `Prepare` to a
    /// participant shard.  `Stall` delays the handshake; `Kill` kills the
    /// participant worker mid-handshake, so the initiator must release
    /// the shards it already holds and fail the escalation with a typed
    /// error.
    LanePrepare {
        /// Participant shard about to receive the prepare.
        shard: usize,
    },
    /// Immediately before the lane sends the commit-phase execution batch
    /// to a participant shard it holds.  `Stall` extends the hold;
    /// `Kill` kills the participant before its slice executes.
    LaneCommit {
        /// Participant shard about to receive the commit batch.
        shard: usize,
    },
    /// Top of the session layer's submission path — fires once per
    /// submission across every session of the deployment.  `ShedFlip`
    /// swaps the live shed policy mid-run.
    SessionSubmit,
}

impl Hook {
    /// Stable human-readable label (used in fired-fault records, docs and
    /// the chaos matrix output).
    pub fn label(&self) -> String {
        match self {
            Hook::WorkerRound { shard } => format!("worker-round/{shard}"),
            Hook::WorkerCommit { shard } => format!("worker-commit/{shard}"),
            Hook::RouterSend { shard } => format!("router-send/{shard}"),
            Hook::LaneJob => "lane-job".to_string(),
            Hook::LanePrepare { shard } => format!("lane-prepare/{shard}"),
            Hook::LaneCommit { shard } => format!("lane-commit/{shard}"),
            Hook::SessionSubmit => "session-submit".to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

/// A scripted fault, interpreted by the subsystem that owns the hook.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Sleep the visiting thread for `millis` wall-clock milliseconds.
    /// At [`Hook::WorkerCommit`] this is a lock-hold extension; at
    /// [`Hook::LaneJob`] an escalation-lane delay.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Kill the visiting worker: it fails everything it holds, reclaims
    /// its routing state and answers every later message with an error.
    /// Only meaningful at [`Hook::WorkerRound`].
    Kill,
    /// Fail the mailbox send: the submission is refused as if the shard
    /// worker's channel were closed.  Only meaningful at
    /// [`Hook::RouterSend`].
    SendFail,
    /// Swap the live overload-shedding policy.  Only meaningful at
    /// [`Hook::SessionSubmit`].  Fields mirror the session layer's
    /// `ShedPolicy` without depending on it.
    ShedFlip {
        /// `true` engages the policy below, `false` disengages shedding.
        enable: bool,
        /// Queue depth at which shedding engages.
        queue_watermark: usize,
        /// Minimum SLA priority that is never shed.
        protect_priority: i64,
    },
}

impl Fault {
    /// Stable human-readable label.
    pub fn label(&self) -> String {
        match self {
            Fault::Stall { millis } => format!("stall({millis}ms)"),
            Fault::Kill => "kill".to_string(),
            Fault::SendFail => "send-fail".to_string(),
            Fault::ShedFlip { enable, .. } => {
                format!("shed-flip({})", if *enable { "on" } else { "off" })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// One scripted injection: at the `at_visit`-th visit of `hook` (counting
/// from zero), deliver `fault`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEntry {
    /// Where the fault fires.
    pub hook: Hook,
    /// Zero-based visit count of `hook` at which the fault is delivered.
    /// A fault whose visit has already passed when it becomes next in
    /// line fires on the following visit — nothing is silently dropped.
    pub at_visit: u64,
    /// What happens.
    pub fault: Fault,
}

/// Backend shape a seeded plan is derived for, so the generated hooks
/// actually exist in the deployment under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendProfile {
    /// Single scheduler thread (middleware): loop hooks on shard 0.
    Unsharded,
    /// Router fleet: per-shard loop hooks, router sends, escalation lane.
    Sharded {
        /// Number of shard workers.
        shards: usize,
    },
    /// Single forward thread: loop hooks on shard 0.
    Passthrough,
}

/// A deterministic, replayable fault schedule.
///
/// Build one explicitly with [`FaultPlan::new`] + [`FaultPlan::inject`],
/// or derive a *survivable* plan from a seed with [`FaultPlan::seeded`]
/// — survivable meaning every injected fault (stalls, shed flips, a
/// routed send failure) leaves the deployment able to finish the run
/// with a clean invariant oracle and zero leaked routing state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans); printed
    /// in repro lines.
    pub seed: u64,
    /// The scripted injections, in no particular order.
    pub entries: Vec<FaultEntry>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Script `fault` at the `at_visit`-th visit of `hook`.
    pub fn inject(mut self, hook: Hook, at_visit: u64, fault: Fault) -> Self {
        self.entries.push(FaultEntry {
            hook,
            at_visit,
            fault,
        });
        self
    }

    /// Record the seed a hand-tuned plan derives from.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Derive a survivable fault plan for `profile` from `seed`.
    ///
    /// The plan mixes worker stalls, a lock-hold extension, a mid-run
    /// shed-policy flip (engage, then release), and — on sharded
    /// deployments — an escalation-lane delay, one fast-path send
    /// failure, and one mid-handshake participant kill at a
    /// [`Hook::LanePrepare`] point.  It never kills a worker *loop*
    /// ([`Hook::WorkerRound`] `Kill` plans are for targeted tests, not
    /// the matrix); the lane-prepare kill is survivable by construction
    /// because the initiating lane releases its held shards and fails
    /// the escalation with a typed error.
    pub fn seeded(seed: u64, profile: BackendProfile) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut plan = FaultPlan::new().with_seed(seed);
        let shards = match profile {
            BackendProfile::Sharded { shards } => shards.max(1),
            _ => 1,
        };

        // A couple of loop stalls on a randomly chosen shard each.
        for _ in 0..2 {
            let shard = rng.below(shards as u64) as usize;
            plan = plan.inject(
                Hook::WorkerRound { shard },
                rng.range(2, 40),
                Fault::Stall {
                    millis: rng.range(1, 5),
                },
            );
        }
        // One artificial lock-hold extension.
        plan = plan.inject(
            Hook::WorkerCommit {
                shard: rng.below(shards as u64) as usize,
            },
            rng.range(1, 30),
            Fault::Stall {
                millis: rng.range(2, 8),
            },
        );
        // Engage shedding mid-run, release it later.  Watermark low
        // enough to plausibly engage, protection at the premium tier.
        let flip_on = rng.range(4, 24);
        plan = plan
            .inject(
                Hook::SessionSubmit,
                flip_on,
                Fault::ShedFlip {
                    enable: true,
                    queue_watermark: rng.range(2, 10) as usize,
                    protect_priority: 3,
                },
            )
            .inject(
                Hook::SessionSubmit,
                flip_on + rng.range(8, 40),
                Fault::ShedFlip {
                    enable: false,
                    queue_watermark: 0,
                    protect_priority: 0,
                },
            );
        if let BackendProfile::Sharded { .. } = profile {
            // Delay the serialized escalation lane once.
            plan = plan.inject(
                Hook::LaneJob,
                rng.range(0, 4),
                Fault::Stall {
                    millis: rng.range(1, 6),
                },
            );
            // Fail exactly one fast-path send.
            plan = plan.inject(
                Hook::RouterSend {
                    shard: rng.below(shards as u64) as usize,
                },
                rng.range(3, 30),
                Fault::SendFail,
            );
            // Kill one two-phase participant mid-handshake: the prepare
            // is refused, the initiator releases its held shards and the
            // escalation fails typed.  (The hook only fires if the
            // workload actually escalates — `unfired` reports it
            // otherwise.)
            plan = plan.inject(
                Hook::LanePrepare {
                    shard: rng.below(shards as u64) as usize,
                },
                rng.range(1, 12),
                Fault::Kill,
            );
        }
        plan
    }
}

// ---------------------------------------------------------------------------
// The injector
// ---------------------------------------------------------------------------

/// Per-hook firing state: a visit counter plus the hook's scripted
/// faults, sorted by visit.
#[derive(Debug, Default)]
struct SlotState {
    visits: u64,
    next: usize,
    faults: Vec<(u64, Fault)>,
}

/// A record of one fault that actually fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiredFault {
    /// The hook that delivered it.
    pub hook: Hook,
    /// The visit count at which it fired.
    pub at_visit: u64,
    /// The fault delivered.
    pub fault: Fault,
}

/// The runtime half of a [`FaultPlan`]: threads through the stack (one
/// per deployment) and answers [`FaultInjector::fire`] at every hook.
///
/// Thread-safe — hooks fire from worker threads, the escalation
/// coordinator and client sessions concurrently; each hook's state sits
/// behind its own mutex so disjoint hooks never contend.
#[derive(Debug, Default)]
pub struct FaultInjector {
    slots: HashMap<Hook, Mutex<SlotState>>,
    fired: Mutex<Vec<FiredFault>>,
    seed: u64,
}

impl FaultInjector {
    /// Build the runtime injector for `plan`.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut slots: HashMap<Hook, Mutex<SlotState>> = HashMap::new();
        for entry in &plan.entries {
            slots
                .entry(entry.hook)
                .or_default()
                .get_mut()
                .expect("fresh mutex")
                .faults
                .push((entry.at_visit, entry.fault));
        }
        for slot in slots.values_mut() {
            slot.get_mut()
                .expect("fresh mutex")
                .faults
                .sort_by_key(|&(visit, _)| visit);
        }
        FaultInjector {
            slots,
            fired: Mutex::new(Vec::new()),
            seed: plan.seed,
        }
    }

    /// An injector that never fires — the default wired into deployments
    /// built without a chaos plan.
    pub fn disabled() -> Self {
        FaultInjector::default()
    }

    /// Whether this injector can ever deliver a fault.
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Seed of the plan this injector runs (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Count a visit of `hook` and return the scripted fault due at this
    /// visit, if any.  A fault whose visit was missed (the slot fell
    /// behind) fires on the next visit rather than being dropped.
    pub fn fire(&self, hook: Hook) -> Option<Fault> {
        let slot = self.slots.get(&hook)?;
        let mut state = slot.lock().unwrap_or_else(|poison| poison.into_inner());
        let visit = state.visits;
        state.visits += 1;
        if state.next < state.faults.len() && state.faults[state.next].0 <= visit {
            let fault = state.faults[state.next].1;
            state.next += 1;
            drop(state);
            self.fired
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .push(FiredFault {
                    hook,
                    at_visit: visit,
                    fault,
                });
            return Some(fault);
        }
        None
    }

    /// Every fault delivered so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.fired
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    /// Scripted faults that have *not* fired yet — non-empty after a run
    /// means the plan targeted hooks the workload never visited often
    /// enough.
    pub fn unfired(&self) -> usize {
        self.slots
            .values()
            .map(|slot| {
                let state = slot.lock().unwrap_or_else(|poison| poison.into_inner());
                state.faults.len() - state.next
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Seeds, repro lines and the panic hook
// ---------------------------------------------------------------------------

/// The seed to run with: `CHAOS_SEED=<n>` from the environment if set
/// and parseable, else `default`.  Every chaos harness resolves its seed
/// through this so a failure's printed repro line actually works.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(default)
}

/// The one-command repro line printed on failures.
pub fn repro_line(seed: u64) -> String {
    format!("reproduce with: CHAOS_SEED={seed}")
}

static ACTIVE_SEED: AtomicU64 = AtomicU64::new(u64::MAX);
static HOOK_INSTALL: Once = Once::new();

/// Record `seed` as the active chaos seed and (once per process) chain a
/// panic hook that prints its repro line, so any assertion failure in a
/// seeded harness tells the reader how to re-run it.
pub fn announce_seed_on_panic(seed: u64) {
    ACTIVE_SEED.store(seed, Ordering::SeqCst);
    HOOK_INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            previous(info);
            let seed = ACTIVE_SEED.load(Ordering::SeqCst);
            if seed != u64::MAX {
                eprintln!("{}", repro_line(seed));
            }
        }));
    });
}

// ---------------------------------------------------------------------------
// Internal RNG (splitmix64) — keeps the crate dependency-free.
// ---------------------------------------------------------------------------

/// The splitmix64 stream: tiny, well-mixed, and exactly reproducible —
/// all the plan generator needs.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// Uniform in `[lo, hi]`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }
}

impl fmt::Display for Hook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_fires_at_exact_visits() {
        let plan = FaultPlan::new()
            .inject(Hook::LaneJob, 2, Fault::Stall { millis: 1 })
            .inject(Hook::LaneJob, 4, Fault::Kill);
        let injector = FaultInjector::new(&plan);
        assert!(injector.is_enabled());
        assert_eq!(injector.fire(Hook::LaneJob), None); // visit 0
        assert_eq!(injector.fire(Hook::LaneJob), None); // visit 1
        assert_eq!(
            injector.fire(Hook::LaneJob),
            Some(Fault::Stall { millis: 1 })
        );
        assert_eq!(injector.fire(Hook::LaneJob), None); // visit 3
        assert_eq!(injector.fire(Hook::LaneJob), Some(Fault::Kill));
        assert_eq!(injector.fire(Hook::LaneJob), None);
        assert_eq!(injector.unfired(), 0);
        let fired = injector.fired();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].at_visit, 2);
        assert_eq!(fired[1].at_visit, 4);
    }

    #[test]
    fn hooks_are_independent_and_unknown_hooks_are_free() {
        let plan = FaultPlan::new().inject(Hook::WorkerRound { shard: 1 }, 0, Fault::Kill);
        let injector = FaultInjector::new(&plan);
        // A different shard's hook never fires.
        for _ in 0..10 {
            assert_eq!(injector.fire(Hook::WorkerRound { shard: 0 }), None);
        }
        assert_eq!(
            injector.fire(Hook::WorkerRound { shard: 1 }),
            Some(Fault::Kill)
        );
    }

    #[test]
    fn missed_visits_fire_late_not_never() {
        // Two faults scripted at the same visit: the second is delivered
        // on the following visit instead of being dropped.
        let plan = FaultPlan::new()
            .inject(Hook::SessionSubmit, 1, Fault::Stall { millis: 1 })
            .inject(Hook::SessionSubmit, 1, Fault::Stall { millis: 2 });
        let injector = FaultInjector::new(&plan);
        assert_eq!(injector.fire(Hook::SessionSubmit), None);
        assert!(injector.fire(Hook::SessionSubmit).is_some());
        assert!(injector.fire(Hook::SessionSubmit).is_some());
        assert_eq!(injector.unfired(), 0);
    }

    #[test]
    fn disabled_injector_never_fires() {
        let injector = FaultInjector::disabled();
        assert!(!injector.is_enabled());
        assert_eq!(injector.fire(Hook::SessionSubmit), None);
        assert!(injector.fired().is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_survivable() {
        for profile in [
            BackendProfile::Unsharded,
            BackendProfile::Sharded { shards: 4 },
            BackendProfile::Passthrough,
        ] {
            let a = FaultPlan::seeded(42, profile);
            let b = FaultPlan::seeded(42, profile);
            assert_eq!(a, b, "same seed, same plan");
            let c = FaultPlan::seeded(43, profile);
            assert_ne!(a, c, "different seed, different plan");
            assert!(!a.entries.is_empty());
            for entry in &a.entries {
                if entry.fault == Fault::Kill {
                    // The only kill a seeded plan scripts is the sharded
                    // mid-handshake participant kill — worker loops are
                    // never killed.
                    assert!(
                        matches!(entry.hook, Hook::LanePrepare { .. }),
                        "seeded plans only kill at lane-prepare, got {}",
                        entry.hook
                    );
                }
                if let BackendProfile::Sharded { shards } = profile {
                    match entry.hook {
                        Hook::WorkerRound { shard }
                        | Hook::WorkerCommit { shard }
                        | Hook::RouterSend { shard }
                        | Hook::LanePrepare { shard }
                        | Hook::LaneCommit { shard } => assert!(shard < shards),
                        _ => {}
                    }
                } else {
                    match entry.hook {
                        Hook::WorkerRound { shard } | Hook::WorkerCommit { shard } => {
                            assert_eq!(shard, 0)
                        }
                        Hook::RouterSend { .. }
                        | Hook::LaneJob
                        | Hook::LanePrepare { .. }
                        | Hook::LaneCommit { .. } => {
                            panic!("router hooks in a non-sharded plan")
                        }
                        Hook::SessionSubmit => {}
                    }
                }
            }
        }
    }

    #[test]
    fn seed_env_parsing_and_repro_line() {
        assert_eq!(seed_from_env(7), 7); // unset in the test env
        assert_eq!(repro_line(42), "reproduce with: CHAOS_SEED=42");
    }
}
