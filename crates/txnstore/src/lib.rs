//! # txnstore — the storage server behind the declarative scheduler
//!
//! The EDBT 2010 paper evaluates its declarative scheduler against the
//! *native, lock-based scheduler* of a commercial DBMS.  We cannot ship a
//! commercial DBMS, so this crate is the substitute: an in-memory
//! transactional row store whose concurrency control is a faithful
//! strict two-phase-locking (SS2PL) lock manager with shared/exclusive row
//! locks, a waits-for graph for deadlock detection, and transaction
//! bookkeeping.  The overhead that Figure 2 of the paper measures — blocking,
//! deadlock aborts, lock-management work growing with the number of
//! concurrent clients — is a property of this protocol, which is why the
//! substitution preserves the experiment's shape.
//!
//! The crate exposes three layers:
//!
//! * [`store::Store`] — named tables of rows (the paper's single
//!   100 000-row table plus anything the examples need),
//! * [`lock::LockManager`] + [`deadlock::WaitsForGraph`] — a pure state
//!   machine (`acquire` returns *Granted*, *Waiting* or *Deadlock*), usable
//!   from real threads and from the virtual-time simulator alike,
//! * [`engine::Engine`] — ties store, locks and transactions together and
//!   executes [`statement::Statement`]s under either the native multi-user
//!   scheduler or the single-user exclusive mode the paper uses as its
//!   lower bound.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod deadlock;
pub mod engine;
pub mod error;
pub mod lock;
pub mod metrics;
pub mod statement;
pub mod store;
pub mod txn;

pub use deadlock::WaitsForGraph;
pub use engine::{Engine, ExecOutcome, SingleUserRun};
pub use error::{StoreError, StoreResult};
pub use lock::{LockManager, LockMode, LockOutcome, ObjectId};
pub use metrics::EngineMetrics;
pub use statement::{Statement, StatementKind};
pub use store::{Row, Store, TableDef};
pub use txn::{TxnId, TxnManager, TxnState};

/// Convenient glob import.
pub mod prelude {
    pub use crate::deadlock::WaitsForGraph;
    pub use crate::engine::{Engine, ExecOutcome, SingleUserRun};
    pub use crate::error::{StoreError, StoreResult};
    pub use crate::lock::{LockManager, LockMode, LockOutcome, ObjectId};
    pub use crate::metrics::EngineMetrics;
    pub use crate::statement::{Statement, StatementKind};
    pub use crate::store::{Row, Store, TableDef};
    pub use crate::txn::{TxnId, TxnManager, TxnState};
}
