//! Error type for the storage engine.

use crate::lock::ObjectId;
use crate::txn::TxnId;
use std::fmt;

/// Result alias.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named table does not exist.
    UnknownTable {
        /// Table name.
        table: String,
    },
    /// A table with this name already exists.
    DuplicateTable {
        /// Table name.
        table: String,
    },
    /// The requested row does not exist.
    UnknownRow {
        /// Table name.
        table: String,
        /// Row key.
        key: i64,
    },
    /// The transaction id is unknown or no longer active.
    InvalidTxn {
        /// Transaction id.
        txn: TxnId,
        /// What the caller tried to do.
        action: &'static str,
    },
    /// The transaction was chosen as a deadlock victim and must abort.
    DeadlockVictim {
        /// Transaction id.
        txn: TxnId,
        /// Object it was trying to lock when the cycle closed.
        object: ObjectId,
    },
    /// A statement was submitted while the transaction is blocked waiting
    /// for a lock (the caller must wait for the grant first).
    TxnBlocked {
        /// Transaction id.
        txn: TxnId,
        /// Object it is waiting for.
        object: ObjectId,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownTable { table } => write!(f, "unknown table `{table}`"),
            StoreError::DuplicateTable { table } => write!(f, "table `{table}` already exists"),
            StoreError::UnknownRow { table, key } => {
                write!(f, "row {key} does not exist in table `{table}`")
            }
            StoreError::InvalidTxn { txn, action } => {
                write!(f, "transaction {txn} is not active ({action})")
            }
            StoreError::DeadlockVictim { txn, object } => write!(
                f,
                "transaction {txn} aborted as deadlock victim while locking object {object}"
            ),
            StoreError::TxnBlocked { txn, object } => write!(
                f,
                "transaction {txn} is blocked waiting for object {object}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_contain_identifiers() {
        let e = StoreError::UnknownRow {
            table: "accounts".into(),
            key: 42,
        };
        assert!(e.to_string().contains("accounts"));
        assert!(e.to_string().contains("42"));
        let e = StoreError::DeadlockVictim {
            txn: TxnId(7),
            object: ObjectId(3),
        };
        assert!(e.to_string().contains('7'));
    }
}
