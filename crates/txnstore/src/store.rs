//! Row storage: named tables of keyed rows with undo support.

use crate::error::{StoreError, StoreResult};
use crate::txn::TxnId;
use relalg::Value;
use std::collections::HashMap;

/// A row: the primary key plus a list of column values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Primary key.
    pub key: i64,
    /// Column values (interpretation is up to the workload; the paper's
    /// table has opaque payload columns).
    pub values: Vec<Value>,
}

impl Row {
    /// Construct a row.
    pub fn new(key: i64, values: Vec<Value>) -> Self {
        Row { key, values }
    }
}

/// Definition of a table: its name and how many payload columns rows carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Number of payload columns.
    pub columns: usize,
}

impl TableDef {
    /// Construct a definition.
    pub fn new(name: impl Into<String>, columns: usize) -> Self {
        TableDef {
            name: name.into(),
            columns,
        }
    }
}

#[derive(Debug)]
struct StoredTable {
    def: TableDef,
    rows: HashMap<i64, Vec<Value>>,
}

/// An undo record: the before-image of a row changed by a transaction.
#[derive(Debug, Clone)]
struct UndoRecord {
    table: String,
    key: i64,
    /// `None` means the row did not exist before (an insert to undo).
    before: Option<Vec<Value>>,
}

impl Default for StoredTable {
    fn default() -> Self {
        StoredTable {
            def: TableDef::new("", 0),
            rows: HashMap::new(),
        }
    }
}

/// The row store: tables plus per-transaction undo logs so that deadlock
/// victims can be rolled back, exactly as the native DBMS scheduler does.
#[derive(Debug, Default)]
pub struct Store {
    tables: HashMap<String, StoredTable>,
    undo: HashMap<TxnId, Vec<UndoRecord>>,
    /// Monotonic count of write operations applied (used by tests to verify
    /// replay equivalence between multi-user and single-user runs).
    writes_applied: u64,
}

impl Store {
    /// Create an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Create a table.
    pub fn create_table(&mut self, def: TableDef) -> StoreResult<()> {
        if self.tables.contains_key(&def.name) {
            return Err(StoreError::DuplicateTable { table: def.name });
        }
        self.tables.insert(
            def.name.clone(),
            StoredTable {
                def,
                rows: HashMap::new(),
            },
        );
        Ok(())
    }

    /// Create the paper's experiment table: `name` with `rows` rows keyed
    /// `0..rows`, each carrying a single integer payload column initialised
    /// to zero.
    pub fn create_benchmark_table(&mut self, name: &str, rows: usize) -> StoreResult<()> {
        self.create_table(TableDef::new(name, 1))?;
        let table = self.tables.get_mut(name).expect("just created");
        table.rows.reserve(rows);
        for key in 0..rows as i64 {
            table.rows.insert(key, vec![Value::Int(0)]);
        }
        Ok(())
    }

    /// Insert or overwrite a row outside any transaction (bulk loading).
    pub fn load_row(&mut self, table: &str, row: Row) -> StoreResult<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StoreError::UnknownTable {
                table: table.to_string(),
            })?;
        t.rows.insert(row.key, row.values);
        Ok(())
    }

    /// Read a row within a transaction.
    pub fn read(&self, table: &str, key: i64) -> StoreResult<Row> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| StoreError::UnknownTable {
                table: table.to_string(),
            })?;
        let values = t.rows.get(&key).ok_or(StoreError::UnknownRow {
            table: table.to_string(),
            key,
        })?;
        Ok(Row::new(key, values.clone()))
    }

    /// Write (update or insert) a row within a transaction, recording the
    /// before-image so the write can be undone on abort.
    pub fn write(&mut self, txn: TxnId, table: &str, row: Row) -> StoreResult<()> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| StoreError::UnknownTable {
                table: table.to_string(),
            })?;
        let before = t.rows.get(&row.key).cloned();
        self.undo.entry(txn).or_default().push(UndoRecord {
            table: table.to_string(),
            key: row.key,
            before,
        });
        t.rows.insert(row.key, row.values);
        self.writes_applied += 1;
        Ok(())
    }

    /// Commit a transaction: discard its undo log.
    pub fn commit(&mut self, txn: TxnId) {
        self.undo.remove(&txn);
    }

    /// Abort a transaction: apply its undo log in reverse order.
    pub fn abort(&mut self, txn: TxnId) {
        if let Some(records) = self.undo.remove(&txn) {
            for rec in records.into_iter().rev() {
                if let Some(t) = self.tables.get_mut(&rec.table) {
                    match rec.before {
                        Some(values) => {
                            t.rows.insert(rec.key, values);
                        }
                        None => {
                            t.rows.remove(&rec.key);
                        }
                    }
                }
            }
        }
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> StoreResult<usize> {
        self.tables
            .get(table)
            .map(|t| t.rows.len())
            .ok_or_else(|| StoreError::UnknownTable {
                table: table.to_string(),
            })
    }

    /// Definition of a table.
    pub fn table_def(&self, table: &str) -> StoreResult<&TableDef> {
        self.tables
            .get(table)
            .map(|t| &t.def)
            .ok_or_else(|| StoreError::UnknownTable {
                table: table.to_string(),
            })
    }

    /// Total writes applied since creation (committed or not).
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_bulk_load() {
        let mut s = Store::new();
        s.create_table(TableDef::new("accounts", 2)).unwrap();
        assert!(s.create_table(TableDef::new("accounts", 2)).is_err());
        s.load_row(
            "accounts",
            Row::new(1, vec![Value::Int(100), Value::str("alice")]),
        )
        .unwrap();
        assert_eq!(s.row_count("accounts").unwrap(), 1);
        assert!(s.load_row("missing", Row::new(1, vec![])).is_err());
        assert_eq!(s.table_def("accounts").unwrap().columns, 2);
    }

    #[test]
    fn benchmark_table_has_requested_cardinality() {
        let mut s = Store::new();
        s.create_benchmark_table("bench", 1000).unwrap();
        assert_eq!(s.row_count("bench").unwrap(), 1000);
        assert_eq!(s.read("bench", 999).unwrap().values, vec![Value::Int(0)]);
        assert!(s.read("bench", 1000).is_err());
    }

    #[test]
    fn write_then_commit_is_durable_in_memory() {
        let mut s = Store::new();
        s.create_benchmark_table("t", 10).unwrap();
        let txn = TxnId(1);
        s.write(txn, "t", Row::new(3, vec![Value::Int(42)]))
            .unwrap();
        s.commit(txn);
        assert_eq!(s.read("t", 3).unwrap().values, vec![Value::Int(42)]);
        assert_eq!(s.writes_applied(), 1);
    }

    #[test]
    fn abort_undoes_updates_and_inserts_in_reverse_order() {
        let mut s = Store::new();
        s.create_benchmark_table("t", 10).unwrap();
        let txn = TxnId(1);
        // Two updates of the same row: undo must restore the original 0.
        s.write(txn, "t", Row::new(3, vec![Value::Int(1)])).unwrap();
        s.write(txn, "t", Row::new(3, vec![Value::Int(2)])).unwrap();
        // An insert of a brand-new row: undo must delete it.
        s.write(txn, "t", Row::new(100, vec![Value::Int(9)]))
            .unwrap();
        s.abort(txn);
        assert_eq!(s.read("t", 3).unwrap().values, vec![Value::Int(0)]);
        assert!(s.read("t", 100).is_err());
    }

    #[test]
    fn abort_of_unknown_txn_is_a_noop() {
        let mut s = Store::new();
        s.create_benchmark_table("t", 5).unwrap();
        s.abort(TxnId(99));
        assert_eq!(s.row_count("t").unwrap(), 5);
    }

    #[test]
    fn independent_transactions_have_independent_undo() {
        let mut s = Store::new();
        s.create_benchmark_table("t", 10).unwrap();
        s.write(TxnId(1), "t", Row::new(1, vec![Value::Int(11)]))
            .unwrap();
        s.write(TxnId(2), "t", Row::new(2, vec![Value::Int(22)]))
            .unwrap();
        s.abort(TxnId(1));
        s.commit(TxnId(2));
        assert_eq!(s.read("t", 1).unwrap().values, vec![Value::Int(0)]);
        assert_eq!(s.read("t", 2).unwrap().values, vec![Value::Int(22)]);
    }
}
