//! The execution engine: statements + locks + transactions + storage.
//!
//! Two operating modes mirror the paper's measurement setup (Section 4.2):
//!
//! * **Native multi-user mode** — every statement acquires row locks through
//!   the strict-2PL [`LockManager`]; conflicting statements block, deadlock
//!   victims are rolled back.  This is the baseline whose overhead Figure 2
//!   plots.
//! * **Single-user mode** — the same statement sequence executed by one
//!   transaction holding an exclusive table lock, with per-row locking
//!   switched off.  Its run time is the lower bound the paper divides by.
//!
//! A third flag, `locking_disabled`, models the externally scheduled
//! configuration: the declarative middleware scheduler has already arranged
//! the statements so that they cannot conflict, so the engine skips lock
//! acquisition entirely (the paper: "disable the server's own schedulers as
//! far as possible").

use crate::error::{StoreError, StoreResult};
use crate::lock::{LockManager, LockOutcome, ObjectId};
use crate::metrics::EngineMetrics;
use crate::statement::{Statement, StatementKind};
use crate::store::{Row, Store};
use crate::txn::{TxnId, TxnManager, TxnState};

/// Result of submitting a statement to the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// The statement executed.  `unblocked` lists transactions that acquired
    /// locks as a side effect (only non-empty for commit/abort statements).
    Completed {
        /// Transactions granted locks because this statement released them.
        unblocked: Vec<TxnId>,
    },
    /// The statement must wait for a lock on `object`; re-submit it once the
    /// transaction is unblocked.
    Blocked {
        /// The contended object.
        object: ObjectId,
    },
    /// The transaction was chosen as a deadlock victim and has been rolled
    /// back; `unblocked` lists transactions that acquired its locks.
    DeadlockVictim {
        /// Transactions granted locks by the rollback.
        unblocked: Vec<TxnId>,
    },
}

/// Summary of a single-user replay run (the paper's lower-bound measurement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleUserRun {
    /// Data statements executed.
    pub statements: u64,
    /// SELECTs among them.
    pub selects: u64,
    /// UPDATEs among them.
    pub updates: u64,
}

/// The storage engine.
#[derive(Debug)]
pub struct Engine {
    store: Store,
    locks: LockManager,
    txns: TxnManager,
    metrics: EngineMetrics,
    locking_disabled: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Create an engine with native locking enabled.
    pub fn new() -> Self {
        Engine {
            store: Store::new(),
            locks: LockManager::new(),
            txns: TxnManager::new(),
            metrics: EngineMetrics::new(),
            locking_disabled: false,
        }
    }

    /// Create an engine with per-row locking disabled (externally scheduled
    /// mode).  Correctness is then the responsibility of the middleware
    /// scheduler feeding this engine.
    pub fn without_locking() -> Self {
        Engine {
            locking_disabled: true,
            ..Engine::new()
        }
    }

    /// Whether per-row locking is disabled.
    pub fn locking_disabled(&self) -> bool {
        self.locking_disabled
    }

    /// Access the underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable access to the store (bulk loading).
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Access the transaction manager.
    pub fn txns(&self) -> &TxnManager {
        &self.txns
    }

    /// Access the lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> EngineMetrics {
        self.metrics
    }

    /// Create and populate the paper's benchmark table.
    pub fn setup_benchmark_table(&mut self, name: &str, rows: usize) -> StoreResult<()> {
        self.store.create_benchmark_table(name, rows)
    }

    /// Begin a transaction with a caller-chosen id (workloads number their
    /// own transactions so the scheduler's `TA` column matches).
    pub fn begin(&mut self, txn: TxnId) {
        if !self.txns.begin_with_id(txn) {
            // Restart of an aborted transaction: re-activate it.
            self.txns.set_state(txn, TxnState::Active);
            self.txns.record_restart(txn);
        }
    }

    /// Submit a statement.  Transactions are begun implicitly on first use.
    pub fn execute(&mut self, stmt: &Statement) -> StoreResult<ExecOutcome> {
        if self.txns.state(stmt.txn).is_none() {
            self.begin(stmt.txn);
        }
        match self.txns.state(stmt.txn) {
            Some(TxnState::Active) | Some(TxnState::Blocked) => {}
            _ => {
                return Err(StoreError::InvalidTxn {
                    txn: stmt.txn,
                    action: "execute statement",
                })
            }
        }

        match &stmt.kind {
            StatementKind::Commit => {
                let unblocked = self.finish(stmt.txn, true);
                Ok(ExecOutcome::Completed { unblocked })
            }
            StatementKind::Abort => {
                let unblocked = self.finish(stmt.txn, false);
                Ok(ExecOutcome::Completed { unblocked })
            }
            StatementKind::Select { key } => self.execute_data(stmt, *key, None),
            StatementKind::Update { key, value } => self.execute_data(stmt, *key, Some(*value)),
        }
    }

    fn execute_data(
        &mut self,
        stmt: &Statement,
        key: i64,
        write_value: Option<relalg::Value>,
    ) -> StoreResult<ExecOutcome> {
        let object = ObjectId(key);
        if !self.locking_disabled {
            let mode = stmt
                .kind
                .lock_mode()
                .expect("data statements always have a lock mode");
            match self.locks.acquire(stmt.txn, object, mode) {
                LockOutcome::Granted => {
                    self.txns.set_state(stmt.txn, TxnState::Active);
                }
                LockOutcome::Waiting => {
                    self.txns.set_state(stmt.txn, TxnState::Blocked);
                    self.metrics.lock_waits += 1;
                    return Ok(ExecOutcome::Blocked { object });
                }
                LockOutcome::Deadlock => {
                    // Victim: roll back everything this transaction did.
                    let executed = self
                        .txns
                        .info(stmt.txn)
                        .map(|i| i.statements_executed as u64)
                        .unwrap_or(0);
                    self.metrics.wasted_statements += executed;
                    self.metrics.deadlock_aborts += 1;
                    let unblocked = self.finish(stmt.txn, false);
                    // finish() counted a regular abort already; deadlock_aborts
                    // tracked separately above.
                    return Ok(ExecOutcome::DeadlockVictim { unblocked });
                }
            }
        }

        // Execute against the store.
        match write_value {
            None => {
                let _row = self.store.read(&stmt.table, key)?;
                self.metrics.selects += 1;
            }
            Some(value) => {
                self.store
                    .write(stmt.txn, &stmt.table, Row::new(key, vec![value]))?;
                self.metrics.updates += 1;
            }
        }
        self.metrics.statements_executed += 1;
        self.txns.record_statement(stmt.txn);
        Ok(ExecOutcome::Completed { unblocked: vec![] })
    }

    /// Commit (`true`) or abort (`false`) a transaction, releasing its locks.
    /// Returns the transactions unblocked by the release.
    pub fn finish(&mut self, txn: TxnId, commit: bool) -> Vec<TxnId> {
        if commit {
            self.store.commit(txn);
            self.txns.set_state(txn, TxnState::Committed);
            self.metrics.commits += 1;
        } else {
            self.store.abort(txn);
            self.txns.set_state(txn, TxnState::Aborted);
            self.metrics.aborts += 1;
        }
        if self.locking_disabled {
            return Vec::new();
        }
        let grants = self.locks.release_all(txn);
        let mut unblocked: Vec<TxnId> = grants.into_iter().map(|(t, _)| t).collect();
        unblocked.sort();
        unblocked.dedup();
        for &t in &unblocked {
            if self.locks.waiting_for(t).is_none() {
                self.txns.set_state(t, TxnState::Active);
            }
        }
        unblocked
    }

    /// Execute a pre-recorded statement sequence in single-user mode: one
    /// implicit transaction, exclusive access, no per-row locking.  Commit
    /// and abort markers in the sequence are skipped (the paper replays "the
    /// same statement sequence ... in a single transaction").
    pub fn run_single_user(&mut self, statements: &[Statement]) -> StoreResult<SingleUserRun> {
        let su_txn = TxnId(u64::MAX);
        self.txns.begin_with_id(su_txn);
        let mut run = SingleUserRun {
            statements: 0,
            selects: 0,
            updates: 0,
        };
        for stmt in statements {
            match &stmt.kind {
                StatementKind::Select { key } => {
                    let _ = self.store.read(&stmt.table, *key)?;
                    run.selects += 1;
                    run.statements += 1;
                }
                StatementKind::Update { key, value } => {
                    self.store
                        .write(su_txn, &stmt.table, Row::new(*key, vec![*value]))?;
                    run.updates += 1;
                    run.statements += 1;
                }
                StatementKind::Commit | StatementKind::Abort => {}
            }
        }
        self.store.commit(su_txn);
        self.txns.set_state(su_txn, TxnState::Committed);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::Value;

    fn engine_with_table(rows: usize) -> Engine {
        let mut e = Engine::new();
        e.setup_benchmark_table("bench", rows).unwrap();
        e
    }

    #[test]
    fn select_update_commit_happy_path() {
        let mut e = engine_with_table(100);
        let t = TxnId(1);
        assert_eq!(
            e.execute(&Statement::select(t, 0, "bench", 5)).unwrap(),
            ExecOutcome::Completed { unblocked: vec![] }
        );
        assert_eq!(
            e.execute(&Statement::update(t, 1, "bench", 5, 77)).unwrap(),
            ExecOutcome::Completed { unblocked: vec![] }
        );
        e.execute(&Statement::commit(t, 2, "bench")).unwrap();
        assert_eq!(
            e.store().read("bench", 5).unwrap().values,
            vec![Value::Int(77)]
        );
        let m = e.metrics();
        assert_eq!(m.statements_executed, 2);
        assert_eq!(m.commits, 1);
    }

    #[test]
    fn conflicting_update_blocks_until_commit() {
        let mut e = engine_with_table(100);
        let a = TxnId(1);
        let b = TxnId(2);
        e.execute(&Statement::update(a, 0, "bench", 5, 1)).unwrap();
        let outcome = e.execute(&Statement::update(b, 0, "bench", 5, 2)).unwrap();
        assert_eq!(
            outcome,
            ExecOutcome::Blocked {
                object: ObjectId(5)
            }
        );
        assert_eq!(e.txns().state(b), Some(TxnState::Blocked));
        // Commit of A unblocks B.
        let outcome = e.execute(&Statement::commit(a, 1, "bench")).unwrap();
        assert_eq!(outcome, ExecOutcome::Completed { unblocked: vec![b] });
        // Re-submission of B's statement now completes.
        let outcome = e.execute(&Statement::update(b, 0, "bench", 5, 2)).unwrap();
        assert_eq!(outcome, ExecOutcome::Completed { unblocked: vec![] });
        e.execute(&Statement::commit(b, 1, "bench")).unwrap();
        assert_eq!(
            e.store().read("bench", 5).unwrap().values,
            vec![Value::Int(2)]
        );
    }

    #[test]
    fn shared_readers_do_not_block_each_other() {
        let mut e = engine_with_table(100);
        for i in 1..=5 {
            let outcome = e
                .execute(&Statement::select(TxnId(i), 0, "bench", 7))
                .unwrap();
            assert_eq!(outcome, ExecOutcome::Completed { unblocked: vec![] });
        }
        assert_eq!(e.metrics().lock_waits, 0);
    }

    #[test]
    fn deadlock_victim_is_rolled_back() {
        let mut e = engine_with_table(100);
        let a = TxnId(1);
        let b = TxnId(2);
        e.execute(&Statement::update(a, 0, "bench", 1, 10)).unwrap();
        e.execute(&Statement::update(b, 0, "bench", 2, 20)).unwrap();
        // A waits for 2, B requesting 1 closes the cycle.
        assert_eq!(
            e.execute(&Statement::update(a, 1, "bench", 2, 11)).unwrap(),
            ExecOutcome::Blocked {
                object: ObjectId(2)
            }
        );
        let outcome = e.execute(&Statement::update(b, 1, "bench", 1, 21)).unwrap();
        match outcome {
            ExecOutcome::DeadlockVictim { unblocked } => {
                // B's rollback releases object 2 so A is unblocked.
                assert_eq!(unblocked, vec![a]);
            }
            other => panic!("expected deadlock victim, got {other:?}"),
        }
        // B's write to row 2 was undone.
        assert_eq!(
            e.store().read("bench", 2).unwrap().values,
            vec![Value::Int(0)]
        );
        assert_eq!(e.txns().state(b), Some(TxnState::Aborted));
        assert_eq!(e.metrics().deadlock_aborts, 1);
        assert!(e.metrics().wasted_statements >= 1);
    }

    #[test]
    fn aborted_transaction_can_restart() {
        let mut e = engine_with_table(10);
        let t = TxnId(3);
        e.execute(&Statement::update(t, 0, "bench", 1, 5)).unwrap();
        e.execute(&Statement::abort(t, 1, "bench")).unwrap();
        assert_eq!(
            e.store().read("bench", 1).unwrap().values,
            vec![Value::Int(0)]
        );
        // Restart with the same id.
        e.begin(t);
        e.execute(&Statement::update(t, 0, "bench", 1, 6)).unwrap();
        e.execute(&Statement::commit(t, 1, "bench")).unwrap();
        assert_eq!(
            e.store().read("bench", 1).unwrap().values,
            vec![Value::Int(6)]
        );
        assert_eq!(e.txns().info(t).unwrap().restarts, 1);
    }

    #[test]
    fn locking_disabled_mode_never_blocks() {
        let mut e = Engine::without_locking();
        e.setup_benchmark_table("bench", 10).unwrap();
        let a = TxnId(1);
        let b = TxnId(2);
        assert_eq!(
            e.execute(&Statement::update(a, 0, "bench", 3, 1)).unwrap(),
            ExecOutcome::Completed { unblocked: vec![] }
        );
        assert_eq!(
            e.execute(&Statement::update(b, 0, "bench", 3, 2)).unwrap(),
            ExecOutcome::Completed { unblocked: vec![] }
        );
        assert_eq!(e.metrics().lock_waits, 0);
        assert!(e.locking_disabled());
    }

    #[test]
    fn single_user_replay_counts_and_applies_statements() {
        let mut e = engine_with_table(100);
        let seq = vec![
            Statement::select(TxnId(1), 0, "bench", 1),
            Statement::update(TxnId(1), 1, "bench", 1, 9),
            Statement::commit(TxnId(1), 2, "bench"),
            Statement::select(TxnId(2), 0, "bench", 2),
            Statement::update(TxnId(2), 1, "bench", 2, 8),
            Statement::commit(TxnId(2), 2, "bench"),
        ];
        let run = e.run_single_user(&seq).unwrap();
        assert_eq!(run.statements, 4);
        assert_eq!(run.selects, 2);
        assert_eq!(run.updates, 2);
        assert_eq!(
            e.store().read("bench", 1).unwrap().values,
            vec![Value::Int(9)]
        );
    }

    #[test]
    fn statement_on_committed_txn_errors() {
        let mut e = engine_with_table(10);
        let t = TxnId(1);
        e.execute(&Statement::select(t, 0, "bench", 1)).unwrap();
        e.execute(&Statement::commit(t, 1, "bench")).unwrap();
        let err = e.execute(&Statement::select(t, 2, "bench", 1)).unwrap_err();
        assert!(matches!(err, StoreError::InvalidTxn { .. }));
    }

    #[test]
    fn unknown_table_and_row_errors_propagate() {
        let mut e = engine_with_table(10);
        assert!(e
            .execute(&Statement::select(TxnId(1), 0, "missing", 1))
            .is_err());
        assert!(e
            .execute(&Statement::select(TxnId(2), 0, "bench", 9999))
            .is_err());
    }
}
