//! Counters describing what the engine did — the raw material from which the
//! paper's Figure 2 and Section 4.2.2 numbers are derived.

/// Execution counters for one engine instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Data statements (SELECT/UPDATE) executed to completion.
    pub statements_executed: u64,
    /// SELECT statements executed.
    pub selects: u64,
    /// UPDATE statements executed.
    pub updates: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (client-requested or deadlock victims).
    pub aborts: u64,
    /// Transactions aborted specifically as deadlock victims.
    pub deadlock_aborts: u64,
    /// Statements that had to wait for a lock before executing.
    pub lock_waits: u64,
    /// Statements re-executed because their transaction was restarted after a
    /// deadlock abort.
    pub wasted_statements: u64,
}

impl EngineMetrics {
    /// Create zeroed metrics.
    pub fn new() -> Self {
        EngineMetrics::default()
    }

    /// Merge another metrics snapshot into this one.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.statements_executed += other.statements_executed;
        self.selects += other.selects;
        self.updates += other.updates;
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.deadlock_aborts += other.deadlock_aborts;
        self.lock_waits += other.lock_waits;
        self.wasted_statements += other.wasted_statements;
    }

    /// Fraction of executed statements that were wasted on aborted attempts.
    pub fn waste_ratio(&self) -> f64 {
        let total = self.statements_executed + self.wasted_statements;
        if total == 0 {
            0.0
        } else {
            self.wasted_statements as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = EngineMetrics {
            statements_executed: 10,
            selects: 5,
            updates: 5,
            commits: 1,
            aborts: 1,
            deadlock_aborts: 1,
            lock_waits: 3,
            wasted_statements: 2,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.statements_executed, 20);
        assert_eq!(a.lock_waits, 6);
        assert_eq!(a.deadlock_aborts, 2);
    }

    #[test]
    fn waste_ratio_handles_zero_and_nonzero() {
        assert_eq!(EngineMetrics::new().waste_ratio(), 0.0);
        let m = EngineMetrics {
            statements_executed: 75,
            wasted_statements: 25,
            ..EngineMetrics::default()
        };
        assert!((m.waste_ratio() - 0.25).abs() < 1e-12);
    }
}
