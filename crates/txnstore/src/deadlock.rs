//! Waits-for graph and cycle detection.
//!
//! The native scheduler of the paper's commercial DBMS detects deadlocks and
//! aborts a victim; without this, the multi-user runs of Figure 2 would hang
//! at high client counts instead of merely slowing down.  The graph records
//! an edge `A -> B` whenever transaction A waits for a lock held by B; a
//! cycle through the would-be waiter means granting the wait would deadlock.

use crate::txn::TxnId;
use std::collections::{HashMap, HashSet};

/// A directed waits-for graph between transactions.
#[derive(Debug, Default, Clone)]
pub struct WaitsForGraph {
    edges: HashMap<TxnId, HashSet<TxnId>>,
}

impl WaitsForGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        WaitsForGraph::default()
    }

    /// Add an edge `waiter -> holder`.  Self-edges are ignored.
    pub fn add_edge(&mut self, waiter: TxnId, holder: TxnId) {
        if waiter != holder {
            self.edges.entry(waiter).or_default().insert(holder);
        }
    }

    /// Add edges from `waiter` to every holder.
    pub fn add_edges(&mut self, waiter: TxnId, holders: impl IntoIterator<Item = TxnId>) {
        for h in holders {
            self.add_edge(waiter, h);
        }
    }

    /// Remove every edge originating from `waiter` (it stopped waiting).
    pub fn remove_waiter(&mut self, waiter: TxnId) {
        self.edges.remove(&waiter);
    }

    /// Remove a transaction entirely: as a waiter and as a wait target.
    pub fn remove_txn(&mut self, txn: TxnId) {
        self.edges.remove(&txn);
        for targets in self.edges.values_mut() {
            targets.remove(&txn);
        }
        self.edges.retain(|_, targets| !targets.is_empty());
    }

    /// Whether the graph currently contains the edge `waiter -> holder`.
    pub fn has_edge(&self, waiter: TxnId, holder: TxnId) -> bool {
        self.edges
            .get(&waiter)
            .map(|t| t.contains(&holder))
            .unwrap_or(false)
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(HashSet::len).sum()
    }

    /// Depth-first search: would adding edges `waiter -> holders` close a
    /// cycle that includes `waiter`?  (I.e. is `waiter` reachable from any of
    /// the holders through existing edges?)
    pub fn would_deadlock(&self, waiter: TxnId, holders: &[TxnId]) -> bool {
        let mut stack: Vec<TxnId> = holders.iter().copied().filter(|h| *h != waiter).collect();
        let mut visited: HashSet<TxnId> = HashSet::new();
        while let Some(current) = stack.pop() {
            if current == waiter {
                return true;
            }
            if !visited.insert(current) {
                continue;
            }
            if let Some(next) = self.edges.get(&current) {
                for &n in next {
                    if n == waiter {
                        return true;
                    }
                    if !visited.contains(&n) {
                        stack.push(n);
                    }
                }
            }
        }
        false
    }

    /// Find any cycle currently present in the graph, returned as the list of
    /// transactions on it (used by periodic detection strategies and tests).
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<TxnId, Color> = HashMap::new();
        let nodes: Vec<TxnId> = self.edges.keys().copied().collect();
        for &node in &nodes {
            color.entry(node).or_insert(Color::White);
        }

        fn dfs(
            node: TxnId,
            edges: &HashMap<TxnId, HashSet<TxnId>>,
            color: &mut HashMap<TxnId, Color>,
            path: &mut Vec<TxnId>,
        ) -> Option<Vec<TxnId>> {
            color.insert(node, Color::Gray);
            path.push(node);
            if let Some(next) = edges.get(&node) {
                for &n in next {
                    match color.get(&n).copied().unwrap_or(Color::White) {
                        Color::Gray => {
                            // Found a back edge: extract the cycle from the path.
                            let start = path.iter().position(|&p| p == n).unwrap_or(0);
                            return Some(path[start..].to_vec());
                        }
                        Color::White => {
                            if let Some(c) = dfs(n, edges, color, path) {
                                return Some(c);
                            }
                        }
                        Color::Black => {}
                    }
                }
            }
            path.pop();
            color.insert(node, Color::Black);
            None
        }

        let mut path = Vec::new();
        for node in nodes {
            if color.get(&node) == Some(&Color::White) {
                if let Some(c) = dfs(node, &self.edges, &mut color, &mut path) {
                    return Some(c);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_add_remove() {
        let mut g = WaitsForGraph::new();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(1), TxnId(1)); // self edge ignored
        g.add_edges(TxnId(2), vec![TxnId(3), TxnId(4)]);
        assert!(g.has_edge(TxnId(1), TxnId(2)));
        assert!(!g.has_edge(TxnId(1), TxnId(1)));
        assert_eq!(g.edge_count(), 3);
        g.remove_waiter(TxnId(2));
        assert_eq!(g.edge_count(), 1);
        g.remove_txn(TxnId(2));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn would_deadlock_detects_two_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(TxnId(2), TxnId(1));
        // T1 about to wait for T2: T2 already waits for T1 -> cycle.
        assert!(g.would_deadlock(TxnId(1), &[TxnId(2)]));
        // T3 waiting for T1 is fine.
        assert!(!g.would_deadlock(TxnId(3), &[TxnId(1)]));
    }

    #[test]
    fn would_deadlock_detects_long_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(TxnId(2), TxnId(3));
        g.add_edge(TxnId(3), TxnId(4));
        g.add_edge(TxnId(4), TxnId(5));
        // T5 waiting for T2 closes 2->3->4->5->2.
        assert!(g.would_deadlock(TxnId(5), &[TxnId(2)]));
        assert!(!g.would_deadlock(TxnId(5), &[TxnId(6)]));
    }

    #[test]
    fn find_cycle_reports_members() {
        let mut g = WaitsForGraph::new();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(3));
        assert!(g.find_cycle().is_none());
        g.add_edge(TxnId(3), TxnId(1));
        let cycle = g.find_cycle().expect("cycle must be found");
        assert_eq!(cycle.len(), 3);
        assert!(cycle.contains(&TxnId(1)));
        assert!(cycle.contains(&TxnId(3)));
    }

    #[test]
    fn removing_victim_breaks_cycle() {
        let mut g = WaitsForGraph::new();
        g.add_edge(TxnId(1), TxnId(2));
        g.add_edge(TxnId(2), TxnId(1));
        assert!(g.find_cycle().is_some());
        g.remove_txn(TxnId(2));
        assert!(g.find_cycle().is_none());
    }
}
