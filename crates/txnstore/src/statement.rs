//! Statements executed by the storage engine.
//!
//! The paper's workload consists of "transactions with 20 SELECT and 20
//! UPDATE statements against a single table of 100000 rows", where each
//! statement touches exactly one row.  A statement here is therefore a typed
//! single-row operation plus the transaction-control operations (commit and
//! abort) that the scheduler's history relation also records.

use crate::lock::{LockMode, ObjectId};
use crate::txn::TxnId;
use relalg::Value;
use std::fmt;

/// The kind of a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StatementKind {
    /// Read one row (SELECT ... WHERE key = ?).
    Select {
        /// Row key.
        key: i64,
    },
    /// Overwrite one row's payload (UPDATE ... WHERE key = ?).
    Update {
        /// Row key.
        key: i64,
        /// New payload value for the first column.
        value: Value,
    },
    /// Commit the transaction.
    Commit,
    /// Abort the transaction.
    Abort,
}

impl StatementKind {
    /// The object (row) this statement accesses, if it is a data statement.
    pub fn object(&self) -> Option<ObjectId> {
        match self {
            StatementKind::Select { key } => Some(ObjectId(*key)),
            StatementKind::Update { key, .. } => Some(ObjectId(*key)),
            StatementKind::Commit | StatementKind::Abort => None,
        }
    }

    /// The lock mode required by this statement, if any.
    pub fn lock_mode(&self) -> Option<LockMode> {
        match self {
            StatementKind::Select { .. } => Some(LockMode::Shared),
            StatementKind::Update { .. } => Some(LockMode::Exclusive),
            StatementKind::Commit | StatementKind::Abort => None,
        }
    }

    /// Whether this statement ends the transaction.
    pub fn is_terminal(&self) -> bool {
        matches!(self, StatementKind::Commit | StatementKind::Abort)
    }

    /// The single-letter operation code used by the scheduler's request
    /// relations (`r`, `w`, `c`, `a` — matching the paper's Listing 1).
    pub fn op_code(&self) -> &'static str {
        match self {
            StatementKind::Select { .. } => "r",
            StatementKind::Update { .. } => "w",
            StatementKind::Commit => "c",
            StatementKind::Abort => "a",
        }
    }
}

/// A statement: which transaction issues it, its position inside that
/// transaction, which table it targets and what it does.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// Issuing transaction (the paper's `TA`).
    pub txn: TxnId,
    /// Position within the transaction (the paper's `INTRATA`).
    pub intra: u32,
    /// Target table.
    pub table: String,
    /// Operation.
    pub kind: StatementKind,
}

impl Statement {
    /// Construct a SELECT statement.
    pub fn select(txn: TxnId, intra: u32, table: impl Into<String>, key: i64) -> Self {
        Statement {
            txn,
            intra,
            table: table.into(),
            kind: StatementKind::Select { key },
        }
    }

    /// Construct an UPDATE statement.
    pub fn update(
        txn: TxnId,
        intra: u32,
        table: impl Into<String>,
        key: i64,
        value: impl Into<Value>,
    ) -> Self {
        Statement {
            txn,
            intra,
            table: table.into(),
            kind: StatementKind::Update {
                key,
                value: value.into(),
            },
        }
    }

    /// Construct a COMMIT statement.
    pub fn commit(txn: TxnId, intra: u32, table: impl Into<String>) -> Self {
        Statement {
            txn,
            intra,
            table: table.into(),
            kind: StatementKind::Commit,
        }
    }

    /// Construct an ABORT statement.
    pub fn abort(txn: TxnId, intra: u32, table: impl Into<String>) -> Self {
        Statement {
            txn,
            intra,
            table: table.into(),
            kind: StatementKind::Abort,
        }
    }

    /// The object accessed, if any.
    pub fn object(&self) -> Option<ObjectId> {
        self.kind.object()
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            StatementKind::Select { key } => {
                write!(
                    f,
                    "{}[{}] SELECT {}.{}",
                    self.txn, self.intra, self.table, key
                )
            }
            StatementKind::Update { key, value } => write!(
                f,
                "{}[{}] UPDATE {}.{} = {}",
                self.txn, self.intra, self.table, key, value
            ),
            StatementKind::Commit => write!(f, "{}[{}] COMMIT", self.txn, self.intra),
            StatementKind::Abort => write!(f, "{}[{}] ABORT", self.txn, self.intra),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = Statement::select(TxnId(1), 0, "bench", 42);
        assert_eq!(s.object(), Some(ObjectId(42)));
        assert_eq!(s.kind.lock_mode(), Some(LockMode::Shared));
        assert_eq!(s.kind.op_code(), "r");
        assert!(!s.kind.is_terminal());

        let u = Statement::update(TxnId(1), 1, "bench", 7, 99);
        assert_eq!(u.kind.lock_mode(), Some(LockMode::Exclusive));
        assert_eq!(u.kind.op_code(), "w");

        let c = Statement::commit(TxnId(1), 2, "bench");
        assert!(c.kind.is_terminal());
        assert_eq!(c.object(), None);
        assert_eq!(c.kind.op_code(), "c");

        let a = Statement::abort(TxnId(1), 3, "bench");
        assert_eq!(a.kind.op_code(), "a");
        assert_eq!(a.kind.lock_mode(), None);
    }

    #[test]
    fn display_is_informative() {
        let s = Statement::update(TxnId(5), 3, "bench", 11, 2);
        let text = s.to_string();
        assert!(text.contains("T5"));
        assert!(text.contains("UPDATE"));
        assert!(text.contains("11"));
    }
}
