//! Strict two-phase-locking lock manager.
//!
//! The manager is a *pure state machine*: callers drive it with
//! [`LockManager::acquire`] / [`LockManager::release_all`] and receive
//! explicit outcomes ([`LockOutcome::Granted`], [`LockOutcome::Waiting`],
//! [`LockOutcome::Deadlock`]) instead of the manager blocking a thread.
//! This makes it usable both by a real multi-threaded executor and by the
//! virtual-time simulator that reproduces the paper's Figure 2 sweep.
//!
//! Properties implemented:
//!
//! * shared/exclusive row locks with the standard compatibility matrix,
//! * lock upgrades (S → X) when the requester is the only holder,
//! * FIFO wait queues (no starvation of writers behind a stream of readers),
//! * deadlock *prevention checks* via a waits-for graph: an acquisition that
//!   would close a cycle is refused with [`LockOutcome::Deadlock`] so the
//!   caller can abort the victim — mirroring the behaviour of the native
//!   DBMS scheduler the paper measures.

use crate::deadlock::WaitsForGraph;
use crate::txn::TxnId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Identifier of a lockable object (a row of the paper's single table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub i64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; incompatible with everything.
    Exclusive,
}

impl LockMode {
    /// Standard compatibility matrix.
    pub fn compatible_with(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// Whether holding `self` is sufficient to satisfy a request for
    /// `requested` (X covers S).
    pub fn covers(self, requested: LockMode) -> bool {
        match (self, requested) {
            (LockMode::Exclusive, _) => true,
            (LockMode::Shared, LockMode::Shared) => true,
            (LockMode::Shared, LockMode::Exclusive) => false,
        }
    }
}

/// Outcome of a lock acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted immediately (or was already held).
    Granted,
    /// The request was queued; the transaction must wait.  It will appear in
    /// the grant list returned by a later [`LockManager::release_all`].
    Waiting,
    /// Granting the wait would create a deadlock; the caller should abort
    /// this transaction (the victim) and retry it later.
    Deadlock,
}

#[derive(Debug, Clone)]
struct WaitRequest {
    txn: TxnId,
    mode: LockMode,
}

#[derive(Debug, Default, Clone)]
struct LockEntry {
    holders: HashMap<TxnId, LockMode>,
    queue: VecDeque<WaitRequest>,
}

impl LockEntry {
    fn grantable(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(&h, &m)| h == txn || m.compatible_with(mode) && mode.compatible_with(m))
    }
}

/// Statistics maintained by the lock manager; these are the raw ingredients
/// of the "native scheduler overhead" the paper measures.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LockStats {
    /// Immediately granted acquisitions.
    pub granted_immediately: u64,
    /// Acquisitions that had to wait.
    pub waits: u64,
    /// Acquisitions refused because they would deadlock.
    pub deadlocks: u64,
    /// Lock upgrades (S -> X).
    pub upgrades: u64,
    /// Grants handed out when earlier holders released.
    pub granted_after_wait: u64,
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    table: HashMap<ObjectId, LockEntry>,
    held: HashMap<TxnId, HashSet<ObjectId>>,
    waiting: HashMap<TxnId, ObjectId>,
    waits_for: WaitsForGraph,
    stats: LockStats,
}

impl LockManager {
    /// Create an empty lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Attempt to acquire `mode` on `object` for `txn`.
    pub fn acquire(&mut self, txn: TxnId, object: ObjectId, mode: LockMode) -> LockOutcome {
        let entry = self.table.entry(object).or_default();

        // Re-entrant / covered request.
        if let Some(&held_mode) = entry.holders.get(&txn) {
            if held_mode.covers(mode) {
                self.stats.granted_immediately += 1;
                return LockOutcome::Granted;
            }
            // Upgrade request: allowed immediately if txn is the only holder.
            if entry.holders.len() == 1 {
                entry.holders.insert(txn, LockMode::Exclusive);
                self.stats.upgrades += 1;
                return LockOutcome::Granted;
            }
        }

        // Fresh or upgrade-with-contention request.
        let no_earlier_waiters = entry.queue.is_empty() || entry.holders.contains_key(&txn);
        if entry.grantable(txn, mode) && no_earlier_waiters {
            entry.holders.insert(txn, mode);
            self.held.entry(txn).or_default().insert(object);
            self.stats.granted_immediately += 1;
            return LockOutcome::Granted;
        }

        // Must wait: check for deadlock first.
        let blockers: Vec<TxnId> = entry
            .holders
            .keys()
            .copied()
            .filter(|&h| h != txn)
            .chain(entry.queue.iter().map(|w| w.txn).filter(|&w| w != txn))
            .collect();
        if self.waits_for.would_deadlock(txn, &blockers) {
            self.stats.deadlocks += 1;
            return LockOutcome::Deadlock;
        }
        self.waits_for.add_edges(txn, blockers);
        self.waiting.insert(txn, object);
        entry.queue.push_back(WaitRequest { txn, mode });
        self.stats.waits += 1;
        LockOutcome::Waiting
    }

    /// Release every lock held (and any wait) by `txn` — this is the "strict"
    /// part of SS2PL: locks are only released at commit/abort time.  Returns
    /// the transactions that were granted locks as a result, together with
    /// the objects they now hold.
    pub fn release_all(&mut self, txn: TxnId) -> Vec<(TxnId, ObjectId)> {
        let mut affected_objects: Vec<ObjectId> = Vec::new();

        // Drop held locks.
        if let Some(objects) = self.held.remove(&txn) {
            for object in objects {
                if let Some(entry) = self.table.get_mut(&object) {
                    entry.holders.remove(&txn);
                    affected_objects.push(object);
                }
            }
        }
        // Drop a pending wait, if any.
        if let Some(object) = self.waiting.remove(&txn) {
            if let Some(entry) = self.table.get_mut(&object) {
                entry.queue.retain(|w| w.txn != txn);
            }
        }
        self.waits_for.remove_txn(txn);

        // Try to grant queued waiters on every affected object, FIFO.
        let mut grants = Vec::new();
        for object in affected_objects {
            self.grant_waiters(object, &mut grants);
        }
        // Cleanup empty entries to keep the table small across long runs.
        self.table
            .retain(|_, e| !e.holders.is_empty() || !e.queue.is_empty());
        grants
    }

    fn grant_waiters(&mut self, object: ObjectId, grants: &mut Vec<(TxnId, ObjectId)>) {
        let Some(entry) = self.table.get_mut(&object) else {
            return;
        };
        while let Some(front) = entry.queue.front().cloned() {
            if !entry.grantable(front.txn, front.mode) {
                break;
            }
            entry.queue.pop_front();
            entry.holders.insert(front.txn, front.mode);
            self.held.entry(front.txn).or_default().insert(object);
            self.waiting.remove(&front.txn);
            self.waits_for.remove_waiter(front.txn);
            self.stats.granted_after_wait += 1;
            grants.push((front.txn, object));
            // After granting an exclusive lock nothing else can be granted.
            if front.mode == LockMode::Exclusive {
                break;
            }
        }
        // Re-add waits-for edges for remaining waiters (their blocker set may
        // have changed).
        let remaining: Vec<(TxnId, Vec<TxnId>)> = entry
            .queue
            .iter()
            .map(|w| {
                (
                    w.txn,
                    entry
                        .holders
                        .keys()
                        .copied()
                        .filter(|&h| h != w.txn)
                        .collect(),
                )
            })
            .collect();
        for (waiter, blockers) in remaining {
            self.waits_for.add_edges(waiter, blockers);
        }
    }

    /// Objects currently locked by `txn`.
    pub fn held_by(&self, txn: TxnId) -> Vec<ObjectId> {
        self.held
            .get(&txn)
            .map(|s| {
                let mut v: Vec<ObjectId> = s.iter().copied().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }

    /// Whether `txn` is currently waiting, and if so for which object.
    pub fn waiting_for(&self, txn: TxnId) -> Option<ObjectId> {
        self.waiting.get(&txn).copied()
    }

    /// Transactions currently holding a lock on `object`.
    pub fn holders(&self, object: ObjectId) -> Vec<TxnId> {
        self.table
            .get(&object)
            .map(|e| {
                let mut v: Vec<TxnId> = e.holders.keys().copied().collect();
                v.sort();
                v
            })
            .unwrap_or_default()
    }

    /// Number of distinct objects with at least one holder or waiter.
    pub fn locked_object_count(&self) -> usize {
        self.table.len()
    }

    /// Number of transactions currently waiting.
    pub fn waiting_count(&self) -> usize {
        self.waiting.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LockStats {
        self.stats
    }

    /// Access the waits-for graph (read-only; used by diagnostics).
    pub fn waits_for(&self) -> &WaitsForGraph {
        &self.waits_for
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TxnId = TxnId(1);
    const B: TxnId = TxnId(2);
    const C: TxnId = TxnId(3);
    const O1: ObjectId = ObjectId(10);
    const O2: ObjectId = ObjectId(20);

    #[test]
    fn shared_locks_are_compatible() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1, LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(B, O1, LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.holders(O1), vec![A, B]);
    }

    #[test]
    fn exclusive_conflicts_queue_fifo() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(B, O1, LockMode::Shared), LockOutcome::Waiting);
        assert_eq!(lm.acquire(C, O1, LockMode::Shared), LockOutcome::Waiting);
        assert_eq!(lm.waiting_for(B), Some(O1));
        let grants = lm.release_all(A);
        // Both shared waiters are granted together.
        assert_eq!(grants.len(), 2);
        assert!(grants.contains(&(B, O1)));
        assert!(grants.contains(&(C, O1)));
        assert_eq!(lm.waiting_count(), 0);
    }

    #[test]
    fn writer_behind_readers_waits_then_gets_lock_alone() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1, LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(B, O1, LockMode::Exclusive), LockOutcome::Waiting);
        // A later reader must queue behind the writer (no starvation).
        assert_eq!(lm.acquire(C, O1, LockMode::Shared), LockOutcome::Waiting);
        let grants = lm.release_all(A);
        assert_eq!(grants, vec![(B, O1)]);
        // C still waits until B finishes.
        assert_eq!(lm.waiting_for(C), Some(O1));
        let grants = lm.release_all(B);
        assert_eq!(grants, vec![(C, O1)]);
    }

    #[test]
    fn reentrant_and_covered_requests_granted() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(A, O1, LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(A, O1, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.held_by(A), vec![O1]);
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1, LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(A, O1, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.stats().upgrades, 1);
        // Now B cannot get a shared lock.
        assert_eq!(lm.acquire(B, O1, LockMode::Shared), LockOutcome::Waiting);
    }

    #[test]
    fn two_txn_deadlock_detected() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(B, O2, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(A, O2, LockMode::Exclusive), LockOutcome::Waiting);
        // B requesting O1 would close the cycle A -> B -> A.
        assert_eq!(
            lm.acquire(B, O1, LockMode::Exclusive),
            LockOutcome::Deadlock
        );
        assert_eq!(lm.stats().deadlocks, 1);
        // Victim aborts: its locks release and A gets O2.
        let grants = lm.release_all(B);
        assert_eq!(grants, vec![(A, O2)]);
    }

    #[test]
    fn three_txn_deadlock_detected() {
        let mut lm = LockManager::new();
        let o3 = ObjectId(30);
        assert_eq!(lm.acquire(A, O1, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(B, O2, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(C, o3, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(A, O2, LockMode::Exclusive), LockOutcome::Waiting);
        assert_eq!(lm.acquire(B, o3, LockMode::Exclusive), LockOutcome::Waiting);
        assert_eq!(
            lm.acquire(C, O1, LockMode::Exclusive),
            LockOutcome::Deadlock
        );
    }

    #[test]
    fn release_all_clears_waits_and_held_state() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(A, O1, LockMode::Exclusive), LockOutcome::Granted);
        assert_eq!(lm.acquire(B, O1, LockMode::Exclusive), LockOutcome::Waiting);
        // B gives up (client abort while waiting).
        let grants = lm.release_all(B);
        assert!(grants.is_empty());
        assert_eq!(lm.waiting_count(), 0);
        let grants = lm.release_all(A);
        assert!(grants.is_empty());
        assert_eq!(lm.locked_object_count(), 0);
    }

    #[test]
    fn stats_track_outcomes() {
        let mut lm = LockManager::new();
        lm.acquire(A, O1, LockMode::Exclusive);
        lm.acquire(B, O1, LockMode::Exclusive);
        lm.release_all(A);
        let s = lm.stats();
        assert_eq!(s.granted_immediately, 1);
        assert_eq!(s.waits, 1);
        assert_eq!(s.granted_after_wait, 1);
    }
}
