//! Transaction identifiers, states and the transaction manager.

use std::collections::HashMap;
use std::fmt;

/// Transaction identifier.  The scheduler's request model (`TA` in the
/// paper's Table 2) maps 1:1 onto these ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Begun, executing statements.
    Active,
    /// Blocked waiting for a lock.
    Blocked,
    /// Committed; its locks are released.
    Committed,
    /// Aborted (by the client or as a deadlock victim); its locks are
    /// released and its effects undone.
    Aborted,
}

impl TxnState {
    /// Whether the transaction has terminated (committed or aborted).
    pub fn is_finished(self) -> bool {
        matches!(self, TxnState::Committed | TxnState::Aborted)
    }
}

/// Bookkeeping for one transaction.
#[derive(Debug, Clone)]
pub struct TxnInfo {
    /// The id.
    pub id: TxnId,
    /// Current state.
    pub state: TxnState,
    /// Number of statements executed so far.
    pub statements_executed: usize,
    /// Number of times this transaction was restarted after a deadlock abort.
    pub restarts: usize,
}

/// Allocates transaction ids and tracks their states.
#[derive(Debug, Default)]
pub struct TxnManager {
    next_id: u64,
    txns: HashMap<TxnId, TxnInfo>,
}

impl TxnManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        TxnManager::default()
    }

    /// Begin a new transaction.
    pub fn begin(&mut self) -> TxnId {
        self.next_id += 1;
        let id = TxnId(self.next_id);
        self.txns.insert(
            id,
            TxnInfo {
                id,
                state: TxnState::Active,
                statements_executed: 0,
                restarts: 0,
            },
        );
        id
    }

    /// Begin a transaction with a caller-chosen id (used when replaying the
    /// workload's own transaction numbering).  Returns `false` if the id is
    /// already known.
    pub fn begin_with_id(&mut self, id: TxnId) -> bool {
        if self.txns.contains_key(&id) {
            return false;
        }
        self.next_id = self.next_id.max(id.0);
        self.txns.insert(
            id,
            TxnInfo {
                id,
                state: TxnState::Active,
                statements_executed: 0,
                restarts: 0,
            },
        );
        true
    }

    /// Current state of a transaction, if known.
    pub fn state(&self, id: TxnId) -> Option<TxnState> {
        self.txns.get(&id).map(|t| t.state)
    }

    /// Whether the transaction exists and is in the [`TxnState::Active`]
    /// state.
    pub fn is_active(&self, id: TxnId) -> bool {
        self.state(id) == Some(TxnState::Active)
    }

    /// Full info for a transaction.
    pub fn info(&self, id: TxnId) -> Option<&TxnInfo> {
        self.txns.get(&id)
    }

    /// Set the state of a transaction.  Unknown ids are ignored.
    pub fn set_state(&mut self, id: TxnId, state: TxnState) {
        if let Some(info) = self.txns.get_mut(&id) {
            info.state = state;
        }
    }

    /// Record a statement execution.
    pub fn record_statement(&mut self, id: TxnId) {
        if let Some(info) = self.txns.get_mut(&id) {
            info.statements_executed += 1;
        }
    }

    /// Record a restart after a deadlock abort.
    pub fn record_restart(&mut self, id: TxnId) {
        if let Some(info) = self.txns.get_mut(&id) {
            info.restarts += 1;
        }
    }

    /// Number of transactions in each terminal / live state:
    /// `(active, blocked, committed, aborted)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut active = 0;
        let mut blocked = 0;
        let mut committed = 0;
        let mut aborted = 0;
        for t in self.txns.values() {
            match t.state {
                TxnState::Active => active += 1,
                TxnState::Blocked => blocked += 1,
                TxnState::Committed => committed += 1,
                TxnState::Aborted => aborted += 1,
            }
        }
        (active, blocked, committed, aborted)
    }

    /// Total number of transactions ever begun.
    pub fn total(&self) -> usize {
        self.txns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_and_state_transitions() {
        let mut m = TxnManager::new();
        let a = m.begin();
        let b = m.begin();
        assert_ne!(a, b);
        assert!(m.is_active(a));
        m.set_state(a, TxnState::Blocked);
        assert_eq!(m.state(a), Some(TxnState::Blocked));
        m.set_state(a, TxnState::Committed);
        assert!(m.state(a).unwrap().is_finished());
        assert_eq!(m.counts(), (1, 0, 1, 0));
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn begin_with_explicit_id() {
        let mut m = TxnManager::new();
        assert!(m.begin_with_id(TxnId(10)));
        assert!(!m.begin_with_id(TxnId(10)));
        // Fresh ids continue after the explicit one.
        let next = m.begin();
        assert!(next.0 > 10);
    }

    #[test]
    fn statement_and_restart_accounting() {
        let mut m = TxnManager::new();
        let t = m.begin();
        m.record_statement(t);
        m.record_statement(t);
        m.record_restart(t);
        let info = m.info(t).unwrap();
        assert_eq!(info.statements_executed, 2);
        assert_eq!(info.restarts, 1);
        // Unknown ids are ignored silently.
        m.record_statement(TxnId(999));
        assert!(m.info(TxnId(999)).is_none());
    }

    #[test]
    fn display_format() {
        assert_eq!(TxnId(3).to_string(), "T3");
    }
}
