//! The observability-overhead bench: what does the flight recorder cost?
//!
//! Low overhead is the design constraint the `obs` crate is built around —
//! per-worker ring buffers, no locks on the hot path, sampling by
//! transaction id.  This bench puts a number on it: the pipelined
//! closed-loop workload of `backend_matrix` driven through the unsharded
//! middleware and the 4-shard fleet with tracing **off**, **sampled**
//! (1-in-16 transactions) and **full** (every transaction), at identical
//! depth and scale.  Each cell is measured several times and the best run
//! kept, so the comparison is between the configurations' ceilings rather
//! than their scheduler-noise floors.
//!
//! The headline gate: full tracing must cost at most
//! [`OVERHEAD_GATE`] (5 %) of the tracing-off throughput.

use crate::{percentile_ms, shard_scaling_workload, MatrixBackend, Scale};
use declsched::{Protocol, ProtocolKind, SchedulerConfig, TriggerPolicy};
use std::time::Instant;

/// Maximum tolerated relative throughput loss of full tracing vs. off.
pub const OVERHEAD_GATE: f64 = 0.05;

/// The gate applied at `--smoke` scale, where each cell lasts only a few
/// milliseconds and run-to-run noise dwarfs any real recorder cost: smoke
/// runs verify the wiring (cells present, traces plausible) and only catch
/// a *catastrophic* slowdown; the real 5 % gate needs the longer
/// quick/paper cells to discriminate.
pub const SMOKE_OVERHEAD_GATE: f64 = 0.50;

/// Runs per cell; the best (highest-throughput) one is reported.
pub const RUNS_PER_CELL: usize = 5;

/// Sampling divisor of the `sampled` trace mode (1-in-N transactions).
pub const SAMPLE_ONE_IN: u64 = 16;

/// Workload multiplier over [`shard_scaling_workload`] at quick/paper
/// scale: a 5 % gate needs cells lasting hundreds of milliseconds, not the
/// ~10 ms the base stream gives, or scheduler noise swamps the recorder's
/// actual cost.  Smoke keeps the base stream (wiring check only).
const WORKLOAD_MULTIPLIER: usize = 16;

/// The transaction stream length measured at `scale`.
fn workload_size(scale: Scale) -> (usize, usize) {
    let (transactions, table_rows) = shard_scaling_workload(scale);
    let multiplier = if scale.transactions_per_client <= Scale::smoke().transactions_per_client {
        1
    } else {
        WORKLOAD_MULTIPLIER
    };
    (transactions * multiplier, table_rows)
}

/// Flight-recorder configuration of one measured cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Recorder disabled — the baseline.
    Off,
    /// 1-in-[`SAMPLE_ONE_IN`] transactions recorded.
    Sampled,
    /// Every transaction recorded.
    Full,
}

impl TraceMode {
    /// Stable label for output documents.
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Sampled => "sampled",
            TraceMode::Full => "full",
        }
    }

    /// The [`obs::TraceConfig`] this mode deploys with.
    pub fn config(self) -> obs::TraceConfig {
        match self {
            TraceMode::Off => obs::TraceConfig::off(),
            TraceMode::Sampled => {
                obs::TraceConfig::sampled(SAMPLE_ONE_IN, obs::TraceConfig::DEFAULT_CAPACITY)
            }
            TraceMode::Full => obs::TraceConfig::full(obs::TraceConfig::DEFAULT_CAPACITY),
        }
    }
}

/// One measured (backend, trace mode) cell.
#[derive(Debug, Clone)]
pub struct ObsOverheadRow {
    /// Deployment label (`unsharded`, `sharded4`).
    pub backend: String,
    /// Trace mode label (`off`, `sampled`, `full`).
    pub trace: &'static str,
    /// Pipeline depth of the closed-loop driver.
    pub depth: usize,
    /// Transactions executed.
    pub transactions: u64,
    /// Wall-clock seconds of the best run.
    pub wall_secs: f64,
    /// Committed transactions per second (best of [`RUNS_PER_CELL`]).
    pub throughput_tps: f64,
    /// Median per-transaction latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-transaction latency, milliseconds.
    pub p99_ms: f64,
    /// Lifecycle events in the merged trace of the best run.
    pub trace_events: u64,
    /// Events lost to ring-buffer wraparound in the best run.
    pub trace_dropped: u64,
}

impl ObsOverheadRow {
    /// CSV header.
    pub fn csv_header() -> &'static str {
        "backend,trace,depth,transactions,wall_secs,throughput_tps,p50_ms,p99_ms,trace_events,trace_dropped"
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{:.3},{:.0},{:.3},{:.3},{},{}",
            self.backend,
            self.trace,
            self.depth,
            self.transactions,
            self.wall_secs,
            self.throughput_tps,
            self.p50_ms,
            self.p99_ms,
            self.trace_events,
            self.trace_dropped
        )
    }

    /// One JSON object (hand-rolled; the workspace builds offline without a
    /// serde dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"trace\":\"{}\",\"depth\":{},\"transactions\":{},\"wall_secs\":{:.6},\"throughput_tps\":{:.1},\"p50_ms\":{:.4},\"p99_ms\":{:.4},\"trace_events\":{},\"trace_dropped\":{}}}",
            self.backend,
            self.trace,
            self.depth,
            self.transactions,
            self.wall_secs,
            self.throughput_tps,
            self.p50_ms,
            self.p99_ms,
            self.trace_events,
            self.trace_dropped
        )
    }
}

/// One measurement pass: the `backend_matrix` pipelined closed-loop
/// workload with the flight recorder in `mode`.
fn measure_once(
    backend: MatrixBackend,
    depth: usize,
    scale: Scale,
    mode: TraceMode,
) -> ObsOverheadRow {
    use std::collections::VecDeque;
    use workload::ShardedSpec;

    let depth = depth.max(1);
    let (transactions, table_rows) = workload_size(scale);
    // Same stream for every cell (see `backend_matrix_run`): a fixed
    // single-shard layout generates identically whatever is measured.
    let spec = ShardedSpec::single_object(1, transactions, table_rows);
    let generated = spec.generate(|object| declsched::shard_of(object, 1));

    let builder = session::Scheduler::builder()
        .policy(Protocol::algebra(ProtocolKind::Ss2pl))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 64,
            },
            ..SchedulerConfig::default()
        })
        .table("bench", table_rows)
        .trace(mode.config());
    let scheduler = match backend {
        MatrixBackend::Passthrough => builder.passthrough(),
        MatrixBackend::Unsharded => builder.unsharded(),
        MatrixBackend::Sharded(n) => builder.shards(n),
    }
    .build()
    .expect("deployment start cannot fail");
    let mut client = scheduler.connect();

    let started = Instant::now();
    let mut window: VecDeque<(session::Ticket, Instant)> = VecDeque::with_capacity(depth);
    let mut latencies = Vec::with_capacity(generated.len());
    for txn in &generated {
        if window.len() >= depth {
            let (ticket, submitted) = window.pop_front().expect("window non-empty");
            ticket.wait().expect("workload transactions always commit");
            latencies.push(submitted.elapsed());
        }
        window.push_back((
            client
                .submit(session::Txn::from_statements(&txn.statements))
                .expect("submission cannot fail while the deployment is up"),
            Instant::now(),
        ));
    }
    while let Some((ticket, submitted)) = window.pop_front() {
        ticket.wait().expect("workload transactions always commit");
        latencies.push(submitted.elapsed());
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let report = scheduler.shutdown();

    latencies.sort_unstable();
    ObsOverheadRow {
        backend: backend.label(),
        trace: mode.label(),
        depth,
        transactions: report.transactions,
        wall_secs,
        throughput_tps: report.dispatch.commits as f64 / wall_secs,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        trace_events: report.trace.len() as u64,
        trace_dropped: report.trace.dropped(),
    }
}

/// Measure one cell [`RUNS_PER_CELL`] times and keep the best run.
pub fn obs_overhead_run(
    backend: MatrixBackend,
    depth: usize,
    scale: Scale,
    mode: TraceMode,
) -> ObsOverheadRow {
    (0..RUNS_PER_CELL)
        .map(|_| measure_once(backend, depth, scale, mode))
        .max_by(|a, b| {
            a.throughput_tps
                .partial_cmp(&b.throughput_tps)
                .expect("throughput is never NaN")
        })
        .expect("RUNS_PER_CELL >= 1")
}

/// A drift-robust overhead estimate for one (backend, trace mode) pair:
/// the median over interleaved rounds of that round's traced-vs-off
/// throughput ratio.
#[derive(Debug, Clone)]
pub struct LossEstimate {
    /// Deployment label (`unsharded`, `sharded4`).
    pub backend: String,
    /// Trace mode label (`sampled`, `full`).
    pub trace: &'static str,
    /// Median per-round relative throughput loss vs. the off baseline.
    /// Negative values mean the traced runs measured *faster* — noise.
    pub loss: f64,
}

/// A full sweep: the best run per grid cell plus the paired loss
/// estimates the gate is applied to.
#[derive(Debug, Clone)]
pub struct ObsOverheadReport {
    /// Best run per (backend, trace mode) cell.
    pub rows: Vec<ObsOverheadRow>,
    /// Drift-robust per-backend loss estimates (see [`paired_median_loss`]).
    pub losses: Vec<LossEstimate>,
}

/// The full grid: {unsharded, sharded-`shards`} × {off, sampled, full} at
/// pipeline depth `depth`.
///
/// Measurements are **interleaved**: each round visits every trace mode
/// once (off, sampled, full, off, sampled, full, …) rather than running
/// one cell's repetitions back to back.  Machine throughput on a shared
/// host drifts on a timescale of seconds — comparable to a whole
/// best-of-N block — so consecutive blocks would confound that drift with
/// the mode under test.  The gate therefore compares each traced run to
/// the *same round's* off run (drift hits both sides of the ratio) and
/// takes the median across rounds; the per-cell best runs are kept for
/// the report's absolute numbers.  A discarded warmup run per backend
/// absorbs one-time costs (page faults, allocator growth) that would
/// otherwise be charged to whichever mode happened to go first.
pub fn obs_overhead_sweep(depth: usize, shards: usize, scale: Scale) -> ObsOverheadReport {
    let backends = [MatrixBackend::Unsharded, MatrixBackend::Sharded(shards)];
    let modes = [TraceMode::Off, TraceMode::Sampled, TraceMode::Full];
    let mut rows = Vec::with_capacity(backends.len() * modes.len());
    let mut losses = Vec::new();
    for &backend in &backends {
        let _warmup = measure_once(backend, depth, scale, TraceMode::Off);
        let mut best: Vec<Option<ObsOverheadRow>> = vec![None; modes.len()];
        let mut tps: Vec<Vec<f64>> = vec![Vec::with_capacity(RUNS_PER_CELL); modes.len()];
        for _round in 0..RUNS_PER_CELL {
            for (slot, &mode) in modes.iter().enumerate() {
                let row = measure_once(backend, depth, scale, mode);
                tps[slot].push(row.throughput_tps);
                if best[slot]
                    .as_ref()
                    .is_none_or(|b| row.throughput_tps > b.throughput_tps)
                {
                    best[slot] = Some(row);
                }
            }
        }
        for (slot, &mode) in modes.iter().enumerate().skip(1) {
            if let Some(loss) = paired_median_loss(&tps[0], &tps[slot]) {
                losses.push(LossEstimate {
                    backend: backend.label(),
                    trace: mode.label(),
                    loss,
                });
            }
        }
        rows.extend(best.into_iter().map(|r| r.expect("RUNS_PER_CELL >= 1")));
    }
    ObsOverheadReport { rows, losses }
}

/// The median of per-round relative losses `1 - traced[i] / off[i]`, the
/// estimator the overhead gate runs on.  Pairing a traced run with the
/// off run measured moments earlier cancels machine drift (both sides of
/// the ratio see the same machine), and the median discards the odd run
/// that caught a scheduling hiccup.  Returns `None` when the slices are
/// empty, differ in length, or contain a non-positive baseline.
pub fn paired_median_loss(off: &[f64], traced: &[f64]) -> Option<f64> {
    if off.is_empty() || off.len() != traced.len() || off.iter().any(|&tps| tps <= 0.0) {
        return None;
    }
    let mut ratios: Vec<f64> = off
        .iter()
        .zip(traced)
        .map(|(&off_tps, &traced_tps)| 1.0 - traced_tps / off_tps)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("throughput ratios are never NaN"));
    let mid = ratios.len() / 2;
    Some(if ratios.len() % 2 == 1 {
        ratios[mid]
    } else {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    })
}

/// Relative throughput loss of `trace` mode vs. the `off` baseline for one
/// backend (`None` when either cell is missing or the baseline is zero).
/// Negative values mean the traced run measured *faster* — noise.
pub fn overhead_loss(rows: &[ObsOverheadRow], backend: &str, trace: &str) -> Option<f64> {
    let tps = |mode: &str| {
        rows.iter()
            .find(|r| r.backend == backend && r.trace == mode)
            .map(|r| r.throughput_tps)
    };
    let off = tps("off")?;
    let traced = tps(trace)?;
    (off > 0.0).then(|| (off - traced) / off)
}

/// The overhead gate in force at a given scale (see
/// [`SMOKE_OVERHEAD_GATE`] for why smoke is special).
pub fn gate_for_scale(scale_label: &str) -> f64 {
    if scale_label == "smoke" {
        SMOKE_OVERHEAD_GATE
    } else {
        OVERHEAD_GATE
    }
}

/// Render a sweep as the `BENCH_obs_overhead.json` document, including the
/// per-backend full-tracing loss (the paired-median estimate) and the gate
/// verdict (against the gate in force at `scale_label`).
pub fn obs_overhead_json(report: &ObsOverheadReport, scale_label: &str) -> String {
    let gate = gate_for_scale(scale_label);
    let series: Vec<String> = report.rows.iter().map(ObsOverheadRow::to_json).collect();
    let losses: Vec<String> = report
        .losses
        .iter()
        .filter(|estimate| estimate.trace == "full")
        .map(|estimate| {
            format!(
                "{{\"backend\":\"{}\",\"full_loss\":{:.4},\"pass\":{}}}",
                estimate.backend,
                estimate.loss,
                estimate.loss <= gate
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"scale\": \"{}\",\n  \"gate\": {:.2},\n  \"series\": [\n    {}\n  ],\n  \"full_tracing\": [\n    {}\n  ]\n}}\n",
        scale_label,
        gate,
        series.join(",\n    "),
        losses.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_modes_map_to_the_expected_configs() {
        assert!(!TraceMode::Off.config().enabled());
        assert_eq!(TraceMode::Sampled.config().sample_one_in, SAMPLE_ONE_IN);
        assert_eq!(TraceMode::Full.config().sample_one_in, 1);
    }

    #[test]
    fn full_tracing_records_events_and_off_records_none() {
        let off = measure_once(MatrixBackend::Unsharded, 8, Scale::smoke(), TraceMode::Off);
        assert_eq!(off.trace_events, 0, "tracing off must record nothing");
        let full = measure_once(MatrixBackend::Unsharded, 8, Scale::smoke(), TraceMode::Full);
        assert!(full.trace_events > 0, "full tracing must record the run");
        assert_eq!(full.transactions, off.transactions);
    }

    #[test]
    fn overhead_loss_compares_against_the_off_baseline() {
        let row = |trace: &'static str, tps: f64| ObsOverheadRow {
            backend: "unsharded".to_string(),
            trace,
            depth: 32,
            transactions: 100,
            wall_secs: 1.0,
            throughput_tps: tps,
            p50_ms: 1.0,
            p99_ms: 2.0,
            trace_events: 0,
            trace_dropped: 0,
        };
        let rows = vec![row("off", 1000.0), row("full", 960.0)];
        let loss = overhead_loss(&rows, "unsharded", "full").unwrap();
        assert!((loss - 0.04).abs() < 1e-12);
        assert!(loss <= OVERHEAD_GATE);
        assert_eq!(overhead_loss(&rows, "sharded4", "full"), None);
        let report = ObsOverheadReport {
            rows,
            losses: vec![LossEstimate {
                backend: "unsharded".to_string(),
                trace: "full",
                loss: 0.04,
            }],
        };
        let json = obs_overhead_json(&report, "smoke");
        assert!(json.contains("\"full_loss\":0.0400"));
        assert!(json.contains("\"pass\":true"));
    }

    #[test]
    fn paired_median_loss_cancels_drift_and_discards_hiccups() {
        // A machine that slows down 2x mid-sweep: absolute numbers swing
        // wildly, the per-round ratio stays a steady 4 % loss.
        let off = [1000.0, 900.0, 500.0, 480.0, 950.0];
        let full = [960.0, 864.0, 480.0, 460.8, 912.0];
        let loss = paired_median_loss(&off, &full).unwrap();
        assert!((loss - 0.04).abs() < 1e-12);

        // One hiccup round (off run caught a stall, ratio went negative):
        // the median ignores it where a mean would not.
        let off = [1000.0, 600.0, 1000.0];
        let full = [960.0, 900.0, 960.0];
        let loss = paired_median_loss(&off, &full).unwrap();
        assert!((loss - 0.04).abs() < 1e-12);

        assert_eq!(paired_median_loss(&[], &[]), None);
        assert_eq!(paired_median_loss(&[1.0], &[]), None);
        assert_eq!(paired_median_loss(&[0.0], &[1.0]), None);
    }
}
