//! Reproduces **Figure 2**: ratio of multi-user to single-user execution time
//! of the native lock-based scheduler, for a sweep of client counts.
//!
//! Usage: `cargo run --release -p bench --bin fig2_native_overhead [--paper]`

use bench::{fig2_series, Scale};
use simkit::Fig2Point;

fn main() {
    let scale = Scale::from_args();
    let client_counts = [
        1, 25, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600,
    ];

    println!("# Figure 2 — native scheduler overhead (multi-user / single-user, %)");
    println!(
        "# workload: 20 SELECT + 20 UPDATE per txn, {} rows, uniform",
        { bench::workload_spec(1, scale).table_rows }
    );
    println!("{}", Fig2Point::csv_header());
    for point in fig2_series(&client_counts, scale) {
        println!("{}", point.to_csv());
    }
    println!();
    println!("# paper reference points: 300 clients ≈ 124 %, 500 clients ≈ 1600 %");
}
