//! Continuous perf gate: compare fresh bench output against a committed
//! baseline and exit non-zero beyond the tolerance.
//!
//! ```text
//! perf_gate <rule_scaling|backend_matrix> <fresh.json> <baseline.json> \
//!     [--tolerance 0.25]
//! ```
//!
//! Tolerance precedence: `--tolerance` flag, then the
//! `PERF_GATE_TOLERANCE` environment variable, then ±25 %.

use bench::perf_gate::{compare, tolerance_from, GateKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (kind_arg, fresh_path, baseline_path) = match positional.as_slice() {
        [kind, fresh, baseline, ..] => (kind.as_str(), fresh.as_str(), baseline.as_str()),
        _ => {
            eprintln!("usage: perf_gate <rule_scaling|backend_matrix> <fresh.json> <baseline.json> [--tolerance X]");
            std::process::exit(2);
        }
    };
    let kind = match GateKind::from_arg(kind_arg) {
        Some(kind) => kind,
        None => {
            eprintln!(
                "perf_gate: unknown kind `{kind_arg}` (expected rule_scaling or backend_matrix)"
            );
            std::process::exit(2);
        }
    };
    let tolerance = match tolerance_from(&args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(2);
        }
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let fresh = read(fresh_path);
    let baseline = read(baseline_path);

    let diffs = match compare(kind, &fresh, &baseline) {
        Ok(diffs) => diffs,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "perf gate: {kind_arg}, {} cells, tolerance ±{:.0}%",
        diffs.len(),
        tolerance * 100.0
    );
    let mut failed = 0usize;
    for diff in &diffs {
        let verdict = if diff.within(tolerance) {
            "ok  "
        } else {
            "FAIL"
        };
        println!("  [{verdict}] {diff}");
        if !diff.within(tolerance) {
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!(
            "perf_gate: {failed}/{} cells outside ±{:.0}% of {baseline_path}",
            diffs.len(),
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("perf gate: all cells within tolerance");
}
