//! The adaptive-control-plane experiment: hot-shard rebalancing vs static
//! hash placement on the adversarial `extreme-skew` scenario, and SLA-aware
//! overload shedding on the `tiered-overload` scenario driven past
//! capacity.
//!
//! Emits a human-readable summary on stdout and writes the
//! machine-readable `BENCH_rebalance_overload.json` into the current
//! directory.  Exits non-zero when the control plane fails to deliver:
//!
//! * the rebalanced skew run must beat the static run (and reach 1.5× at
//!   non-smoke scales, the headline claim the committed JSON carries), with
//!   at least one actual migration;
//! * with shedding on at 2× capacity, premium p99 must exist, must beat
//!   the shed-off premium p99 at the same load, and (at non-smoke scales)
//!   must stay within 2× of its unsaturated value; the free tier must
//!   actually be shed while premium is never shed.
//!
//! Usage: `cargo run --release -p bench --bin rebalance_overload [--paper|--smoke]`

use bench::rebalance::REBALANCE_SHARDS;
use bench::{overload_cell, rebalance_overload_json, rebalance_workload, skew_run, Scale};

fn main() {
    let scale = Scale::from_args();
    let scale_label = Scale::label_from_args();
    let smoke = scale_label == "smoke";
    let (transactions, table_rows) = rebalance_workload(scale);
    chaos::announce_seed_on_panic(chaos::seed_from_env(42));
    let mut failures: Vec<String> = Vec::new();

    println!(
        "# rebalance/overload — {REBALANCE_SHARDS} shards, {transactions} transactions over {table_rows} rows per cell"
    );

    // --- Skew cell: static vs rebalanced placement. -----------------------
    let static_run = skew_run(scale, false);
    let rebalanced_run = skew_run(scale, true);
    let speedup = rebalanced_run.achieved_tps / static_run.achieved_tps.max(1e-9);
    println!("mode,achieved_tps,p99_ms,migrations,busy,shard_commits");
    for run in [&static_run, &rebalanced_run] {
        println!(
            "{},{:.0},{},{},{},{:?}",
            run.mode,
            run.achieved_tps,
            run.p99_ms.map(|ms| format!("{ms:.3}")).unwrap_or_default(),
            run.migrations,
            run.busy,
            run.shard_commits
        );
    }
    println!(
        "# skew: rebalanced {:.0} tps vs static {:.0} tps — {:.2}x ({} migrations)",
        rebalanced_run.achieved_tps, static_run.achieved_tps, speedup, rebalanced_run.migrations
    );
    if rebalanced_run.migrations == 0 {
        failures.push("rebalanced run performed no migrations".to_string());
    }
    if speedup <= 1.0 {
        failures.push(format!(
            "rebalancing failed to beat static placement: {speedup:.2}x"
        ));
    }
    if !smoke && speedup < 1.5 {
        failures.push(format!(
            "rebalancing speedup {speedup:.2}x below the 1.5x headline at {scale_label} scale"
        ));
    }

    // --- Overload cell: per-tier latency with shedding off/on. ------------
    let (capacity, runs) = overload_cell(scale);
    println!("# overload: measured closed-loop capacity {capacity:.0} tps");
    println!("load_factor,shedding,offered_tps,achieved_tps,class,submitted,committed,shed,failed,p50_ms,p99_ms");
    for run in &runs {
        for tier in &run.tiers {
            println!(
                "{:.1},{},{:.0},{:.0},{},{},{},{},{},{},{}",
                run.load_factor,
                run.shedding,
                run.offered_tps,
                run.achieved_tps,
                tier.class,
                tier.submitted,
                tier.committed,
                tier.shed,
                tier.failed,
                tier.p50_ms.map(|ms| format!("{ms:.3}")).unwrap_or_default(),
                tier.p99_ms.map(|ms| format!("{ms:.3}")).unwrap_or_default(),
            );
        }
    }

    let unsaturated = runs
        .iter()
        .find(|r| r.load_factor < 1.0 && !r.shedding)
        .expect("unsaturated baseline present");
    let shed_off = runs
        .iter()
        .find(|r| r.load_factor >= 1.0 && !r.shedding)
        .expect("overloaded shed-off run present");
    let shed_on = runs
        .iter()
        .find(|r| r.shedding)
        .expect("overloaded shed-on run present");
    let premium_unsat = unsaturated.tier("premium").and_then(|t| t.p99_ms);
    let premium_off = shed_off.tier("premium").and_then(|t| t.p99_ms);
    let premium_on = shed_on.tier("premium").and_then(|t| t.p99_ms);
    println!(
        "# premium p99: {:.2} ms unsaturated, {:.2} ms at 2x shed-off, {:.2} ms at 2x shed-on",
        premium_unsat.unwrap_or(f64::NAN),
        premium_off.unwrap_or(f64::NAN),
        premium_on.unwrap_or(f64::NAN)
    );

    match (premium_on, premium_off) {
        (Some(on), Some(off)) => {
            if on > off {
                failures.push(format!(
                    "shedding left premium p99 unbounded: {on:.2} ms vs {off:.2} ms without shedding"
                ));
            }
        }
        _ => failures.push("premium p99 missing from an overload run".to_string()),
    }
    if let (Some(on), Some(unsat)) = (premium_on, premium_unsat) {
        if !smoke && on > unsat * 2.0 {
            failures.push(format!(
                "premium p99 with shedding ({on:.2} ms) above 2x its unsaturated value ({unsat:.2} ms)"
            ));
        }
    }
    if shed_on.tier("premium").is_some_and(|t| t.shed > 0) {
        failures.push("premium transactions were shed".to_string());
    }
    if shed_on.tier("free").is_none_or(|t| t.shed == 0) {
        failures.push("free tier was never shed at 2x capacity".to_string());
    }

    // --- Emit the document. ----------------------------------------------
    let json = rebalance_overload_json(&[static_run, rebalanced_run], capacity, &runs, scale_label);
    let path = "BENCH_rebalance_overload.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("# could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {path}");

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("# ERROR: {failure}");
        }
        std::process::exit(1);
    }
}
