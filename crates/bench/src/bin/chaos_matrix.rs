//! The chaos matrix: the four adversarial scenarios (drifting hotspot,
//! deadlock storm, OLTP/analytical mix, tenant quota) against all three
//! deployments, each fault-free and under a seeded fault plan, with the
//! cross-backend invariant oracle checking every cell.  Sharded faulted
//! cells include a mid-handshake participant kill at a two-phase
//! `lane-prepare/{shard}` hook: the dead shard votes a typed error, the
//! initiating lane backs out of the shards it already holds, and the
//! oracle still requires zero leaked homes entries.
//!
//! Emits a human-readable CSV on stdout and writes the machine-readable
//! `BENCH_chaos_matrix.json` into the current directory.  Exits non-zero
//! when any oracle violation is found or when the emitted document is
//! missing a cell — and prints the failing cell's seed so the exact fault
//! schedule reproduces with `CHAOS_SEED=<seed>`.
//!
//! Usage: `CHAOS_SEED=<n> cargo run --release -p bench --bin chaos_matrix
//! [--paper|--smoke]`

use bench::{chaos_matrix_json, chaos_matrix_sweep, MatrixBackend, Scale, CHAOS_SCENARIOS};

const SHARDS: usize = 4;

fn main() {
    let scale = Scale::from_args();
    let scale_label = Scale::label_from_args();
    let base_seed = chaos::seed_from_env(42);
    chaos::announce_seed_on_panic(base_seed);

    println!(
        "# chaos matrix — {} scenarios x 3 backends x {{baseline, faulted}}, base seed {}",
        CHAOS_SCENARIOS.len(),
        base_seed
    );
    println!("{}", bench::ChaosCellReport::csv_header());
    let rows = chaos_matrix_sweep(scale, base_seed);
    let mut broken = Vec::new();
    for row in &rows {
        println!("{}", row.to_csv());
        for violation in &row.violations {
            broken.push(format!(
                "{}/{}{}: {} (seed {})",
                row.scenario,
                row.backend,
                if row.faulted { "+faults" } else { "" },
                violation,
                row.seed
            ));
        }
    }

    let json = chaos_matrix_json(&rows, scale_label, base_seed);
    let path = "BENCH_chaos_matrix.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("# could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {path}");

    // Self-check: one cell per (scenario, backend, faulted) triple.
    let backends = [
        MatrixBackend::Passthrough,
        MatrixBackend::Unsharded,
        MatrixBackend::Sharded(SHARDS),
    ];
    let mut missing = Vec::new();
    for scenario in CHAOS_SCENARIOS {
        for &backend in &backends {
            for faulted in [false, true] {
                let cell = format!(
                    "\"scenario\":\"{}\",\"backend\":\"{}\",\"faulted\":{}",
                    scenario,
                    backend.label(),
                    faulted
                );
                if !json.contains(&cell) {
                    missing.push(format!("{}/{}/{}", scenario, backend.label(), faulted));
                }
            }
        }
    }
    if !missing.is_empty() {
        eprintln!("# ERROR: {path} is missing chaos cells: {missing:?}");
        std::process::exit(1);
    }

    if !broken.is_empty() {
        eprintln!(
            "# ERROR: the invariant oracle flagged {} violations:",
            broken.len()
        );
        for line in &broken {
            eprintln!("#   {line}");
        }
        eprintln!("# {}", chaos::repro_line(base_seed));
        std::process::exit(1);
    }
    println!(
        "# oracle green across {} cells ({})",
        rows.len(),
        chaos::repro_line(base_seed)
    );
}
