//! The scenario matrix: every registered workload scenario
//! (`workload::scenario::registry`) driven through the unified `session`
//! façade against all three deployments (passthrough, unsharded middleware,
//! 4-shard router fleet), plus an open-loop saturation sweep that shows
//! offered load decoupling from completion.
//!
//! Emits a human-readable CSV on stdout and writes the machine-readable
//! `BENCH_scenario_matrix.json` into the current directory.  Exits
//! non-zero if the emitted document does not cover every registered
//! scenario on every backend — CI runs this at `--smoke` scale, so a
//! scenario added to the registry but broken on some deployment fails the
//! build instead of silently vanishing from the results.
//!
//! Usage: `cargo run --release -p bench --bin scenario_matrix [--paper|--smoke]`

use bench::{
    saturation_series, scenario_matrix_json, scenario_matrix_sweep, scenario_params, MatrixBackend,
    Scale,
};
use workload::scenario::registry;

const SHARDS: usize = 4;
const LOAD_FACTORS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];
/// The open-loop scenario swept across load factors for the saturation
/// series (any open-loop registry entry works; `bursty` is the designated
/// queueing-collapse probe).
const SATURATION_SCENARIO: &str = "bursty";

fn main() {
    let scale = Scale::from_args();
    let scale_label = Scale::label_from_args();
    let params = scenario_params(scale);
    chaos::announce_seed_on_panic(params.seed);
    let backends = [
        MatrixBackend::Passthrough,
        MatrixBackend::Unsharded,
        MatrixBackend::Sharded(SHARDS),
    ];

    println!(
        "# scenario matrix — {} scenarios x {} backends, {} transactions over {} rows each, seed {}",
        registry().len(),
        backends.len(),
        params.transactions,
        params.table_rows,
        params.seed
    );
    println!("{}", bench::ScenarioMatrixRow::csv_header());
    let rows = scenario_matrix_sweep(&backends, scale);
    let mut leaked = Vec::new();
    for row in &rows {
        println!("{}", row.to_csv());
        // Every cell shuts its deployment down cleanly, so any homes-map
        // entry still live at that point is a router leak.
        if row.unreclaimed_homes != 0 {
            leaked.push(format!(
                "{}/{}: {} unreclaimed homes",
                row.scenario, row.backend, row.unreclaimed_homes
            ));
        }
    }
    if !leaked.is_empty() {
        eprintln!("# ERROR: router leaked transaction homes: {leaked:?}");
        std::process::exit(1);
    }

    // The open-loop saturation sweep: offered load at multiples of each
    // backend's measured capacity.
    let probe = workload::scenario::by_name(SATURATION_SCENARIO)
        .expect("saturation probe scenario is registered");
    let mut saturation = Vec::new();
    println!("# saturation sweep — {SATURATION_SCENARIO}, offered load vs achieved:");
    println!("scenario,backend,load_factor,offered_tps,achieved_tps,p99_ms,peak_in_flight");
    for &backend in &backends {
        let points = saturation_series(probe.as_ref(), backend, scale, &LOAD_FACTORS, None);
        for p in &points {
            println!(
                "{},{},{:.2},{:.0},{:.0},{},{}",
                p.scenario,
                p.backend,
                p.load_factor,
                p.offered_tps,
                p.achieved_tps,
                p.p99_ms.map(|ms| format!("{ms:.3}")).unwrap_or_default(),
                p.peak_in_flight
            );
        }
        saturation.extend(points);
    }

    // Headline: where does each backend saturate?
    for &backend in &backends {
        let label = backend.label();
        let knee = saturation
            .iter()
            .filter(|p| p.backend == label)
            .find(|p| p.achieved_tps < p.offered_tps * 0.9);
        match knee {
            Some(p) => println!(
                "# {label}: saturates by {:.1}x capacity (offered {:.0} tps, achieved {:.0} tps)",
                p.load_factor, p.offered_tps, p.achieved_tps
            ),
            None => println!(
                "# {label}: no saturation up to {:.1}x capacity",
                LOAD_FACTORS.last().copied().unwrap_or_default()
            ),
        }
    }

    let json = scenario_matrix_json(&rows, &saturation, scale_label);
    let path = "BENCH_scenario_matrix.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("# could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {path}");

    // Self-check: the emitted document must contain one series row per
    // (registered scenario, backend) pair.  A registry entry that broke on
    // some deployment — or was silently skipped — fails the run.
    let mut missing = Vec::new();
    for scenario in registry() {
        for &backend in &backends {
            let cell = format!(
                "\"scenario\":\"{}\",\"backend\":\"{}\"",
                scenario.name(),
                backend.label()
            );
            if !json.contains(&cell) {
                missing.push(format!("{}/{}", scenario.name(), backend.label()));
            }
        }
    }
    if !missing.is_empty() {
        eprintln!("# ERROR: {path} is missing scenario cells: {missing:?}");
        std::process::exit(1);
    }
}
