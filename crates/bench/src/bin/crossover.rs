//! Reproduces the **Section 4.4** discussion: where does declarative
//! scheduling become cheaper than the native lock-based scheduler?
//!
//! For every client count the native overhead (multi-user minus single-user
//! time, per 240 s window — the paper's 46 s / 225 s numbers) is compared
//! with the extrapolated total declarative scheduling overhead from the
//! Section 4.3 methodology.
//!
//! Usage: `cargo run --release -p bench --bin crossover [--paper]`

use bench::{crossover_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let client_counts = [50, 100, 200, 300, 400, 500, 600];

    println!(
        "# Section 4.4 — native vs declarative scheduling overhead (seconds per 240 s window)"
    );
    println!("clients,native_overhead_secs,declarative_overhead_secs,winner");
    let rows = crossover_table(&client_counts, scale);
    for r in &rows {
        println!(
            "{},{:.1},{:.1},{}",
            r.clients, r.native_overhead_secs, r.declarative_overhead_secs, r.winner
        );
    }
    println!();
    if let Some(first_win) = rows.iter().find(|r| r.winner == "declarative") {
        println!(
            "# crossover: declarative scheduling wins from {} concurrent clients onwards",
            first_win.clients
        );
    } else {
        println!("# crossover: native scheduling won at every measured client count");
    }
    println!("# paper: native wins at 300 clients (46 s vs 1314 s), declarative wins at 500 clients (225 s vs 106 s)");
}
