//! Reproduces the **Section 4.2.2** operating points: committed statements in
//! a 240 s multi-user window and the single-user replay time, at 300 and 500
//! clients.
//!
//! Usage: `cargo run --release -p bench --bin sec42_throughput [--paper]`

use bench::{sec42_rows, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("# Section 4.2.2 — native scheduler operating points");
    println!("clients,committed_stmts_per_240s,su_seconds_for_that_schedule,mu_over_su_percent,overhead_secs_per_240s,deadlock_aborts");
    for p in sec42_rows(scale) {
        // Normalise the single-user time to the same 240 s window so the
        // numbers are directly comparable with the paper's 194 s / 15 s.
        let su_per_240 = if p.mu_time.secs_f64() > 0.0 {
            p.su_time.secs_f64() * 240.0 / p.mu_time.secs_f64()
        } else {
            0.0
        };
        println!(
            "{},{:.0},{:.1},{:.1},{:.1},{}",
            p.clients,
            p.statements_per_240s,
            su_per_240,
            p.ratio_percent(),
            p.overhead_secs_per_240s(),
            p.deadlock_aborts
        );
    }
    println!();
    println!("# paper: 300 clients -> 550055 stmts / 240s, SU 194s (overhead 46s)");
    println!("# paper: 500 clients ->  48267 stmts / 240s, SU  15s (overhead 225s)");
}
