//! The backend matrix: one uniform workload driven through the unified
//! `session` façade against all three deployments (passthrough, unsharded
//! middleware, shard router fleet), each in blocking (depth 1) and
//! pipelined (depth 32) submission mode.
//!
//! This is the apples-to-apples comparison the unified API exists for —
//! and the proof that pipelined submission (≥16 transactions in flight
//! from one session) sustains strictly higher throughput than blocking
//! one-at-a-time round trips.
//!
//! Emits a human-readable CSV on stdout and writes the machine-readable
//! `BENCH_backend_matrix.json` into the current directory.
//!
//! Usage: `cargo run --release -p bench --bin backend_matrix [--paper|--smoke]`

use bench::{backend_matrix_json, backend_matrix_sweep, shard_scaling_workload, Scale};

const DEPTH: usize = 32;
const SHARDS: usize = 4;

fn main() {
    let scale = Scale::from_args();
    let scale_label = Scale::label_from_args();
    let (transactions, table_rows) = shard_scaling_workload(scale);

    println!(
        "# backend matrix — uniform single-object workload, {transactions} transactions over {table_rows} rows, pipeline depth {DEPTH}"
    );
    println!("{}", bench::BackendMatrixRow::csv_header());
    let rows = backend_matrix_sweep(DEPTH, SHARDS, scale);
    for row in &rows {
        println!("{}", row.to_csv());
    }

    // Headline: the pipelining win per deployment.
    for backend in ["passthrough", "unsharded", &format!("sharded{SHARDS}")] {
        let blocking = rows.iter().find(|r| r.backend == backend && r.depth == 1);
        let pipelined = rows.iter().find(|r| r.backend == backend && r.depth > 1);
        if let (Some(b), Some(p)) = (blocking, pipelined) {
            println!(
                "# {backend}: pipelined {:.0} tps vs blocking {:.0} tps ({:.1}x)",
                p.throughput_tps,
                b.throughput_tps,
                if b.throughput_tps > 0.0 {
                    p.throughput_tps / b.throughput_tps
                } else {
                    0.0
                }
            );
        }
    }

    let json = backend_matrix_json(&rows, scale_label);
    let path = "BENCH_backend_matrix.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
