//! The observability-overhead bench: the pipelined closed-loop workload of
//! `backend_matrix` through the unsharded middleware and the 4-shard fleet
//! with the flight recorder off, sampled (1-in-16) and full.  Repetitions
//! are interleaved across the trace modes and each traced run is compared
//! to the same round's off run (so host-throughput drift cancels out of
//! the ratio); the gate runs on the median of those per-round losses.
//!
//! Emits a CSV on stdout and writes `BENCH_obs_overhead.json` into the
//! current directory.  Exits non-zero when a grid cell is missing from the
//! document, when full tracing costs more than the 5 % gate on any
//! measured backend, or when the traces themselves are implausible (a
//! `full` cell recording nothing, an `off` cell recording anything).
//!
//! Usage: `cargo run --release -p bench --bin obs_overhead [--paper|--smoke]`

use bench::obs_overhead::gate_for_scale;
use bench::{
    obs_overhead_json, obs_overhead_sweep, MatrixBackend, ObsOverheadRow, Scale, TraceMode,
};

const DEPTH: usize = 32;
const SHARDS: usize = 4;

fn main() {
    let scale = Scale::from_args();
    let scale_label = Scale::label_from_args();

    println!(
        "# observability overhead — depth {DEPTH}, {{unsharded, sharded{SHARDS}}} x {{off, sampled, full}}, {} interleaved rounds, gate on median paired loss",
        bench::obs_overhead::RUNS_PER_CELL
    );
    println!("{}", ObsOverheadRow::csv_header());
    let report = obs_overhead_sweep(DEPTH, SHARDS, scale);
    for row in &report.rows {
        println!("{}", row.to_csv());
    }

    for estimate in &report.losses {
        println!(
            "# {}: {} tracing costs {:+.2}% throughput (median paired loss)",
            estimate.backend,
            estimate.trace,
            estimate.loss * 100.0
        );
    }

    let json = obs_overhead_json(&report, scale_label);
    let path = "BENCH_obs_overhead.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("# could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {path}");

    // Self-check 1: every grid cell must be present in the document.
    let backends = [
        MatrixBackend::Unsharded.label(),
        MatrixBackend::Sharded(SHARDS).label(),
    ];
    let mut missing = Vec::new();
    for backend in &backends {
        for mode in [TraceMode::Off, TraceMode::Sampled, TraceMode::Full] {
            let cell = format!("\"backend\":\"{}\",\"trace\":\"{}\"", backend, mode.label());
            if !json.contains(&cell) {
                missing.push(format!("{backend}/{}", mode.label()));
            }
        }
    }
    if !missing.is_empty() {
        eprintln!("# ERROR: {path} is missing cells: {missing:?}");
        std::process::exit(1);
    }

    // Self-check 2: the traces must be plausible — a full cell that
    // recorded nothing (or an off cell that recorded anything) means the
    // recorder is not wired through the deployment under test.
    for row in &report.rows {
        let sane = match row.trace {
            "off" => row.trace_events == 0,
            _ => row.trace_events > 0,
        };
        if !sane {
            eprintln!(
                "# ERROR: implausible trace in {}/{}: {} events",
                row.backend, row.trace, row.trace_events
            );
            std::process::exit(1);
        }
    }

    // The gate: full tracing must stay within the scale's gate of the
    // tracing-off throughput on every measured backend (5 % at quick/paper
    // scale; looser at --smoke, whose millisecond cells only catch a
    // catastrophic slowdown).
    let gate = gate_for_scale(scale_label);
    let mut breached = false;
    for backend in &backends {
        let estimate = report
            .losses
            .iter()
            .find(|estimate| estimate.backend == *backend && estimate.trace == "full")
            .expect("every backend gets a full-tracing estimate");
        if estimate.loss > gate {
            eprintln!(
                "# ERROR: full tracing costs {:.2}% on {backend} (gate: {:.0}%)",
                estimate.loss * 100.0,
                gate * 100.0
            );
            breached = true;
        }
    }
    if breached {
        std::process::exit(1);
    }
    println!(
        "# gate: full tracing within {:.0}% on every backend",
        gate * 100.0
    );
}
