//! Reproduces **Table 1** (related approaches feature matrix) and
//! **Table 2** (the request relation schema).
//!
//! Table 1 is qualitative; the related-approach rows are reproduced verbatim
//! from the paper and followed by the feature rows of the protocols this
//! system actually implements — every one of them declarative (D) and
//! flexible (F), which is the gap the paper identifies in prior work.
//!
//! Usage: `cargo run -p bench --bin table1_matrix`

use bench::{render_matrix_row, table1_protocols, table1_related, table2_schema};

fn main() {
    println!("# Table 1 — related approaches (P QoS D F HS)");
    println!("{:<12} P    QoS  D    F    HS", "approach");
    for (name, features) in table1_related() {
        println!("{}", render_matrix_row(name, &features));
    }
    println!();
    println!("# This system's declaratively defined protocols (same axes)");
    println!("{:<12} P    QoS  D    F    HS", "protocol");
    for (name, features) in table1_protocols() {
        println!("{}", render_matrix_row(&name, &features));
    }
    println!();
    println!("# Table 2 — attributes of the requests / history / rte relations");
    println!("{:<12} type", "attribute");
    for (name, dtype) in table2_schema() {
        println!("{name:<12} {dtype}");
    }
}
