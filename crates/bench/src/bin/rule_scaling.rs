//! The rule-scaling bench: from-scratch vs incremental qualification as the
//! history relation grows (the paper's unbounded-history mode,
//! `prune_history: false`).
//!
//! Emits a human-readable CSV on stdout and writes the machine-readable
//! `BENCH_rule_scaling.json` into the current directory.  Exits non-zero
//! if (a) the two modes diverge in what they scheduled — they evaluate the
//! same declarative rule, so any divergence is a correctness bug — or
//! (b) the incremental path is slower than from-scratch at the largest
//! swept scale, the regression the incremental engine exists to prevent.
//! CI runs this at `--smoke` scale.
//!
//! Usage: `cargo run --release -p bench --bin rule_scaling [--paper|--smoke]`

use bench::{
    rule_scaling_json, rule_scaling_speedups, rule_scaling_sweep, RuleScalingRow, RuleScalingSpec,
    Scale,
};

fn main() {
    let spec = RuleScalingSpec::from_args();
    let scale_label = Scale::label_from_args();

    println!(
        "# rule scaling — ss2pl, prune_history=false, {} rounds x {} txns/round, history sizes {:?}",
        spec.rounds, spec.txns_per_round, spec.history_sizes
    );
    println!("{}", RuleScalingRow::csv_header());
    let rows = rule_scaling_sweep(&spec);
    for row in &rows {
        println!("{}", row.to_csv());
    }

    let speedups = rule_scaling_speedups(&rows);
    for s in &speedups {
        println!(
            "# {} @ {} history rows: incremental is {:.1}x faster per round",
            s.backend, s.history_rows, s.speedup
        );
    }

    let json = rule_scaling_json(&rows, &speedups, &spec, scale_label);
    let path = "BENCH_rule_scaling.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("# could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {path}");

    // Gate 1 — equivalence: both modes run the identical workload through
    // the identical rule, so they must schedule identical totals.
    let mut broken = false;
    for row in rows.iter().filter(|r| r.mode == "incremental") {
        let scratch = rows
            .iter()
            .find(|r| {
                r.mode == "scratch"
                    && r.backend == row.backend
                    && r.history_rows == row.history_rows
            })
            .expect("sweep emits both modes per cell");
        if scratch.scheduled != row.scheduled
            || scratch.final_history_rows != row.final_history_rows
        {
            eprintln!(
                "# ERROR: modes diverged on {} @ {} history rows: scratch scheduled {} (history {}), incremental {} (history {})",
                row.backend,
                row.history_rows,
                scratch.scheduled,
                scratch.final_history_rows,
                row.scheduled,
                row.final_history_rows
            );
            broken = true;
        }
    }

    // Gate 2 — the point of the exercise: at the largest swept history the
    // incremental path must not be slower than from-scratch.
    let largest = spec.history_sizes.iter().copied().max().unwrap_or(0);
    for s in speedups.iter().filter(|s| s.history_rows == largest) {
        if s.speedup < 1.0 {
            eprintln!(
                "# ERROR: incremental {} is {:.2}x from-scratch at {} history rows (must be >= 1.0)",
                s.backend, s.speedup, s.history_rows
            );
            broken = true;
        }
    }
    if broken {
        std::process::exit(1);
    }
}
