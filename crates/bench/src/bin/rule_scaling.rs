//! The rule-scaling bench: from-scratch vs incremental qualification as the
//! history relation grows (the paper's unbounded-history mode,
//! `prune_history: false`).
//!
//! Emits a human-readable CSV on stdout and writes the machine-readable
//! `BENCH_rule_scaling.json` into the current directory.  Exits non-zero
//! if (a) the two modes diverge in what they scheduled — they evaluate the
//! same declarative rule, so any divergence is a correctness bug — or
//! (b) the incremental path is slower than from-scratch at the largest
//! swept scale, the regression the incremental engine exists to prevent.
//! CI runs this at `--smoke` scale.
//!
//! Usage: `cargo run --release -p bench --bin rule_scaling [--paper|--smoke]`
//!
//! Each cell is measured in a fresh subprocess (`--cell backend mode
//! history_rows`, emitting one JSON row on stdout): a big cell leaves the
//! allocator's heap fragmented, and a cell measured through that heap pays
//! tens of microseconds per round in faults and TLB misses it does not
//! cause itself.  If self-spawning fails the sweep falls back in-process.

use bench::{
    rule_scaling_cell, rule_scaling_json, rule_scaling_speedups, rule_scaling_sweep,
    RuleScalingRow, RuleScalingSpec, Scale,
};

/// Parse and run `--cell <backend> <mode> <history_rows>`; `true` if the
/// invocation was a child-cell run.
fn run_cell_mode(spec: &RuleScalingSpec) -> bool {
    let args: Vec<String> = std::env::args().collect();
    let Some(at) = args.iter().position(|a| a == "--cell") else {
        return false;
    };
    let usage = "--cell <algebra|datalog> <scratch|incremental> <history_rows>";
    let backend = match args.get(at + 1).map(String::as_str) {
        Some("algebra") => declsched::protocol::Backend::Algebra,
        Some("datalog") => declsched::protocol::Backend::Datalog,
        _ => {
            eprintln!("# bad cell args, expected {usage}");
            std::process::exit(2);
        }
    };
    let incremental = match args.get(at + 2).map(String::as_str) {
        Some("incremental") => true,
        Some("scratch") => false,
        _ => {
            eprintln!("# bad cell args, expected {usage}");
            std::process::exit(2);
        }
    };
    let Some(history_rows) = args.get(at + 3).and_then(|a| a.parse::<usize>().ok()) else {
        eprintln!("# bad cell args, expected {usage}");
        std::process::exit(2);
    };
    let row = rule_scaling_cell(backend, incremental, history_rows, spec);
    println!("{}", row.to_json());
    true
}

/// Run every cell of the sweep in its own subprocess, in the same order as
/// [`rule_scaling_sweep`].  `None` if spawning or parsing failed anywhere.
fn sweep_isolated(spec: &RuleScalingSpec) -> Option<Vec<RuleScalingRow>> {
    let exe = std::env::current_exe().ok()?;
    let scale_flags: Vec<String> = std::env::args()
        .filter(|a| a == "--smoke" || a == "--paper")
        .collect();
    let mut rows = Vec::new();
    for mode in ["incremental", "scratch"] {
        for &history_rows in &spec.history_sizes {
            for backend in ["algebra", "datalog"] {
                let output = std::process::Command::new(&exe)
                    .args(&scale_flags)
                    .args(["--cell", backend, mode])
                    .arg(history_rows.to_string())
                    .output()
                    .ok()?;
                if !output.status.success() {
                    return None;
                }
                let line = std::str::from_utf8(&output.stdout).ok()?;
                rows.push(RuleScalingRow::from_json(line.trim())?);
            }
        }
    }
    Some(rows)
}

fn main() {
    let spec = RuleScalingSpec::from_args();
    if run_cell_mode(&spec) {
        return;
    }
    let scale_label = Scale::label_from_args();

    println!(
        "# rule scaling — ss2pl, prune_history=false, {} rounds x {} txns/round, history sizes {:?}",
        spec.rounds, spec.txns_per_round, spec.history_sizes
    );
    println!("{}", RuleScalingRow::csv_header());
    let rows = sweep_isolated(&spec).unwrap_or_else(|| {
        eprintln!("# per-cell subprocess isolation unavailable, sweeping in-process");
        rule_scaling_sweep(&spec)
    });
    for row in &rows {
        println!("{}", row.to_csv());
    }

    let speedups = rule_scaling_speedups(&rows);
    for s in &speedups {
        println!(
            "# {} @ {} history rows: incremental is {:.1}x faster per round",
            s.backend, s.history_rows, s.speedup
        );
    }

    let json = rule_scaling_json(&rows, &speedups, &spec, scale_label);
    let path = "BENCH_rule_scaling.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("# could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("# wrote {path}");

    // Gate 1 — equivalence: both modes run the identical workload through
    // the identical rule, so they must schedule identical totals.
    let mut broken = false;
    for row in rows.iter().filter(|r| r.mode == "incremental") {
        let scratch = rows
            .iter()
            .find(|r| {
                r.mode == "scratch"
                    && r.backend == row.backend
                    && r.history_rows == row.history_rows
            })
            .expect("sweep emits both modes per cell");
        if scratch.scheduled != row.scheduled
            || scratch.final_history_rows != row.final_history_rows
        {
            eprintln!(
                "# ERROR: modes diverged on {} @ {} history rows: scratch scheduled {} (history {}), incremental {} (history {})",
                row.backend,
                row.history_rows,
                scratch.scheduled,
                scratch.final_history_rows,
                row.scheduled,
                row.final_history_rows
            );
            broken = true;
        }
    }

    // Gate 2 — the point of the exercise: at the largest swept history the
    // incremental path must not be slower than from-scratch.
    let largest = spec.history_sizes.iter().copied().max().unwrap_or(0);
    for s in speedups.iter().filter(|s| s.history_rows == largest) {
        if s.speedup < 1.0 {
            eprintln!(
                "# ERROR: incremental {} is {:.2}x from-scratch at {} history rows (must be >= 1.0)",
                s.backend, s.speedup, s.history_rows
            );
            broken = true;
        }
    }
    if broken {
        std::process::exit(1);
    }
}
