//! Reproduces **Section 4.3.2**: the cost of one declarative SS2PL
//! scheduling round (drain → insert → rule → delete → history insert), the
//! number of qualified requests per round and the extrapolated total
//! declarative scheduling overhead.
//!
//! Usage: `cargo run --release -p bench --bin sec43_declarative_overhead [--paper]`

use bench::{sec43_experiment, Backend, Scale, Sec43Row};

fn main() {
    let scale = Scale::from_args();
    let client_counts = [100, 200, 300, 400, 500, 600];

    println!("# Section 4.3.2 — declarative scheduling overhead (SS2PL rule, Listing 1)");
    println!("{}", Sec43Row::csv_header());
    for backend in [Backend::Algebra, Backend::Datalog] {
        for row in sec43_experiment(&client_counts, backend, scale) {
            println!("{}", row.to_csv());
        }
    }
    println!();
    println!(
        "# paper (commercial DBMS, SQL): 358 ms per round @ 300 clients, 545 ms @ 500 clients"
    );
    println!("# paper: ~clients/2 tuples returned per round");
    println!("# paper: total overhead 3668 runs x 358 ms = 1314 s @ 300 clients; 193 runs x 545 ms = 106 s @ 500 clients");
}
