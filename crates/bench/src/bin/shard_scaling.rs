//! The shard-scaling experiment: single-shard vs 2/4/8-shard throughput on a
//! uniform single-object workload, swept over the workload's
//! `cross_shard_fraction` knob to locate the crossover where escalation
//! traffic erases the parallelism win.
//!
//! Emits a human-readable CSV on stdout and writes the machine-readable
//! `BENCH_shard_scaling.json` into the current directory so the perf
//! trajectory is tracked across PRs.
//!
//! Under `--smoke` the run doubles as a **CI perf gate**: sharding must
//! still pay.  The process exits non-zero when the 8-shard fleet is slower
//! than 2x the single scheduler at 0% cross-shard traffic, or slower than
//! 0.8x at 20% — deliberately loose bounds (the full-scale acceptance bar
//! is 4x / 1x) so CI noise on tiny smoke workloads doesn't flake the gate,
//! while a regression to "sharding is a net loss" still fails the push.
//!
//! Usage: `cargo run --release -p bench --bin shard_scaling [--paper|--smoke]`

use bench::{shard_scaling_json, shard_scaling_sweep, shard_scaling_workload, Scale};

/// Smoke-gate floors: (cross_shard_fraction, minimum 8-shard speedup).
const SMOKE_GATE: [(f64, f64); 2] = [(0.0, 2.0), (0.20, 0.8)];

fn main() {
    let scale = Scale::from_args();
    let scale_label = Scale::label_from_args();
    let shard_counts = [1usize, 2, 4, 8];
    let fractions = [0.0f64, 0.05, 0.20, 0.50];
    let (transactions, table_rows) = shard_scaling_workload(scale);

    println!(
        "# shard scaling — uniform single-object workload, {transactions} transactions over {table_rows} rows"
    );
    println!("{}", bench::ShardScalingRow::csv_header());
    let rows = shard_scaling_sweep(&shard_counts, &fractions, scale);
    for row in &rows {
        println!("{}", row.to_csv());
    }

    // Headline numbers: the acceptance bar and the crossover.
    if let Some(eight) = rows
        .iter()
        .find(|r| r.shards == 8 && r.cross_shard_fraction == 0.0)
    {
        println!(
            "# 8-shard speedup over 1 shard at cross_shard_fraction=0: {:.2}x",
            eight.speedup_vs_one_shard
        );
    }
    if let Some(erased) = rows
        .iter()
        .find(|r| r.shards > 1 && r.speedup_vs_one_shard < 1.05 && r.cross_shard_fraction > 0.0)
    {
        println!(
            "# crossover: at cross_shard_fraction={:.2} the {}-shard win is gone ({:.2}x)",
            erased.cross_shard_fraction, erased.shards, erased.speedup_vs_one_shard
        );
    }

    let json = shard_scaling_json(&rows, scale_label);
    let path = "BENCH_shard_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }

    if scale_label == "smoke" {
        let mut gate_failed = false;
        for (fraction, floor) in SMOKE_GATE {
            let Some(row) = rows
                .iter()
                .find(|r| r.shards == 8 && (r.cross_shard_fraction - fraction).abs() < 1e-9)
            else {
                eprintln!("# GATE: missing 8-shard row at cross_shard_fraction={fraction:.2}");
                gate_failed = true;
                continue;
            };
            if row.speedup_vs_one_shard < floor {
                eprintln!(
                    "# GATE FAILED: 8 shards at cross_shard_fraction={:.2} reached {:.2}x vs 1 shard (floor {:.1}x)",
                    fraction, row.speedup_vs_one_shard, floor
                );
                gate_failed = true;
            } else {
                println!(
                    "# gate ok: 8 shards at cross_shard_fraction={:.2} → {:.2}x (floor {:.1}x)",
                    fraction, row.speedup_vs_one_shard, floor
                );
            }
        }
        if gate_failed {
            std::process::exit(1);
        }
    }
}
