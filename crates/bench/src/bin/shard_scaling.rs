//! The shard-scaling experiment: single-shard vs 2/4/8-shard throughput on a
//! uniform single-object workload, swept over the workload's
//! `cross_shard_fraction` knob to locate the crossover where serialized
//! escalation traffic erases the parallelism win.
//!
//! Emits a human-readable CSV on stdout and writes the machine-readable
//! `BENCH_shard_scaling.json` into the current directory so the perf
//! trajectory is tracked across PRs.
//!
//! Usage: `cargo run --release -p bench --bin shard_scaling [--paper]`

use bench::{shard_scaling_json, shard_scaling_sweep, shard_scaling_workload, Scale};

fn main() {
    let scale = Scale::from_args();
    let scale_label = Scale::label_from_args();
    let shard_counts = [1usize, 2, 4, 8];
    let fractions = [0.0f64, 0.05, 0.20, 0.50];
    let (transactions, table_rows) = shard_scaling_workload(scale);

    println!(
        "# shard scaling — uniform single-object workload, {transactions} transactions over {table_rows} rows"
    );
    println!("{}", bench::ShardScalingRow::csv_header());
    let rows = shard_scaling_sweep(&shard_counts, &fractions, scale);
    for row in &rows {
        println!("{}", row.to_csv());
    }

    // Headline numbers: the acceptance bar and the crossover.
    if let Some(four) = rows
        .iter()
        .find(|r| r.shards == 4 && r.cross_shard_fraction == 0.0)
    {
        println!(
            "# 4-shard speedup over 1 shard at cross_shard_fraction=0: {:.2}x",
            four.speedup_vs_one_shard
        );
    }
    if let Some(erased) = rows
        .iter()
        .find(|r| r.shards > 1 && r.speedup_vs_one_shard < 1.05 && r.cross_shard_fraction > 0.0)
    {
        println!(
            "# crossover: at cross_shard_fraction={:.2} the {}-shard win is gone ({:.2}x)",
            erased.cross_shard_fraction, erased.shards, erased.speedup_vs_one_shard
        );
    }

    let json = shard_scaling_json(&rows, scale_label);
    let path = "BENCH_shard_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
