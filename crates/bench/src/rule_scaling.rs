//! The rule-scaling experiment: from-scratch vs incremental qualification
//! as the history relation grows.
//!
//! The paper re-evaluates the declarative rule over `requests` ∪ `history`
//! every round, and in its unbounded-history mode (`prune_history: false`)
//! that makes every round O(total state).  The incremental engine claims
//! O(delta) rounds regardless of history size.  This bench measures both
//! claims directly: for each swept history size it preloads that many
//! **active** (never-committed) write locks — the worst case for the
//! Listing-1 CTEs, every row survives the `finished` anti-join — then runs
//! a fixed per-round workload and reports the average round cost.
//!
//! Both rule back-ends are swept: `algebra` executes the Listing-1 plan,
//! `datalog` the equivalent stratified program.  In `incremental` mode the
//! scheduler answers rounds from its per-object conflict index instead, so
//! the curve must stay flat while the from-scratch curves grow with
//! history size.
//!
//! The two modes run the *identical* workload, so their scheduled counts
//! must agree exactly — the bin exits non-zero on any divergence, which
//! turns every CI smoke run into an end-to-end equivalence check.

use declsched::{
    DeclarativeScheduler, Protocol, ProtocolKind, Request, SchedulerConfig, TriggerPolicy,
};

/// One measured cell: a (backend, mode, history size) combination.
#[derive(Debug, Clone)]
pub struct RuleScalingRow {
    /// Rule back-end (`algebra` or `datalog`).
    pub backend: &'static str,
    /// Evaluation mode (`scratch` or `incremental`).
    pub mode: &'static str,
    /// Preloaded active-lock history rows (the swept variable).
    pub history_rows: usize,
    /// History rows at the end of the run (preload + unpruned workload).
    pub final_history_rows: usize,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Requests scheduled across all rounds.
    pub scheduled: u64,
    /// Average end-to-end round cost, microseconds.
    pub avg_round_micros: f64,
    /// Average rule-evaluation cost per round, microseconds.
    pub avg_rule_eval_micros: f64,
    /// Total catalog-assembly cost, microseconds (zero in incremental mode:
    /// no catalog is built).
    pub catalog_build_micros: u64,
    /// Rounds answered incrementally.
    pub incremental_rounds: u64,
    /// Pending requests re-examined by the incremental engine in total.
    pub delta_rows: u64,
    /// Heap allocations per scheduling round, averaged over the measured
    /// loop.  `0.0` unless the bench was built with `--features count-alloc`
    /// (see [`crate::alloc_count`]); downstream tooling treats zero as
    /// "not measured".
    pub allocs_per_round: f64,
}

impl RuleScalingRow {
    /// CSV header.
    pub fn csv_header() -> &'static str {
        "backend,mode,history_rows,final_history_rows,rounds,scheduled,avg_round_micros,avg_rule_eval_micros,catalog_build_micros,incremental_rounds,delta_rows,allocs_per_round"
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.1},{:.1},{},{},{},{:.1}",
            self.backend,
            self.mode,
            self.history_rows,
            self.final_history_rows,
            self.rounds,
            self.scheduled,
            self.avg_round_micros,
            self.avg_rule_eval_micros,
            self.catalog_build_micros,
            self.incremental_rounds,
            self.delta_rows,
            self.allocs_per_round
        )
    }

    /// One JSON object (hand-rolled; the workspace builds offline without a
    /// serde dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"mode\":\"{}\",\"history_rows\":{},\"final_history_rows\":{},\"rounds\":{},\"scheduled\":{},\"avg_round_micros\":{:.2},\"avg_rule_eval_micros\":{:.2},\"catalog_build_micros\":{},\"incremental_rounds\":{},\"delta_rows\":{},\"allocs_per_round\":{:.1}}}",
            self.backend,
            self.mode,
            self.history_rows,
            self.final_history_rows,
            self.rounds,
            self.scheduled,
            self.avg_round_micros,
            self.avg_rule_eval_micros,
            self.catalog_build_micros,
            self.incremental_rounds,
            self.delta_rows,
            self.allocs_per_round
        )
    }

    /// Parse a row back from its [`RuleScalingRow::to_json`] line — the
    /// wire format of the bench binary's per-cell subprocess mode, which
    /// measures each cell in a fresh process so no cell inherits the heap
    /// a previous cell fragmented.  Returns `None` on any shape mismatch.
    pub fn from_json(text: &str) -> Option<Self> {
        let doc = crate::perf_gate::parse_json(text).ok()?;
        let num = |key: &str| doc.get(key)?.as_num();
        let backend = match doc.get("backend")? {
            crate::perf_gate::Json::Str(s) if s == "algebra" => "algebra",
            crate::perf_gate::Json::Str(s) if s == "datalog" => "datalog",
            _ => return None,
        };
        let mode = match doc.get("mode")? {
            crate::perf_gate::Json::Str(s) if s == "incremental" => "incremental",
            crate::perf_gate::Json::Str(s) if s == "scratch" => "scratch",
            _ => return None,
        };
        Some(RuleScalingRow {
            backend,
            mode,
            history_rows: num("history_rows")? as usize,
            final_history_rows: num("final_history_rows")? as usize,
            rounds: num("rounds")? as u64,
            scheduled: num("scheduled")? as u64,
            avg_round_micros: num("avg_round_micros")?,
            avg_rule_eval_micros: num("avg_rule_eval_micros")?,
            catalog_build_micros: num("catalog_build_micros")? as u64,
            incremental_rounds: num("incremental_rounds")? as u64,
            delta_rows: num("delta_rows")? as u64,
            allocs_per_round: num("allocs_per_round")?,
        })
    }
}

/// Sweep parameters, sized per `--smoke` / default / `--paper`.
#[derive(Debug, Clone)]
pub struct RuleScalingSpec {
    /// Preloaded history sizes to sweep, ascending.
    pub history_sizes: Vec<usize>,
    /// Scheduling rounds measured per cell.
    pub rounds: u64,
    /// Transactions submitted per round (each: one write + one commit).
    pub txns_per_round: u64,
    /// Measured runs per cell; the best (lowest `avg_round_micros`) is
    /// reported.  Suppresses OS-preemption noise on cells whose measured
    /// loop is shorter than a scheduler timeslice; treated as 1 when 0.
    pub repeats: u64,
}

impl RuleScalingSpec {
    /// CI-tiny sweep.
    pub fn smoke() -> Self {
        RuleScalingSpec {
            history_sizes: vec![0, 512, 2_048],
            rounds: 10,
            txns_per_round: 8,
            repeats: 3,
        }
    }

    /// Default sweep: seconds, not minutes.
    pub fn quick() -> Self {
        RuleScalingSpec {
            history_sizes: vec![0, 1_000, 4_000, 16_000],
            rounds: 20,
            txns_per_round: 16,
            repeats: 3,
        }
    }

    /// The full curve.
    pub fn paper() -> Self {
        RuleScalingSpec {
            history_sizes: vec![0, 2_000, 8_000, 32_000, 64_000],
            rounds: 25,
            txns_per_round: 16,
            repeats: 3,
        }
    }

    /// Pick from command-line arguments, mirroring [`crate::Scale::from_args`].
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            RuleScalingSpec::paper()
        } else if std::env::args().any(|a| a == "--smoke") {
            RuleScalingSpec::smoke()
        } else {
            RuleScalingSpec::quick()
        }
    }
}

/// The preloaded history: `rows` writes by distinct transactions that never
/// finish, each locking its own private object far outside the workload's
/// object range.  Every row survives the rule's `finished` anti-join, so
/// from-scratch evaluation pays for all of them every round, while none of
/// them conflicts with the workload (keeping scheduling decisions identical
/// across scales).
fn preload(rows: usize) -> Vec<Request> {
    (0..rows)
        .map(|i| Request::write(0, 1_000_000 + i as u64, 0, 1_000_000_000 + i as i64))
        .collect()
}

/// Run one cell and measure it, keeping the best of [`RuleScalingSpec::repeats`]
/// runs (by `avg_round_micros`).
///
/// An incremental cell's measured loop spans only a few milliseconds of
/// wall time, so one OS preemption can double its average; the best run is
/// the least-disturbed one.  A cell whose measured loop already spans many
/// scheduler timeslices amortises preemptions on its own, so repeating it
/// buys nothing — the loop exits early once a run took long enough.
pub fn rule_scaling_cell(
    backend: declsched::protocol::Backend,
    incremental: bool,
    history_rows: usize,
    spec: &RuleScalingSpec,
) -> RuleScalingRow {
    let mut best: Option<RuleScalingRow> = None;
    for _ in 0..spec.repeats.max(1) {
        let row = rule_scaling_cell_once(backend, incremental, history_rows, spec);
        let measured_micros = row.avg_round_micros * row.rounds as f64;
        if best
            .as_ref()
            .is_none_or(|b| row.avg_round_micros < b.avg_round_micros)
        {
            best = Some(row);
        }
        if measured_micros > 100_000.0 {
            break;
        }
    }
    best.expect("repeats.max(1) runs the cell at least once")
}

/// One measured run of a cell.
fn rule_scaling_cell_once(
    backend: declsched::protocol::Backend,
    incremental: bool,
    history_rows: usize,
    spec: &RuleScalingSpec,
) -> RuleScalingRow {
    let mut scheduler = DeclarativeScheduler::new(
        Protocol::new(ProtocolKind::Ss2pl, backend),
        SchedulerConfig {
            trigger: TriggerPolicy::Always,
            // The paper's unbounded-history mode: this is exactly the regime
            // where per-round O(total state) hurts.
            prune_history: false,
            enforce_intra_order: true,
            incremental,
            ..SchedulerConfig::default()
        },
    );
    scheduler
        .preload_history(&preload(history_rows))
        .expect("preload rows always match the request schema");

    // The per-round workload: `txns_per_round` write+commit transactions
    // over a window half that many objects wide, so every round carries
    // genuine write-write conflicts and a few requests defer across rounds.
    let objects = (spec.txns_per_round / 2).max(1) as i64;
    let mut ta = 0u64;
    let mut scheduled = 0u64;
    // Allocation accounting brackets the measured loop only, so preload and
    // report assembly don't pollute the per-round figure.  Reads zero unless
    // built with `--features count-alloc`.
    let allocs_before = crate::alloc_count::allocations();
    for round in 0..spec.rounds {
        for i in 0..spec.txns_per_round {
            ta += 1;
            let object = ((round * spec.txns_per_round + i) as i64) % objects;
            scheduler.submit(Request::write(0, ta, 0, object), round);
            scheduler.submit(Request::commit(0, ta, 1), round);
        }
        let batch = scheduler
            .run_round(round)
            .expect("built-in rules cannot fail");
        scheduled += batch.len() as u64;
    }
    // Drain the deferred tail so both modes account the same work.
    let mut spins = 0;
    while scheduler.pending() > 0 && spins < 1_000 {
        let batch = scheduler
            .run_round(spec.rounds + spins)
            .expect("built-in rules cannot fail");
        scheduled += batch.len() as u64;
        spins += 1;
    }
    let allocs_after = crate::alloc_count::allocations();

    let metrics = scheduler.metrics();
    RuleScalingRow {
        backend: match backend {
            declsched::protocol::Backend::Algebra => "algebra",
            declsched::protocol::Backend::Datalog => "datalog",
        },
        mode: if incremental {
            "incremental"
        } else {
            "scratch"
        },
        history_rows,
        final_history_rows: scheduler.history_len(),
        rounds: metrics.rounds,
        scheduled,
        avg_round_micros: metrics.avg_round_micros(),
        avg_rule_eval_micros: metrics.avg_rule_eval_micros(),
        catalog_build_micros: metrics.catalog_build_micros,
        incremental_rounds: metrics.incremental_rounds,
        delta_rows: metrics.delta_rows,
        allocs_per_round: if metrics.rounds > 0 {
            allocs_after.saturating_sub(allocs_before) as f64 / metrics.rounds as f64
        } else {
            0.0
        },
    }
}

/// The full sweep: every history size × both back-ends × both modes.
///
/// All incremental cells run *before* any from-scratch cell: the
/// from-scratch sweep allocates hundreds of megabytes of transient
/// evaluation state, and measuring the allocation-free path through the
/// heap it leaves behind inflates its numbers with cache and TLB misses it
/// never causes itself.
pub fn rule_scaling_sweep(spec: &RuleScalingSpec) -> Vec<RuleScalingRow> {
    let mut rows = Vec::new();
    for incremental in [true, false] {
        for &history_rows in &spec.history_sizes {
            for backend in [
                declsched::protocol::Backend::Algebra,
                declsched::protocol::Backend::Datalog,
            ] {
                rows.push(rule_scaling_cell(backend, incremental, history_rows, spec));
            }
        }
    }
    rows
}

/// Per-(backend, history size) speedup of incremental over from-scratch.
#[derive(Debug, Clone)]
pub struct RuleScalingSpeedup {
    /// Rule back-end.
    pub backend: &'static str,
    /// Preloaded history rows.
    pub history_rows: usize,
    /// `scratch avg_round_micros / incremental avg_round_micros`.
    pub speedup: f64,
}

/// Pair up the sweep rows into speedups.
pub fn rule_scaling_speedups(rows: &[RuleScalingRow]) -> Vec<RuleScalingSpeedup> {
    let mut out = Vec::new();
    for row in rows.iter().filter(|r| r.mode == "incremental") {
        if let Some(scratch) = rows.iter().find(|r| {
            r.mode == "scratch" && r.backend == row.backend && r.history_rows == row.history_rows
        }) {
            out.push(RuleScalingSpeedup {
                backend: row.backend,
                history_rows: row.history_rows,
                speedup: if row.avg_round_micros > 0.0 {
                    scratch.avg_round_micros / row.avg_round_micros
                } else {
                    f64::INFINITY
                },
            });
        }
    }
    out
}

/// Render the `BENCH_rule_scaling.json` document.
pub fn rule_scaling_json(
    rows: &[RuleScalingRow],
    speedups: &[RuleScalingSpeedup],
    spec: &RuleScalingSpec,
    scale_label: &str,
) -> String {
    let series: Vec<String> = rows.iter().map(RuleScalingRow::to_json).collect();
    let pairs: Vec<String> = speedups
        .iter()
        .map(|s| {
            format!(
                "{{\"backend\":\"{}\",\"history_rows\":{},\"speedup\":{:.2}}}",
                s.backend, s.history_rows, s.speedup
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"rule_scaling\",\n  \"scale\": \"{}\",\n  \"protocol\": \"ss2pl\",\n  \"prune_history\": false,\n  \"rounds_per_cell\": {},\n  \"txns_per_round\": {},\n  \"history_sizes\": {:?},\n  \"series\": [\n    {}\n  ],\n  \"speedups\": [\n    {}\n  ]\n}}\n",
        scale_label,
        spec.rounds,
        spec.txns_per_round,
        spec.history_sizes,
        series.join(",\n    "),
        pairs.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use declsched::protocol::Backend;

    #[test]
    fn modes_schedule_identically_and_incremental_skips_the_catalog() {
        let spec = RuleScalingSpec {
            history_sizes: vec![64],
            rounds: 4,
            txns_per_round: 6,
            repeats: 1,
        };
        let scratch = rule_scaling_cell(Backend::Algebra, false, 64, &spec);
        let incremental = rule_scaling_cell(Backend::Algebra, true, 64, &spec);
        assert_eq!(scratch.scheduled, incremental.scheduled);
        assert_eq!(scratch.final_history_rows, incremental.final_history_rows);
        assert_eq!(incremental.incremental_rounds, incremental.rounds);
        assert_eq!(incremental.catalog_build_micros, 0);
        assert!(incremental.delta_rows > 0);
        assert_eq!(scratch.incremental_rounds, 0);
    }

    #[test]
    fn sweep_covers_every_cell_and_speedups_pair_up() {
        let spec = RuleScalingSpec {
            history_sizes: vec![0, 32],
            rounds: 2,
            txns_per_round: 4,
            repeats: 1,
        };
        let rows = rule_scaling_sweep(&spec);
        assert_eq!(rows.len(), 2 * 2 * 2);
        // The subprocess wire format round-trips every field.
        for row in &rows {
            let back = RuleScalingRow::from_json(&row.to_json()).expect("round-trip parses");
            assert_eq!(back.backend, row.backend);
            assert_eq!(back.mode, row.mode);
            assert_eq!(back.history_rows, row.history_rows);
            assert_eq!(back.final_history_rows, row.final_history_rows);
            assert_eq!(back.rounds, row.rounds);
            assert_eq!(back.scheduled, row.scheduled);
            assert_eq!(back.delta_rows, row.delta_rows);
        }
        let speedups = rule_scaling_speedups(&rows);
        assert_eq!(speedups.len(), 2 * 2);
        let json = rule_scaling_json(&rows, &speedups, &spec, "test");
        assert!(json.contains("\"bench\": \"rule_scaling\""));
        assert!(json.contains("\"backend\":\"datalog\""));
        assert!(json.contains("\"prune_history\": false"));
    }
}
