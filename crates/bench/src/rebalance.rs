//! The adaptive-control-plane experiment behind the `rebalance_overload`
//! binary (`BENCH_rebalance_overload.json`): does hot-object re-homing beat
//! static hash placement under adversarial skew, and does SLA-aware
//! shedding keep premium tail latency bounded past saturation?
//!
//! Two cells:
//!
//! * **skew** — the `extreme-skew` scenario (95 % of single-key writes on a
//!   16-key hot set co-located on one shard by the router hash) driven
//!   closed-loop against a 4-shard fleet, once with static placement and
//!   once with a [`control::ControlPlane`] migrating hot objects.  Both
//!   runs replay the identical stream in two phases: a warm-up (placement
//!   converges while the backlog is live) and a timed phase whose committed
//!   throughput is reported.
//! * **overload** — the `tiered-overload` scenario (15 % premium / 25 %
//!   standard / 60 % free) replayed open-loop at multiples of the measured
//!   closed-loop capacity, with shedding off and on
//!   ([`session::ShedPolicy`]), reporting per-tier shed counts and latency
//!   quantiles.

use crate::hist::LatencyHistogram;
use crate::scenario::{scaled_schedule, to_session_txn};
use crate::Scale;
use control::{ControlConfig, ControlPlane};
use declsched::{Protocol, ProtocolKind, SchedulerConfig, TriggerPolicy};
use session::ShedPolicy;
use simkit::arrival::OpenLoopPacer;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use workload::scenario::{by_name, Scenario, ScenarioParams, ScenarioTxn};

/// Shard count both cells run against.
pub const REBALANCE_SHARDS: usize = 4;

/// Pipeline depth of the closed-loop drivers.
const DEPTH: usize = 32;

/// Queue-depth watermark (deepest shard) at which the shedding runs
/// engage.  Premium tail latency under shedding is floored by roughly one
/// watermark's worth of queue ahead of each admitted transaction, so the
/// watermark is what trades admitted low-tier throughput against the
/// premium p99 bound.
pub const SHED_WATERMARK: usize = 16;

/// Priority protected from shedding (premium = 3).
pub const SHED_PROTECT_PRIORITY: i64 = 3;

/// Load factors of the overload sweep: unsaturated baseline and 2× capacity.
pub const OVERLOAD_FACTORS: [f64; 2] = [0.5, 2.0];

/// Workload dimensions: the skew/overload cells need runs long enough for
/// the control plane's sampling cycles to matter, whatever the scale.
pub fn rebalance_workload(scale: Scale) -> (usize, usize) {
    let transactions = (scale.transactions_per_client.max(1) * 512).clamp(2_048, 8_192);
    (transactions, scale.table_rows)
}

fn rebalance_params(scale: Scale) -> ScenarioParams {
    let (transactions, table_rows) = rebalance_workload(scale);
    ScenarioParams {
        transactions,
        table_rows,
        seed: chaos::seed_from_env(42),
    }
}

fn start_sharded(
    scenario: &dyn Scenario,
    table_rows: usize,
    shed: Option<ShedPolicy>,
    round_threshold: usize,
    incremental: bool,
) -> session::Scheduler {
    let kind = if scenario.sla_aware() {
        ProtocolKind::SlaPriority
    } else {
        ProtocolKind::Ss2pl
    };
    let mut builder = session::Scheduler::builder()
        .policy(Protocol::algebra(kind))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: round_threshold,
            },
            incremental,
            ..SchedulerConfig::default()
        })
        .table("bench", table_rows)
        .shards(REBALANCE_SHARDS);
    if let Some(policy) = shed {
        builder = builder.shed_policy(policy);
    }
    builder.build().expect("fleet start cannot fail")
}

/// Round trigger for the skew cell: fire on any arrival.  After
/// rebalancing, each shard sees a shallow (~depth/shards) queue; an
/// interval-or-big-batch trigger would quantize those shards to one round
/// per interval and hide the spread's benefit behind trigger latency.
const SKEW_ROUND_THRESHOLD: usize = 1;

/// Pipeline depth of the skew cell's timed phase: deep enough that the
/// from-scratch rule's backlog-dependent round cost dominates fixed
/// per-transaction costs on whichever shard carries the hot set.
const SKEW_DEPTH: usize = 256;

/// Round trigger for the overload cell: batch up to 64 arrivals per round,
/// the same setting the scenario matrix uses for open-loop throughput.
const OVERLOAD_ROUND_THRESHOLD: usize = 64;

/// Drive `stream` closed-loop at `depth` through `session`, returning
/// `(committed, wall, latency)`.
fn drive_closed_at(
    session: &mut session::Session,
    stream: &[ScenarioTxn],
    depth: usize,
) -> (u64, Duration, LatencyHistogram) {
    use std::collections::VecDeque;
    let mut window: VecDeque<(session::Ticket, Instant)> = VecDeque::with_capacity(depth);
    let mut committed = 0u64;
    let mut latency = LatencyHistogram::new();
    let started = Instant::now();
    for txn in stream {
        if window.len() >= depth {
            let (ticket, submitted) = window.pop_front().expect("window non-empty");
            if ticket.wait().is_ok() {
                committed += 1;
            }
            latency.record(submitted.elapsed());
        }
        window.push_back((
            session
                .submit(to_session_txn(txn, 0))
                .expect("submission cannot fail while the fleet is up"),
            Instant::now(),
        ));
    }
    while let Some((ticket, submitted)) = window.pop_front() {
        if ticket.wait().is_ok() {
            committed += 1;
        }
        latency.record(submitted.elapsed());
    }
    (committed, started.elapsed(), latency)
}

/// Drive `stream` closed-loop at the default pipeline depth.
fn drive_closed(
    session: &mut session::Session,
    stream: &[ScenarioTxn],
) -> (u64, Duration, LatencyHistogram) {
    drive_closed_at(session, stream, DEPTH)
}

/// One measured placement mode of the skew cell.
#[derive(Debug, Clone)]
pub struct SkewRun {
    /// `static` or `rebalanced`.
    pub mode: &'static str,
    /// Committed transactions per second over the timed phase.
    pub achieved_tps: f64,
    /// Committed transactions in the timed phase.
    pub transactions: u64,
    /// p99 latency of the timed phase, milliseconds.
    pub p99_ms: Option<f64>,
    /// Successful placement migrations (0 for the static run).
    pub migrations: u64,
    /// Migration attempts refused busy (retried).
    pub busy: u64,
    /// Final placement epoch.
    pub placement_epoch: u64,
    /// Per-shard committed transactions of the whole run (index = shard) —
    /// the concentration/spread witness.
    pub shard_commits: Vec<u64>,
}

impl SkewRun {
    /// One JSON object.
    pub fn to_json(&self) -> String {
        let shard_commits: Vec<String> = self.shard_commits.iter().map(u64::to_string).collect();
        format!(
            "{{\"mode\":\"{}\",\"achieved_tps\":{:.1},\"transactions\":{},\"p99_ms\":{},\"migrations\":{},\"busy\":{},\"placement_epoch\":{},\"shard_commits\":[{}]}}",
            self.mode,
            self.achieved_tps,
            self.transactions,
            crate::scenario::json_ms(self.p99_ms),
            self.migrations,
            self.busy,
            self.placement_epoch,
            shard_commits.join(",")
        )
    }
}

/// Run the skew cell in one placement mode.
///
/// The skew cell runs the paper's **from-scratch** rule configuration
/// (`incremental: false`): per-round cost then scales with relation size,
/// which is exactly the regime where placement matters — a shard carrying
/// the whole hot set evaluates its rule over the whole backlog each round,
/// while spread shards evaluate over a quarter of it.  (Under the O(delta)
/// incremental engine the per-admission cost is linear in backlog and
/// therefore placement-invariant on one core; the incremental engine's own
/// win is measured by `rule_scaling`.)
///
/// Two phases, identical in both modes: a closed-loop warm-up — hot
/// objects fall idle between transactions there, which is when the control
/// plane can migrate them — and a timed full-burst phase (every remaining
/// transaction pipelined up front, the `shard_scaling` regime) that
/// measures committed throughput under the (possibly rebalanced)
/// placement.
pub fn skew_run(scale: Scale, rebalance: bool) -> SkewRun {
    let scenario = by_name("extreme-skew").expect("registered scenario");
    let params = rebalance_params(scale);
    let stream = scenario.generate(&params);
    let warmup = (stream.len() / 4).min(512);

    let scheduler = start_sharded(
        scenario.as_ref(),
        params.table_rows,
        None,
        SKEW_ROUND_THRESHOLD,
        false,
    );
    let control = rebalance.then(|| {
        ControlPlane::start(
            scheduler.sharded_control().expect("sharded deployment"),
            ControlConfig {
                interval: Duration::from_millis(5),
                skew_ratio: 1.6,
                min_depth: 8,
                max_moves_per_cycle: 16,
                // Only the genuinely hot objects are worth a fence; the
                // cold tail stays at its hash home.
                min_object_weight: 16,
                cooldown_cycles: 200,
                sticky_cycles: 100,
            },
        )
    });
    let mut session = scheduler.connect();

    // Warm-up phase (shallow closed loop): the control plane observes the
    // skew, opening its sticky rebalancing window.  Drained fully so the
    // timed phase starts clean.
    let _ = drive_closed(&mut session, &stream[..warmup]);
    // Settle lull: hot objects are idle now, which is when the control
    // plane's migrations actually land (under live traffic an object is
    // almost never idle at the instant the fence probes it).  The static
    // run sleeps identically; the timed clock starts after.
    std::thread::sleep(Duration::from_millis(60));
    // Timed phase (deep closed loop): enough transactions in flight that
    // per-shard backlog — and with it the from-scratch rule's round cost —
    // reflects the placement under test, while bounding total backlog so
    // the cell completes in seconds.
    let (committed, wall, latency) = drive_closed_at(&mut session, &stream[warmup..], SKEW_DEPTH);

    let stats = control.map(ControlPlane::stop).unwrap_or_default();
    drop(session);
    let report = scheduler.shutdown();
    let detail = report.sharded.as_ref().expect("sharded deployment");

    SkewRun {
        mode: if rebalance { "rebalanced" } else { "static" },
        achieved_tps: committed as f64 / wall.as_secs_f64().max(1e-9),
        transactions: committed,
        p99_ms: latency.p99_ms(),
        migrations: stats.migrations,
        busy: stats.busy,
        placement_epoch: detail.placement_epoch,
        shard_commits: detail
            .reports
            .iter()
            .map(|shard| shard.dispatch.commits)
            .collect(),
    }
}

/// Per-tier outcome of one overload run.
#[derive(Debug, Clone)]
pub struct TierCell {
    /// Service class name.
    pub class: String,
    /// Transactions of this class in the stream.
    pub submitted: u64,
    /// Committed.
    pub committed: u64,
    /// Shed by the overload policy.
    pub shed: u64,
    /// Failed for any other reason.
    pub failed: u64,
    /// Median completion latency, milliseconds (committed only).
    pub p50_ms: Option<f64>,
    /// p99 completion latency, milliseconds (committed only).
    pub p99_ms: Option<f64>,
}

impl TierCell {
    /// One JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"class\":\"{}\",\"submitted\":{},\"committed\":{},\"shed\":{},\"failed\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
            self.class,
            self.submitted,
            self.committed,
            self.shed,
            self.failed,
            crate::scenario::json_ms(self.p50_ms),
            crate::scenario::json_ms(self.p99_ms)
        )
    }
}

/// One overload run: a load factor × shedding mode.
#[derive(Debug, Clone)]
pub struct OverloadRun {
    /// Offered load as a multiple of measured closed-loop capacity.
    pub load_factor: f64,
    /// Whether the shedding policy was active.
    pub shedding: bool,
    /// Mean offered transactions per second.
    pub offered_tps: f64,
    /// Committed transactions per second.
    pub achieved_tps: f64,
    /// Per-tier outcomes, sorted by class name.
    pub tiers: Vec<TierCell>,
}

impl OverloadRun {
    /// The tier cell for `class`, if present.
    pub fn tier(&self, class: &str) -> Option<&TierCell> {
        self.tiers.iter().find(|t| t.class == class)
    }

    /// One JSON object.
    pub fn to_json(&self) -> String {
        let tiers: Vec<String> = self.tiers.iter().map(TierCell::to_json).collect();
        format!(
            "{{\"load_factor\":{:.2},\"shedding\":{},\"offered_tps\":{:.1},\"achieved_tps\":{:.1},\"tiers\":[{}]}}",
            self.load_factor,
            self.shedding,
            self.offered_tps,
            self.achieved_tps,
            tiers.join(",")
        )
    }
}

struct TierAccumulator {
    committed: u64,
    shed: u64,
    failed: u64,
    latency: LatencyHistogram,
}

/// Open-loop driver with per-tier accounting: submissions paced by the
/// schedule, a collector thread draining tickets in submission order.
fn drive_open_tiered(
    scenario: &dyn Scenario,
    stream: &[ScenarioTxn],
    table_rows: usize,
    schedule: &simkit::arrival::ArrivalSchedule,
    shed: Option<ShedPolicy>,
) -> (f64, Vec<TierCell>) {
    let scheduler = start_sharded(scenario, table_rows, shed, OVERLOAD_ROUND_THRESHOLD, true);
    let mut session = scheduler.connect();

    type TicketMsg = (session::Ticket, &'static str, Instant);
    let (ticket_tx, ticket_rx) = crossbeam::channel::unbounded::<TicketMsg>();
    let collector = std::thread::spawn(move || {
        let mut tiers: HashMap<&'static str, TierAccumulator> = HashMap::new();
        let mut committed_total = 0u64;
        while let Ok((ticket, class, submitted)) = ticket_rx.recv() {
            let entry = tiers.entry(class).or_insert_with(|| TierAccumulator {
                committed: 0,
                shed: 0,
                failed: 0,
                latency: LatencyHistogram::new(),
            });
            match ticket.wait() {
                Ok(_) => {
                    entry.committed += 1;
                    committed_total += 1;
                    entry.latency.record(submitted.elapsed());
                }
                Err(e) if e.is_shed() => entry.shed += 1,
                Err(_) => entry.failed += 1,
            }
        }
        (tiers, committed_total)
    });

    let started = Instant::now();
    let pacer = OpenLoopPacer::start();
    for (txn, &arrival_us) in stream.iter().zip(schedule.offsets_us()) {
        pacer.pace_until(arrival_us);
        let class = txn.class.map(|c| c.as_str()).unwrap_or("unclassed");
        let ticket = session
            .submit(to_session_txn(txn, arrival_us))
            .expect("submission cannot fail while the fleet is up");
        ticket_tx
            .send((ticket, class, Instant::now()))
            .expect("collector outlives the submission loop");
    }
    drop(ticket_tx);
    let (tiers, committed_total) = collector.join().expect("collector never panics");
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    drop(session);
    let _ = scheduler.shutdown();

    let mut submitted: HashMap<&'static str, u64> = HashMap::new();
    for txn in stream {
        *submitted
            .entry(txn.class.map(|c| c.as_str()).unwrap_or("unclassed"))
            .or_default() += 1;
    }
    let mut cells: Vec<TierCell> = tiers
        .into_iter()
        .map(|(class, acc)| TierCell {
            class: class.to_string(),
            submitted: submitted.get(class).copied().unwrap_or(0),
            committed: acc.committed,
            shed: acc.shed,
            failed: acc.failed,
            p50_ms: acc.latency.p50_ms(),
            p99_ms: acc.latency.p99_ms(),
        })
        .collect();
    cells.sort_by(|a, b| a.class.cmp(&b.class));
    (committed_total as f64 / wall_secs, cells)
}

/// The shedding policy both shedding-on runs use.
pub fn shed_policy() -> ShedPolicy {
    ShedPolicy::new(SHED_WATERMARK, SHED_PROTECT_PRIORITY)
}

/// The full overload cell: measure capacity, then sweep
/// [`OVERLOAD_FACTORS`] with shedding off, plus the overload factor with
/// shedding on.  Returns `(capacity_tps, runs)`.
pub fn overload_cell(scale: Scale) -> (f64, Vec<OverloadRun>) {
    let scenario = by_name("tiered-overload").expect("registered scenario");
    let params = rebalance_params(scale);
    let stream = scenario.generate(&params);

    // Capacity = the open-loop plateau: a closed-loop depth-32 estimate
    // first (an open-loop pacer needs *some* rate), then an open-loop probe
    // offered well past it — what the backend commits under saturation is
    // its true capacity, and it is what the overload factors scale from.
    // (A closed-loop measurement alone underestimates: bounded in-flight
    // depth never lets the schedulers batch at full width, so "2x
    // capacity" would not actually saturate.)
    let scheduler = start_sharded(
        scenario.as_ref(),
        params.table_rows,
        None,
        OVERLOAD_ROUND_THRESHOLD,
        true,
    );
    let mut session = scheduler.connect();
    let (committed, wall, _) = drive_closed(&mut session, &stream);
    drop(session);
    let _ = scheduler.shutdown();
    let closed_estimate = (committed as f64 / wall.as_secs_f64().max(1e-9)).max(1.0);
    let probe_schedule = scaled_schedule(
        scenario.as_ref(),
        closed_estimate,
        4.0,
        stream.len(),
        params.seed,
    );
    let (capacity, _) = drive_open_tiered(
        scenario.as_ref(),
        &stream,
        params.table_rows,
        &probe_schedule,
        None,
    );
    let capacity = capacity.max(1.0);

    let mut runs = Vec::new();
    for &factor in &OVERLOAD_FACTORS {
        for shedding in [false, true] {
            if shedding && factor < 1.0 {
                // Shedding below saturation is a no-op by construction;
                // skip the redundant run.
                continue;
            }
            let schedule = scaled_schedule(
                scenario.as_ref(),
                capacity,
                factor,
                stream.len(),
                params.seed,
            );
            let (achieved_tps, tiers) = drive_open_tiered(
                scenario.as_ref(),
                &stream,
                params.table_rows,
                &schedule,
                shedding.then(shed_policy),
            );
            runs.push(OverloadRun {
                load_factor: factor,
                shedding,
                offered_tps: schedule.offered_tps(),
                achieved_tps,
                tiers,
            });
        }
    }
    (capacity, runs)
}

/// Render the whole experiment as the `BENCH_rebalance_overload.json`
/// document.
pub fn rebalance_overload_json(
    skew: &[SkewRun],
    capacity_tps: f64,
    overload: &[OverloadRun],
    scale_label: &str,
) -> String {
    let skew_json: Vec<String> = skew.iter().map(SkewRun::to_json).collect();
    let overload_json: Vec<String> = overload.iter().map(OverloadRun::to_json).collect();
    format!(
        "{{\n  \"bench\": \"rebalance_overload\",\n  \"scale\": \"{}\",\n  \"shards\": {},\n  \"skew\": {{\n    \"scenario\": \"extreme-skew\",\n    \"runs\": [\n      {}\n    ]\n  }},\n  \"overload\": {{\n    \"scenario\": \"tiered-overload\",\n    \"capacity_tps\": {:.1},\n    \"shed_watermark\": {},\n    \"protect_priority\": {},\n    \"runs\": [\n      {}\n    ]\n  }}\n}}\n",
        scale_label,
        REBALANCE_SHARDS,
        skew_json.join(",\n      "),
        capacity_tps,
        SHED_WATERMARK,
        SHED_PROTECT_PRIORITY,
        overload_json.join(",\n      ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale::smoke()
    }

    #[test]
    fn skew_cell_migrates_and_reports_shard_spread() {
        let run = skew_run(tiny(), true);
        assert_eq!(run.mode, "rebalanced");
        assert!(run.achieved_tps > 0.0);
        assert_eq!(run.shard_commits.len(), REBALANCE_SHARDS);
        assert!(
            run.migrations >= 1,
            "the control plane must migrate at least one hot object: {run:?}"
        );
        assert!(run.placement_epoch >= run.migrations);
        assert!(run.to_json().contains("\"mode\":\"rebalanced\""));
    }

    #[test]
    fn static_skew_cell_concentrates_on_one_shard() {
        let run = skew_run(tiny(), false);
        assert_eq!(run.migrations, 0);
        assert_eq!(run.placement_epoch, 0);
        let total: u64 = run.shard_commits.iter().sum();
        let max = run.shard_commits.iter().max().copied().unwrap_or(0);
        assert!(
            max as f64 / total.max(1) as f64 > 0.7,
            "static placement must leave the hot shard dominant: {:?}",
            run.shard_commits
        );
    }

    #[test]
    fn overload_cell_sheds_low_tiers_and_spares_premium() {
        let (capacity, runs) = overload_cell(tiny());
        assert!(capacity > 0.0);
        assert_eq!(runs.len(), 3, "0.5x off, 2x off, 2x on");
        let shed_on = runs
            .iter()
            .find(|r| r.shedding)
            .expect("a shedding run exists");
        assert!((shed_on.load_factor - 2.0).abs() < f64::EPSILON);
        let premium = shed_on.tier("premium").expect("premium tier present");
        assert_eq!(premium.shed, 0, "premium is never shed");
        let free = shed_on.tier("free").expect("free tier present");
        assert!(
            free.shed > 0,
            "free tier must be shed at 2x capacity: {free:?}"
        );
        let json = rebalance_overload_json(&[], capacity, &runs, "test");
        assert!(json.contains("\"bench\": \"rebalance_overload\""));
        assert!(json.contains("\"shedding\":true"));
    }
}
