//! Feature-gated allocation counting for the benchmark binaries.
//!
//! With the `count-alloc` feature enabled the bench crate installs a global
//! allocator that wraps [`std::alloc::System`] and counts every allocation
//! (`alloc`, `alloc_zeroed`, and the growth half of `realloc`) into a
//! process-wide atomic.  The rule-scaling experiment reads the counter
//! around its measured rounds to report `allocs_per_round` — the metric the
//! allocation-free hot path is gated on.  Deallocations are deliberately
//! not counted: the hot-path claim is about *transient* allocations per
//! round, and a pool that allocates once and recycles forever should read
//! as (amortised) zero.
//!
//! With the feature off (the default, and what every non-bench consumer
//! gets) no allocator is installed, [`enabled`] is `false`, and
//! [`allocations`] pins at zero — callers emit `0.0` and downstream tooling
//! treats the field as "not measured".
//!
//! Counting costs one relaxed atomic increment per allocation, so timing
//! runs and allocation runs should be separate invocations:
//!
//! ```text
//! cargo run --release -p bench --features count-alloc --bin rule_scaling
//! ```

#[cfg(feature = "count-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAllocator;

    // SAFETY: every method delegates directly to `System`; the wrapper only
    // adds a relaxed counter bump, which cannot itself allocate.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

/// Whether allocation counting is compiled in (`--features count-alloc`).
pub fn enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Heap allocations performed by this process so far; always `0` when the
/// `count-alloc` feature is off.  Subtract two readings to count a region.
pub fn allocations() -> u64 {
    #[cfg(feature = "count-alloc")]
    {
        imp::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_and_matches_the_feature() {
        let before = allocations();
        let v: Vec<u64> = (0..1024).collect();
        std::hint::black_box(&v);
        let after = allocations();
        if enabled() {
            assert!(after > before, "a 1k-element Vec must allocate");
        } else {
            assert_eq!((before, after), (0, 0));
        }
    }
}
