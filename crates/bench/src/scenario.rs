//! The scenario matrix: every registered workload scenario driven through
//! the unified `session` façade against every deployment.
//!
//! Closed-loop scenarios replay their stream with a bounded number of
//! transactions in flight (the classical bench shape).  Open-loop scenarios
//! first measure the backend's closed-loop capacity on the *same* stream,
//! then replay it paced by a pre-generated arrival schedule
//! ([`simkit::arrival`]) whose mean rate is a chosen multiple of that
//! capacity — so offered load is decoupled from completion, and driving the
//! multiple past 1 exposes the saturation knee (achieved throughput
//! plateaus at capacity while offered load keeps rising and latency
//! explodes).  That knee is what [`saturation_series`] sweeps.

use crate::hist::LatencyHistogram;
use crate::{shard_scaling_workload, MatrixBackend, Scale};
use declsched::{Protocol, ProtocolKind, SchedulerConfig, SlaMeta, TriggerPolicy};
use simkit::arrival::{ArrivalSchedule, OpenLoopPacer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use workload::scenario::{registry, Scenario, ScenarioParams, ScenarioTxn};
use workload::ArrivalSpec;

/// Open-loop runs pace their mean offered rate at this multiple of the
/// measured closed-loop capacity: high enough that bursts overrun the
/// backend transiently, low enough that the run still drains.
const OPEN_LOOP_LOAD_FACTOR: f64 = 0.6;

/// Pipeline depth used when measuring a backend's closed-loop capacity for
/// an open-loop scenario.
const CAPACITY_DEPTH: usize = 32;

/// Mixed into the workload seed to derive the arrival-schedule seed, so
/// arrival gaps are statistically independent of transaction content (both
/// generators would otherwise walk the identical splitmix64 sequence).
const ARRIVAL_SEED_SALT: u64 = 0xA881_55C1_0F0F_9E3D;

/// The scenario parameters used at a given benchmark scale — shared by the
/// bin, the tests and the saturation sweep so every consumer sees the
/// identical stream.  The workload seed honours `CHAOS_SEED` so a failing
/// matrix run reproduces with one environment variable.
pub fn scenario_params(scale: Scale) -> ScenarioParams {
    let (transactions, table_rows) = shard_scaling_workload(scale);
    ScenarioParams {
        transactions,
        table_rows,
        seed: chaos::seed_from_env(42),
    }
}

/// One measured (scenario, backend) cell of the matrix.
#[derive(Debug, Clone)]
pub struct ScenarioMatrixRow {
    /// Scenario name (stable registry key).
    pub scenario: String,
    /// Deployment label (`passthrough`, `unsharded`, `sharded4`, …).
    pub backend: String,
    /// `closed` or `open` loop.
    pub mode: &'static str,
    /// Transactions submitted.
    pub transactions: u64,
    /// Transactions aborted (native deadlock victims in passthrough mode;
    /// scheduled backends never abort).
    pub aborted: u64,
    /// Wall-clock seconds from first submission to last completion.
    pub wall_secs: f64,
    /// Mean offered load in transactions per second (0 for closed loops —
    /// offered load is completion-coupled there).
    pub offered_tps: f64,
    /// Committed transactions per second.
    pub achieved_tps: f64,
    /// Median transaction latency (submit → complete), milliseconds;
    /// `None` when the run completed nothing to measure.
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency, milliseconds (`None` with no samples).
    pub p99_ms: Option<f64>,
    /// 99.9th-percentile latency, milliseconds (`None` with no samples).
    pub p999_ms: Option<f64>,
    /// Largest number of transactions simultaneously in flight — the
    /// queue-growth witness under open-loop overload.
    pub peak_in_flight: u64,
    /// Latency samples that saturated the histogram range (≥ 100 s): any
    /// nonzero value means the reported quantiles understate the tail (see
    /// [`LatencyHistogram::overflow`]).
    pub latency_overflow: u64,
    /// Router homes-map entries still live at shutdown (sharded backends
    /// only; always 0 on a clean run — the bin fails otherwise).
    pub unreclaimed_homes: u64,
}

impl ScenarioMatrixRow {
    /// CSV header.
    pub fn csv_header() -> &'static str {
        "scenario,backend,mode,transactions,aborted,wall_secs,offered_tps,achieved_tps,p50_ms,p99_ms,p999_ms,peak_in_flight,latency_overflow,unreclaimed_homes"
    }

    /// CSV rendering (empty cells for unmeasurable quantiles).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{:.3},{:.0},{:.0},{},{},{},{},{},{}",
            self.scenario,
            self.backend,
            self.mode,
            self.transactions,
            self.aborted,
            self.wall_secs,
            self.offered_tps,
            self.achieved_tps,
            csv_ms(self.p50_ms),
            csv_ms(self.p99_ms),
            csv_ms(self.p999_ms),
            self.peak_in_flight,
            self.latency_overflow,
            self.unreclaimed_homes
        )
    }

    /// One JSON object (hand-rolled; the workspace builds offline without a
    /// serde dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"backend\":\"{}\",\"mode\":\"{}\",\"transactions\":{},\"aborted\":{},\"wall_secs\":{:.6},\"offered_tps\":{:.1},\"achieved_tps\":{:.1},\"p50_ms\":{},\"p99_ms\":{},\"p999_ms\":{},\"peak_in_flight\":{},\"latency_overflow\":{},\"unreclaimed_homes\":{}}}",
            self.scenario,
            self.backend,
            self.mode,
            self.transactions,
            self.aborted,
            self.wall_secs,
            self.offered_tps,
            self.achieved_tps,
            json_ms(self.p50_ms),
            json_ms(self.p99_ms),
            json_ms(self.p999_ms),
            self.peak_in_flight,
            self.latency_overflow,
            self.unreclaimed_homes
        )
    }
}

/// One point of the saturation sweep: offered load as a multiple of the
/// measured capacity, and what the backend actually delivered.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Scenario swept.
    pub scenario: String,
    /// Deployment label.
    pub backend: String,
    /// Offered load as a multiple of measured closed-loop capacity.
    pub load_factor: f64,
    /// Mean offered transactions per second.
    pub offered_tps: f64,
    /// Committed transactions per second.
    pub achieved_tps: f64,
    /// 99th-percentile latency, milliseconds (`None` with no samples).
    pub p99_ms: Option<f64>,
    /// Peak transactions in flight.
    pub peak_in_flight: u64,
}

impl SaturationPoint {
    /// One JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"scenario\":\"{}\",\"backend\":\"{}\",\"load_factor\":{:.2},\"offered_tps\":{:.1},\"achieved_tps\":{:.1},\"p99_ms\":{},\"peak_in_flight\":{}}}",
            self.scenario,
            self.backend,
            self.load_factor,
            self.offered_tps,
            self.achieved_tps,
            json_ms(self.p99_ms),
            self.peak_in_flight
        )
    }
}

/// A millisecond quantile as a JSON value: a number, or `null` when the
/// histogram recorded nothing — an empty run must not report a fabricated
/// p99 (the old behaviour synthesised one from bucket bounds).
pub(crate) fn json_ms(ms: Option<f64>) -> String {
    match ms {
        Some(value) => format!("{value:.4}"),
        None => "null".to_string(),
    }
}

/// A millisecond quantile as a CSV cell (empty when unmeasured).
fn csv_ms(ms: Option<f64>) -> String {
    match ms {
        Some(value) => format!("{value:.3}"),
        None => String::new(),
    }
}

/// What one driver pass measured.
struct RunStats {
    wall_secs: f64,
    committed: u64,
    aborted: u64,
    latency: LatencyHistogram,
    peak_in_flight: u64,
    /// Router homes-map entries still live at shutdown (0 for non-sharded
    /// backends and on every clean run).
    unreclaimed_homes: u64,
}

impl RunStats {
    fn achieved_tps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.committed as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Build the scheduler deployment for one (scenario, backend) cell.
fn start_deployment(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    table_rows: usize,
) -> session::Scheduler {
    let kind = if scenario.sla_aware() {
        ProtocolKind::SlaPriority
    } else {
        ProtocolKind::Ss2pl
    };
    let builder = session::Scheduler::builder()
        .policy(Protocol::algebra(kind))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 64,
            },
            ..SchedulerConfig::default()
        })
        .table("bench", table_rows);
    match backend {
        MatrixBackend::Passthrough => builder.passthrough(),
        MatrixBackend::Unsharded => builder.unsharded(),
        MatrixBackend::Sharded(n) => builder.shards(n),
    }
    .build()
    .expect("deployment start cannot fail")
}

/// Turn one generated scenario transaction into a session [`session::Txn`],
/// attaching SLA metadata when the scenario models service classes.
pub(crate) fn to_session_txn(txn: &ScenarioTxn, arrival_us: u64) -> session::Txn {
    let built = session::Txn::from_statements(&txn.statements);
    match txn.class {
        None => built,
        Some(class) => {
            let arrival_ms = arrival_us / 1_000;
            built.with_sla(SlaMeta {
                priority: class.priority(),
                class: class.as_str(),
                arrival_ms,
                deadline_ms: arrival_ms + class.deadline_ms(),
            })
        }
    }
}

/// Closed-loop driver: at most `depth` transactions in flight, latency
/// measured per transaction, aborts tolerated (passthrough deadlock
/// victims).
fn run_closed_loop(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    stream: &[ScenarioTxn],
    table_rows: usize,
    depth: usize,
) -> RunStats {
    use std::collections::VecDeque;

    let depth = depth.max(1);
    let scheduler = start_deployment(scenario, backend, table_rows);
    let mut session = scheduler.connect();

    let mut latency = LatencyHistogram::new();
    let mut committed = 0u64;
    let mut aborted = 0u64;
    let mut window: VecDeque<(session::Ticket, Instant)> = VecDeque::with_capacity(depth);
    let started = Instant::now();
    for txn in stream {
        if window.len() >= depth {
            let (ticket, submitted) = window.pop_front().expect("window non-empty");
            match ticket.wait() {
                Ok(_) => committed += 1,
                Err(_) => aborted += 1,
            }
            latency.record(submitted.elapsed());
        }
        window.push_back((
            session
                .submit(to_session_txn(txn, 0))
                .expect("submission cannot fail while the deployment is up"),
            Instant::now(),
        ));
    }
    while let Some((ticket, submitted)) = window.pop_front() {
        match ticket.wait() {
            Ok(_) => committed += 1,
            Err(_) => aborted += 1,
        }
        latency.record(submitted.elapsed());
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let report = scheduler.shutdown();

    RunStats {
        wall_secs,
        committed,
        aborted,
        latency,
        peak_in_flight: depth.min(stream.len()) as u64,
        unreclaimed_homes: unreclaimed_homes(&report),
    }
}

/// Homes-map entries the router failed to reclaim (0 for non-sharded
/// backends) — the leak witness every matrix cell asserts on.
fn unreclaimed_homes(report: &session::Report) -> u64 {
    report
        .sharded
        .as_ref()
        .map(|detail| detail.unreclaimed_homes)
        .unwrap_or(0)
}

/// Open-loop driver: submissions paced by `schedule` regardless of
/// completion; a collector thread drains tickets in submission order and
/// records latency, so the submitting thread never blocks on the backend.
///
/// Latency is *as observed in submission order*: a transaction that
/// completes out of order is recorded when its ticket is reached, so its
/// sample is bounded below by the completion of everything submitted
/// before it.  Under overload that head-of-line wait **is** the queueing
/// delay the open loop exists to expose; in uncontended runs the window is
/// shallow and the skew negligible.  The closed-loop driver observes the
/// same way (as `backend_matrix` always has).
fn run_open_loop(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    stream: &[ScenarioTxn],
    table_rows: usize,
    schedule: &ArrivalSchedule,
) -> RunStats {
    assert_eq!(schedule.len(), stream.len());
    let scheduler = start_deployment(scenario, backend, table_rows);
    let mut session = scheduler.connect();

    let completed = Arc::new(AtomicU64::new(0));
    let (ticket_tx, ticket_rx) = crossbeam::channel::unbounded::<(session::Ticket, Instant)>();
    let collector = {
        let completed = Arc::clone(&completed);
        std::thread::spawn(move || {
            let mut latency = LatencyHistogram::new();
            let mut committed = 0u64;
            let mut aborted = 0u64;
            while let Ok((ticket, submitted)) = ticket_rx.recv() {
                match ticket.wait() {
                    Ok(_) => committed += 1,
                    Err(_) => aborted += 1,
                }
                latency.record(submitted.elapsed());
                completed.fetch_add(1, Ordering::Relaxed);
            }
            (latency, committed, aborted)
        })
    };

    let started = Instant::now();
    let pacer = OpenLoopPacer::start();
    let mut peak_in_flight = 0u64;
    for (index, (txn, &arrival_us)) in stream.iter().zip(schedule.offsets_us()).enumerate() {
        pacer.pace_until(arrival_us);
        let ticket = session
            .submit(to_session_txn(txn, arrival_us))
            .expect("submission cannot fail while the deployment is up");
        ticket_tx
            .send((ticket, Instant::now()))
            .expect("collector outlives the submission loop");
        let in_flight = (index as u64 + 1) - completed.load(Ordering::Relaxed);
        peak_in_flight = peak_in_flight.max(in_flight);
    }
    drop(ticket_tx);
    let (latency, committed, aborted) = collector.join().expect("collector thread never panics");
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let report = scheduler.shutdown();

    RunStats {
        wall_secs,
        committed,
        aborted,
        latency,
        peak_in_flight,
        unreclaimed_homes: unreclaimed_homes(&report),
    }
}

/// Measure a backend's closed-loop capacity (committed tps at pipeline
/// depth [`CAPACITY_DEPTH`]) on the scenario's own stream.
fn measure_capacity(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    stream: &[ScenarioTxn],
    table_rows: usize,
) -> f64 {
    run_closed_loop(scenario, backend, stream, table_rows, CAPACITY_DEPTH).achieved_tps()
}

/// The arrival schedule for an open-loop run at `load_factor` × the
/// measured capacity, preserving the scenario's arrival *shape* (burst
/// ratio, duty cycle).
pub(crate) fn scaled_schedule(
    scenario: &dyn Scenario,
    capacity_tps: f64,
    load_factor: f64,
    n: usize,
    seed: u64,
) -> ArrivalSchedule {
    let spec = scenario.arrival();
    let mean = spec.mean_rate_tps().unwrap_or(1.0).max(f64::MIN_POSITIVE);
    let target = (capacity_tps * load_factor).max(1.0);
    ArrivalSchedule::generate(&spec.scaled(target / mean), n, seed ^ ARRIVAL_SEED_SALT)
}

/// Run one (scenario, backend) cell of the matrix.
pub fn scenario_matrix_run(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    scale: Scale,
) -> ScenarioMatrixRow {
    let params = scenario_params(scale);
    let stream = scenario.generate(&params);
    let (mode, offered_tps, stats) = match scenario.arrival() {
        ArrivalSpec::Closed { depth } => {
            let stats = run_closed_loop(scenario, backend, &stream, params.table_rows, depth);
            ("closed", 0.0, stats)
        }
        _ => {
            let capacity = measure_capacity(scenario, backend, &stream, params.table_rows);
            let schedule = scaled_schedule(
                scenario,
                capacity,
                OPEN_LOOP_LOAD_FACTOR,
                stream.len(),
                params.seed,
            );
            let offered = schedule.offered_tps();
            let stats = run_open_loop(scenario, backend, &stream, params.table_rows, &schedule);
            ("open", offered, stats)
        }
    };

    ScenarioMatrixRow {
        scenario: scenario.name().to_string(),
        backend: backend.label(),
        mode,
        transactions: stream.len() as u64,
        aborted: stats.aborted,
        wall_secs: stats.wall_secs,
        offered_tps,
        achieved_tps: stats.achieved_tps(),
        p50_ms: stats.latency.p50_ms(),
        p99_ms: stats.latency.p99_ms(),
        p999_ms: stats.latency.p999_ms(),
        peak_in_flight: stats.peak_in_flight,
        latency_overflow: stats.latency.overflow(),
        unreclaimed_homes: stats.unreclaimed_homes,
    }
}

/// The full matrix: every registered scenario against every deployment.
pub fn scenario_matrix_sweep(backends: &[MatrixBackend], scale: Scale) -> Vec<ScenarioMatrixRow> {
    let mut rows = Vec::new();
    for scenario in registry() {
        for &backend in backends {
            rows.push(scenario_matrix_run(scenario.as_ref(), backend, scale));
        }
    }
    rows
}

/// Sweep offered load across `load_factors` × closed-loop capacity for one
/// scenario on one backend.  Past factor 1.0 the offered rate keeps rising
/// while achieved throughput plateaus at capacity — the saturation point
/// the open-loop harness exists to expose.
///
/// `capacity_tps` lets a caller that already measured the backend's
/// closed-loop capacity reuse it (keeping one calibration across an
/// emitted document); `None` measures it here with a depth-32 replay of
/// the same stream.
pub fn saturation_series(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    scale: Scale,
    load_factors: &[f64],
    capacity_tps: Option<f64>,
) -> Vec<SaturationPoint> {
    let params = scenario_params(scale);
    let stream = scenario.generate(&params);
    let capacity = capacity_tps
        .unwrap_or_else(|| measure_capacity(scenario, backend, &stream, params.table_rows));
    load_factors
        .iter()
        .map(|&factor| {
            let schedule = scaled_schedule(scenario, capacity, factor, stream.len(), params.seed);
            let stats = run_open_loop(scenario, backend, &stream, params.table_rows, &schedule);
            SaturationPoint {
                scenario: scenario.name().to_string(),
                backend: backend.label(),
                load_factor: factor,
                offered_tps: schedule.offered_tps(),
                achieved_tps: stats.achieved_tps(),
                p99_ms: stats.latency.p99_ms(),
                peak_in_flight: stats.peak_in_flight,
            }
        })
        .collect()
}

/// Render the matrix and the saturation sweep as the
/// `BENCH_scenario_matrix.json` document.
pub fn scenario_matrix_json(
    rows: &[ScenarioMatrixRow],
    saturation: &[SaturationPoint],
    scale_label: &str,
) -> String {
    let names: Vec<String> = registry()
        .iter()
        .map(|s| format!("\"{}\"", s.name()))
        .collect();
    let series: Vec<String> = rows.iter().map(ScenarioMatrixRow::to_json).collect();
    let knee: Vec<String> = saturation.iter().map(SaturationPoint::to_json).collect();
    format!(
        "{{\n  \"bench\": \"scenario_matrix\",\n  \"scale\": \"{}\",\n  \"scenarios\": [{}],\n  \"series\": [\n    {}\n  ],\n  \"saturation\": [\n    {}\n  ]\n}}\n",
        scale_label,
        names.join(", "),
        series.join(",\n    "),
        knee.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_cell_commits_the_whole_stream_on_a_scheduled_backend() {
        let scenario = workload::scenario::by_name("zipf-hotspot").unwrap();
        let row = scenario_matrix_run(scenario.as_ref(), MatrixBackend::Unsharded, Scale::smoke());
        assert_eq!(row.mode, "closed");
        assert_eq!(row.transactions, 256);
        assert_eq!(row.aborted, 0, "scheduled backends never abort");
        assert!(row.achieved_tps > 0.0);
        assert!(row.p50_ms <= row.p99_ms && row.p99_ms <= row.p999_ms);
        assert!(row.to_csv().starts_with("zipf-hotspot,unsharded,closed"));
    }

    #[test]
    fn open_loop_cell_reports_offered_load_decoupled_from_completion() {
        let scenario = workload::scenario::by_name("bursty").unwrap();
        let row = scenario_matrix_run(scenario.as_ref(), MatrixBackend::Unsharded, Scale::smoke());
        assert_eq!(row.mode, "open");
        assert!(row.offered_tps > 0.0, "open loop must report offered load");
        assert_eq!(row.transactions - row.aborted, 256);
        assert!(row.peak_in_flight >= 1);
        assert!(row.to_json().contains("\"mode\":\"open\""));
    }

    #[test]
    fn sla_scenario_runs_under_the_priority_protocol_end_to_end() {
        let scenario = workload::scenario::by_name("sla-tiers").unwrap();
        assert!(scenario.sla_aware());
        let row = scenario_matrix_run(scenario.as_ref(), MatrixBackend::Sharded(2), Scale::smoke());
        assert_eq!(row.aborted, 0);
        assert_eq!(row.transactions, 256);
        assert!(row.achieved_tps > 0.0);
        assert_eq!(row.unreclaimed_homes, 0, "router must reclaim every home");
        assert_eq!(row.latency_overflow, 0, "no smoke run takes 100 s");
    }

    #[test]
    fn saturation_sweep_shows_achieved_plateauing_below_offered() {
        let scenario = workload::scenario::by_name("bursty").unwrap();
        let points = saturation_series(
            scenario.as_ref(),
            MatrixBackend::Unsharded,
            Scale::smoke(),
            &[0.5, 4.0],
            None,
        );
        assert_eq!(points.len(), 2);
        let overload = &points[1];
        assert!(
            overload.achieved_tps < overload.offered_tps * 0.8,
            "at 4x capacity the backend must fall behind offered load: \
             achieved {:.0} vs offered {:.0}",
            overload.achieved_tps,
            overload.offered_tps
        );
        assert!(
            overload.peak_in_flight > points[0].peak_in_flight,
            "overload must grow the in-flight queue"
        );
    }

    #[test]
    fn json_document_lists_every_registered_scenario() {
        let rows = vec![scenario_matrix_run(
            workload::scenario::by_name("read-mostly").unwrap().as_ref(),
            MatrixBackend::Passthrough,
            Scale::smoke(),
        )];
        let json = scenario_matrix_json(&rows, &[], "smoke");
        for scenario in registry() {
            assert!(
                json.contains(&format!("\"{}\"", scenario.name())),
                "JSON must list {}",
                scenario.name()
            );
        }
        assert!(json.contains("\"bench\": \"scenario_matrix\""));
    }
}
