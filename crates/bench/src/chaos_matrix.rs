//! The chaos matrix: adversarial scenarios under deterministic fault
//! injection, checked by a cross-backend invariant oracle.
//!
//! Each cell drives one registered chaos scenario against one deployment,
//! either fault-free or under a seeded [`chaos::FaultPlan`] (worker
//! stalls, commit-path stalls, escalation-lane delay, router send
//! failures, mid-run shed-policy flips).  Whatever the faults did to
//! *performance*, the oracle then asserts the run stayed *correct*:
//!
//! 1. **Exactly-once resolution** — every submitted transaction resolved
//!    to exactly one of committed / failed / shed.
//! 2. **Replay equivalence** — the committed subset replays cleanly on a
//!    fresh fault-free unsharded reference and both runs agree on the
//!    final value of every row not written by a non-committed
//!    transaction, and every committed statement appears exactly once in
//!    the executed log.
//! 3. **Per-object admission order** — between a committed transaction's
//!    read of an object and its upgrading write, no other committed
//!    transaction's write of that object was admitted (the SS2PL
//!    serialization witness, checked on the executed log).
//! 4. **No leaked homes** — a sharded deployment reclaims every routing
//!    entry by shutdown even when faults failed transactions mid-flight.
//! 5. **Well-formed timelines** — in the flight-recorder trace no request
//!    carries more than one terminal event, and no terminal precedes its
//!    submission.
//!
//! Violations are returned as strings (empty = green) so the
//! `chaos_matrix` bin can print them next to the failing cell's seed —
//! `CHAOS_SEED=<seed>` reproduces the exact fault schedule.

use crate::scenario::to_session_txn;
use crate::{MatrixBackend, Scale};
use chaos::{BackendProfile, FaultPlan};
use declsched::{Operation, Protocol, ProtocolKind, SchedulerConfig, TriggerPolicy};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use txnstore::StatementKind;
use workload::scenario::{Scenario, ScenarioParams, ScenarioTxn};

/// The four adversarial scenarios the chaos matrix exercises (all four are
/// also in the general scenario registry, so the equivalence suite covers
/// them fault-free).
pub const CHAOS_SCENARIOS: [&str; 4] = [
    "drifting-hotspot",
    "deadlock-storm",
    "oltp-analytical-mix",
    "tenant-quota",
];

/// Closed-loop pipeline depth for chaos cells.  Chaos runs always drive
/// closed-loop (arrival pacing would only add nondeterministic timing on
/// top of the scripted faults).
const CHAOS_DEPTH: usize = 16;

/// Ring capacity for the per-cell flight recorder.
const TRACE_CAPACITY: usize = 1 << 16;

/// How one submitted transaction resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellOutcome {
    Committed,
    Failed,
    Shed,
}

/// One measured (scenario, backend, fault-plan) cell of the chaos matrix.
#[derive(Debug, Clone)]
pub struct ChaosCellReport {
    /// Scenario name (stable registry key).
    pub scenario: String,
    /// Deployment label (`passthrough`, `unsharded`, `sharded4`).
    pub backend: String,
    /// Whether a fault plan was injected (`false` = fault-free baseline).
    pub faulted: bool,
    /// The fault-plan seed (the stream seed for baseline cells).
    pub seed: u64,
    /// Transactions submitted.
    pub transactions: u64,
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that failed (injected faults, native deadlock victims).
    pub failed: u64,
    /// Transactions rejected by the live shed policy.
    pub shed: u64,
    /// Scripted faults that actually fired during the run.
    pub faults_fired: u64,
    /// Scripted faults whose hook was never visited often enough.
    pub faults_unfired: u64,
    /// Wall-clock seconds from first submission to last completion.
    pub wall_secs: f64,
    /// Router homes-map entries still live at shutdown (sharded only).
    pub unreclaimed_homes: u64,
    /// Oracle violations (empty = the run was provably well-behaved).
    pub violations: Vec<String>,
}

impl ChaosCellReport {
    /// CSV header.
    pub fn csv_header() -> &'static str {
        "scenario,backend,faulted,seed,transactions,committed,failed,shed,faults_fired,faults_unfired,wall_secs,unreclaimed_homes,violations"
    }

    /// CSV rendering (violation count only; the bin prints full texts).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{:.3},{},{}",
            self.scenario,
            self.backend,
            self.faulted,
            self.seed,
            self.transactions,
            self.committed,
            self.failed,
            self.shed,
            self.faults_fired,
            self.faults_unfired,
            self.wall_secs,
            self.unreclaimed_homes,
            self.violations.len()
        )
    }

    /// One JSON object (hand-rolled; the workspace builds offline without
    /// a serde dependency).
    pub fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        format!(
            "{{\"scenario\":\"{}\",\"backend\":\"{}\",\"faulted\":{},\"seed\":{},\"transactions\":{},\"committed\":{},\"failed\":{},\"shed\":{},\"faults_fired\":{},\"faults_unfired\":{},\"wall_secs\":{:.6},\"unreclaimed_homes\":{},\"violations\":[{}]}}",
            self.scenario,
            self.backend,
            self.faulted,
            self.seed,
            self.transactions,
            self.committed,
            self.failed,
            self.shed,
            self.faults_fired,
            self.faults_unfired,
            self.wall_secs,
            self.unreclaimed_homes,
            violations.join(",")
        )
    }
}

/// The chaos-plan backend profile matching a matrix deployment.
pub fn backend_profile(backend: MatrixBackend) -> BackendProfile {
    match backend {
        MatrixBackend::Passthrough => BackendProfile::Passthrough,
        MatrixBackend::Unsharded => BackendProfile::Unsharded,
        MatrixBackend::Sharded(shards) => BackendProfile::Sharded { shards },
    }
}

/// Deterministic per-cell salt so every (scenario, backend) cell draws a
/// different fault schedule from one base seed (FNV-1a over the labels).
pub fn cell_seed(base: u64, scenario: &str, backend: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in scenario.bytes().chain([b'/']).chain(backend.bytes()) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    base ^ hash
}

fn protocol_for(scenario: &dyn Scenario) -> ProtocolKind {
    if scenario.sla_aware() {
        ProtocolKind::SlaPriority
    } else {
        ProtocolKind::Ss2pl
    }
}

fn build_deployment(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    table_rows: usize,
    plan: Option<FaultPlan>,
    trace: bool,
) -> session::Scheduler {
    let mut builder = session::Scheduler::builder()
        .policy(Protocol::algebra(protocol_for(scenario)))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 64,
            },
            ..SchedulerConfig::default()
        })
        .table("bench", table_rows);
    if trace {
        builder = builder.trace(obs::TraceConfig::full(TRACE_CAPACITY));
    }
    if let Some(plan) = plan {
        builder = builder.chaos(plan);
    }
    match backend {
        MatrixBackend::Passthrough => builder.passthrough(),
        MatrixBackend::Unsharded => builder.unsharded(),
        MatrixBackend::Sharded(n) => builder.shards(n),
    }
    .build()
    .expect("deployment start cannot fail")
}

/// Drive one chaos cell: replay the scenario stream closed-loop against
/// the deployment (optionally under `plan`), classify every transaction's
/// outcome, then run the full oracle over the shutdown report.
pub fn run_chaos_cell(
    scenario: &dyn Scenario,
    backend: MatrixBackend,
    params: &ScenarioParams,
    plan: Option<FaultPlan>,
) -> ChaosCellReport {
    use std::collections::VecDeque;

    let stream = scenario.generate(params);
    let faulted = plan.is_some();
    let seed = plan.as_ref().map(|p| p.seed).unwrap_or(params.seed);
    let scheduler = build_deployment(scenario, backend, params.table_rows, plan, true);
    let injector = scheduler.chaos_injector();
    let mut session = scheduler.connect();

    let mut outcomes: Vec<Option<CellOutcome>> = vec![None; stream.len()];
    let mut window: VecDeque<(usize, session::Ticket)> = VecDeque::with_capacity(CHAOS_DEPTH);
    let settle = |outcomes: &mut Vec<Option<CellOutcome>>,
                  (index, ticket): (usize, session::Ticket)| {
        let outcome = match ticket.wait() {
            Ok(_) => CellOutcome::Committed,
            Err(declsched::SchedError::Shed { .. }) => CellOutcome::Shed,
            Err(_) => CellOutcome::Failed,
        };
        assert!(
            outcomes[index].replace(outcome).is_none(),
            "transaction resolved twice"
        );
    };
    let started = Instant::now();
    for (index, txn) in stream.iter().enumerate() {
        if window.len() >= CHAOS_DEPTH {
            let front = window.pop_front().expect("window non-empty");
            settle(&mut outcomes, front);
        }
        match session.submit(to_session_txn(txn, 0)) {
            Ok(ticket) => window.push_back((index, ticket)),
            // A killed backend refuses at the channel: still exactly-once.
            Err(_) => outcomes[index] = Some(CellOutcome::Failed),
        }
    }
    while let Some(front) = window.pop_front() {
        settle(&mut outcomes, front);
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    drop(session);
    let report = scheduler.shutdown();

    let mut violations = oracle_violations(scenario, params, &stream, &outcomes, &report);
    let unreclaimed_homes = report
        .sharded
        .as_ref()
        .map(|d| d.unreclaimed_homes)
        .unwrap_or(0);
    if unreclaimed_homes != 0 {
        violations.push(format!(
            "router leaked {unreclaimed_homes} transaction homes"
        ));
    }

    let count =
        |outcome: CellOutcome| outcomes.iter().filter(|o| **o == Some(outcome)).count() as u64;
    ChaosCellReport {
        scenario: scenario.name().to_string(),
        backend: backend.label(),
        faulted,
        seed,
        transactions: stream.len() as u64,
        committed: count(CellOutcome::Committed),
        failed: count(CellOutcome::Failed),
        shed: count(CellOutcome::Shed),
        faults_fired: injector.fired().len() as u64,
        faults_unfired: injector.unfired() as u64,
        wall_secs,
        unreclaimed_homes,
        violations,
    }
}

/// The invariant oracle: checks 1, 2, 3 and 5 of the module contract
/// (check 4, leaked homes, needs only the report and lives in
/// [`run_chaos_cell`]).  Returns one string per violation.
fn oracle_violations(
    scenario: &dyn Scenario,
    params: &ScenarioParams,
    stream: &[ScenarioTxn],
    outcomes: &[Option<CellOutcome>],
    report: &session::Report,
) -> Vec<String> {
    let mut violations = Vec::new();

    // 1. Exactly-once resolution.
    for (index, outcome) in outcomes.iter().enumerate() {
        if outcome.is_none() {
            violations.push(format!("T{} never resolved", index + 1));
        }
    }

    let committed: HashSet<u64> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| **o == Some(CellOutcome::Committed))
        .map(|(index, _)| index as u64 + 1)
        .collect();

    // 2a. Every committed statement executed exactly once.
    let mut executed: HashMap<(u64, u32), usize> = HashMap::new();
    for request in report.executed_log.iter().filter(|r| r.op.is_data()) {
        *executed.entry((request.ta, request.intra)).or_insert(0) += 1;
    }
    for ((ta, intra), count) in &executed {
        if *count > 1 && committed.contains(ta) {
            violations.push(format!(
                "committed statement T{ta}#{intra} executed {count} times"
            ));
        }
    }
    for (index, txn) in stream.iter().enumerate() {
        let ta = index as u64 + 1;
        if !committed.contains(&ta) {
            continue;
        }
        for statement in &txn.statements {
            if statement.object().is_some() && !executed.contains_key(&(ta, statement.intra)) {
                violations.push(format!(
                    "committed statement T{ta}#{} never executed",
                    statement.intra
                ));
            }
        }
    }

    // 2b. Replay the committed subset on a fresh fault-free unsharded
    // reference: everything must commit, and final row state must agree
    // outside rows written by non-committed transactions.
    let reference = build_deployment(
        scenario,
        MatrixBackend::Unsharded,
        params.table_rows,
        None,
        false,
    );
    let mut ref_session = reference.connect();
    let mut tickets = Vec::new();
    for (index, txn) in stream.iter().enumerate() {
        if committed.contains(&(index as u64 + 1)) {
            tickets.push((
                index as u64 + 1,
                ref_session
                    .submit(to_session_txn(txn, 0))
                    .expect("reference submission cannot fail"),
            ));
        }
    }
    for (ta, ticket) in tickets {
        if ticket.wait().is_err() {
            violations.push(format!("committed T{ta} failed on the reference replay"));
        }
    }
    drop(ref_session);
    let ref_report = reference.shutdown();

    let tainted: HashSet<i64> = stream
        .iter()
        .enumerate()
        .filter(|(index, _)| !committed.contains(&(*index as u64 + 1)))
        .flat_map(|(_, txn)| txn.statements.iter())
        .filter(|s| matches!(s.kind, StatementKind::Update { .. }))
        .filter_map(|s| s.object())
        .map(|o| o.0)
        .collect();
    if report.final_rows.len() != ref_report.final_rows.len() {
        violations.push(format!(
            "final row count diverged: {} vs reference {}",
            report.final_rows.len(),
            ref_report.final_rows.len()
        ));
    }
    let mut diverged = 0usize;
    for (key, (a, b)) in report
        .final_rows
        .iter()
        .zip(ref_report.final_rows.iter())
        .enumerate()
    {
        if a != b && !tainted.contains(&(key as i64)) {
            diverged += 1;
            if diverged <= 3 {
                violations.push(format!("row {key} diverged from the reference: {a} vs {b}"));
            }
        }
    }
    if diverged > 3 {
        violations.push(format!("… and {} more diverged rows", diverged - 3));
    }

    // 3. Per-object admission order: a committed transaction's read→write
    // upgrade of an object admits no other committed writer in between.
    let mut per_object: HashMap<i64, Vec<(u64, Operation)>> = HashMap::new();
    for request in report.executed_log.iter().filter(|r| r.op.is_data()) {
        if committed.contains(&request.ta) {
            per_object
                .entry(request.object)
                .or_default()
                .push((request.ta, request.op));
        }
    }
    for (object, accesses) in &per_object {
        for (position, &(ta, op)) in accesses.iter().enumerate() {
            if op != Operation::Read {
                continue;
            }
            // The upgrading write of the same transaction, if any.
            let Some(write_pos) = accesses
                .iter()
                .skip(position + 1)
                .position(|&(t, o)| t == ta && o == Operation::Write)
                .map(|offset| position + 1 + offset)
            else {
                continue;
            };
            for &(other, other_op) in &accesses[position + 1..write_pos] {
                if other != ta && other_op == Operation::Write {
                    violations.push(format!(
                        "object {object}: T{other} wrote between T{ta}'s read and its upgrade"
                    ));
                }
            }
        }
    }

    // 5. Well-formed trace timelines: at most one terminal per request,
    // and no terminal stamped before its submission.
    let mut lifecycle: HashMap<obs::ReqId, (Option<u64>, Vec<u64>)> = HashMap::new();
    for event in report.trace.events() {
        let entry = lifecycle.entry(event.req).or_default();
        match &event.kind {
            obs::EventKind::Submitted => {
                entry.0 = Some(entry.0.map_or(event.at_us, |t| t.min(event.at_us)));
            }
            kind if kind.is_terminal() => entry.1.push(event.at_us),
            _ => {}
        }
    }
    for (req, (submitted, terminals)) in &lifecycle {
        if terminals.len() > 1 {
            violations.push(format!("{req}: {} terminal events", terminals.len()));
        }
        if let (Some(submitted), Some(&terminal)) = (submitted, terminals.first()) {
            if terminal < *submitted {
                violations.push(format!("{req}: terminal precedes submission"));
            }
        }
    }

    violations
}

/// The full chaos matrix: every chaos scenario × every deployment ×
/// {fault-free, seeded fault plan}.  `base_seed` (usually from
/// `CHAOS_SEED`) salts each faulted cell's plan via [`cell_seed`].
pub fn chaos_matrix_sweep(scale: Scale, base_seed: u64) -> Vec<ChaosCellReport> {
    let params = crate::scenario_params(scale);
    let backends = [
        MatrixBackend::Passthrough,
        MatrixBackend::Unsharded,
        MatrixBackend::Sharded(4),
    ];
    let mut rows = Vec::new();
    for name in CHAOS_SCENARIOS {
        let scenario = workload::scenario::by_name(name).expect("chaos scenario is registered");
        for &backend in &backends {
            for faulted in [false, true] {
                let plan = faulted.then(|| {
                    FaultPlan::seeded(
                        cell_seed(base_seed, name, &backend.label()),
                        backend_profile(backend),
                    )
                });
                rows.push(run_chaos_cell(scenario.as_ref(), backend, &params, plan));
            }
        }
    }
    rows
}

/// Render the matrix as the `BENCH_chaos_matrix.json` document.
pub fn chaos_matrix_json(rows: &[ChaosCellReport], scale_label: &str, base_seed: u64) -> String {
    let names: Vec<String> = CHAOS_SCENARIOS
        .iter()
        .map(|name| format!("\"{name}\""))
        .collect();
    let cells: Vec<String> = rows.iter().map(ChaosCellReport::to_json).collect();
    format!(
        "{{\n  \"bench\": \"chaos_matrix\",\n  \"scale\": \"{}\",\n  \"seed\": {},\n  \"scenarios\": [{}],\n  \"cells\": [\n    {}\n  ]\n}}\n",
        scale_label,
        base_seed,
        names.join(", "),
        cells.join(",\n    ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ScenarioParams {
        ScenarioParams {
            transactions: 96,
            table_rows: 512,
            seed: 11,
        }
    }

    #[test]
    fn fault_free_cell_commits_everything_with_a_green_oracle() {
        let scenario = workload::scenario::by_name("drifting-hotspot").unwrap();
        let cell = run_chaos_cell(
            scenario.as_ref(),
            MatrixBackend::Unsharded,
            &tiny_params(),
            None,
        );
        assert!(!cell.faulted);
        assert_eq!(cell.committed, 96);
        assert_eq!(cell.failed + cell.shed, 0);
        assert_eq!(cell.violations, Vec::<String>::new());
        assert!(cell
            .to_csv()
            .starts_with("drifting-hotspot,unsharded,false"));
    }

    #[test]
    fn deadlock_storm_aborts_natively_on_passthrough_yet_stays_consistent() {
        let scenario = workload::scenario::by_name("deadlock-storm").unwrap();
        let cell = run_chaos_cell(
            scenario.as_ref(),
            MatrixBackend::Passthrough,
            &tiny_params(),
            None,
        );
        assert_eq!(cell.committed + cell.failed, 96, "exactly-once resolution");
        assert_eq!(
            cell.violations,
            Vec::<String>::new(),
            "native victims must not corrupt committed state"
        );
    }

    #[test]
    fn seeded_faults_survive_the_oracle_on_a_sharded_fleet() {
        let scenario = workload::scenario::by_name("tenant-quota").unwrap();
        let backend = MatrixBackend::Sharded(2);
        let plan = FaultPlan::seeded(
            cell_seed(7, "tenant-quota", &backend.label()),
            backend_profile(backend),
        );
        let cell = run_chaos_cell(scenario.as_ref(), backend, &tiny_params(), Some(plan));
        assert!(cell.faulted);
        assert_eq!(
            cell.committed + cell.failed + cell.shed,
            96,
            "every transaction resolves exactly once under faults"
        );
        assert_eq!(cell.violations, Vec::<String>::new());
        assert_eq!(cell.unreclaimed_homes, 0);
    }

    #[test]
    fn cell_seed_separates_cells_and_json_renders_violations() {
        let a = cell_seed(42, "deadlock-storm", "unsharded");
        let b = cell_seed(42, "deadlock-storm", "sharded4");
        assert_ne!(a, b, "cells must draw distinct fault schedules");
        assert_eq!(a, cell_seed(42, "deadlock-storm", "unsharded"));

        let cell = ChaosCellReport {
            scenario: "x".into(),
            backend: "unsharded".into(),
            faulted: true,
            seed: 9,
            transactions: 1,
            committed: 0,
            failed: 1,
            shed: 0,
            faults_fired: 2,
            faults_unfired: 0,
            wall_secs: 0.5,
            unreclaimed_homes: 0,
            violations: vec!["row 3 \"diverged\"".into()],
        };
        let json = cell.to_json();
        assert!(json.contains("\"violations\":[\"row 3 \\\"diverged\\\"\"]"));
        assert!(chaos_matrix_json(&[cell], "smoke", 42).contains("\"bench\": \"chaos_matrix\""));
    }
}
