//! Continuous performance gate: diff freshly generated bench JSON against a
//! committed baseline and fail beyond a relative tolerance.
//!
//! The bench binaries write `BENCH_*.json` documents whose `"series"` array
//! holds one flat object per measured cell.  The gate re-runs a bench at
//! the same scale as a committed baseline, matches cells by their identity
//! key (backend/mode/history size for `rule_scaling`, backend/mode/depth
//! for `backend_matrix`), and compares the cell's headline metric.  Any
//! cell whose relative deviation exceeds the tolerance — in **either**
//! direction, so unexplained speedups update the baseline instead of
//! silently drifting — fails the gate, as does an empty comparable
//! intersection (a renamed field or scale mismatch must not vacuously
//! pass).
//!
//! The workspace builds offline without serde, so parsing is a small
//! self-contained JSON reader ([`parse_json`]) that handles exactly the
//! grammar the bench writers emit.
//!
//! Used by the `perf_gate` bin, wired into CI after the bench smoke runs:
//!
//! ```text
//! cargo run --release -p bench --bin rule_scaling -- --smoke
//! cargo run --release -p bench --bin perf_gate -- \
//!     rule_scaling BENCH_rule_scaling.json baselines/BENCH_rule_scaling.smoke.json
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value; only the shapes the bench writers emit.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; the bench writers only emit finite decimals.
    Num(f64),
    /// A string (no escape sequences beyond `\"` and `\\` are produced).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps error output deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number in this value, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A display form used to build cell identity keys: strings bare,
    /// numbers without a trailing `.0` when integral.
    fn key_text(&self) -> String {
        match self {
            Json::Str(s) => s.clone(),
            Json::Num(n) if n.fract() == 0.0 => format!("{}", *n as i64),
            Json::Num(n) => format!("{n}"),
            Json::Bool(b) => format!("{b}"),
            Json::Null => "null".into(),
            _ => "<composite>".into(),
        }
    }
}

/// Parse a complete JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let escaped = *bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match escaped {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                }
            }
            _ => out.push(b as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Which bench document the gate understands, with its cell identity and
/// headline metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// `BENCH_rule_scaling.json`: cells keyed by (backend, mode,
    /// history_rows), compared on `avg_round_micros`.
    RuleScaling,
    /// `BENCH_backend_matrix.json`: cells keyed by (backend, mode, depth),
    /// compared on `throughput_tps`.
    BackendMatrix,
}

impl GateKind {
    /// Parse the bin's `<kind>` argument.
    pub fn from_arg(arg: &str) -> Option<GateKind> {
        match arg {
            "rule_scaling" => Some(GateKind::RuleScaling),
            "backend_matrix" => Some(GateKind::BackendMatrix),
            _ => None,
        }
    }

    /// Fields whose values identify a cell across runs.
    pub fn key_fields(self) -> &'static [&'static str] {
        match self {
            GateKind::RuleScaling => &["backend", "mode", "history_rows"],
            GateKind::BackendMatrix => &["backend", "mode", "depth"],
        }
    }

    /// The metric the gate compares.
    pub fn metric(self) -> &'static str {
        match self {
            GateKind::RuleScaling => "avg_round_micros",
            GateKind::BackendMatrix => "throughput_tps",
        }
    }
}

/// Default relative tolerance when neither `--tolerance` nor
/// `PERF_GATE_TOLERANCE` is given: ±25 %, wide enough for shared CI
/// runners, tight enough to catch a lost pooling or interning path.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One compared cell.
#[derive(Debug, Clone)]
pub struct CellDiff {
    /// The cell's identity, e.g. `algebra/incremental/16000`.
    pub key: String,
    /// Baseline metric value.
    pub baseline: f64,
    /// Freshly measured metric value.
    pub fresh: f64,
    /// `(fresh - baseline) / baseline`; positive means slower for
    /// `rule_scaling` and faster for `backend_matrix`.
    pub deviation: f64,
}

impl CellDiff {
    /// Whether this cell stays within `tolerance`.
    pub fn within(&self, tolerance: f64) -> bool {
        self.deviation.abs() <= tolerance
    }
}

impl fmt::Display for CellDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: baseline {:.2} fresh {:.2} ({:+.1}%)",
            self.key,
            self.baseline,
            self.fresh,
            self.deviation * 100.0
        )
    }
}

/// Extract `series` cells as `(identity key, metric value)` pairs.
fn series_cells(doc: &Json, kind: GateKind) -> Result<BTreeMap<String, f64>, String> {
    let series = match doc.get("series") {
        Some(Json::Arr(items)) => items,
        _ => return Err("document has no `series` array".into()),
    };
    let mut cells = BTreeMap::new();
    for (index, cell) in series.iter().enumerate() {
        let mut key_parts = Vec::new();
        for field in kind.key_fields() {
            let part = cell
                .get(field)
                .ok_or_else(|| format!("series[{index}] lacks key field `{field}`"))?;
            key_parts.push(part.key_text());
        }
        let metric = cell
            .get(kind.metric())
            .and_then(Json::as_num)
            .ok_or_else(|| format!("series[{index}] lacks numeric `{}`", kind.metric()))?;
        cells.insert(key_parts.join("/"), metric);
    }
    Ok(cells)
}

/// Compare fresh output against a baseline document.
///
/// Returns every matched cell's diff; errs on unparseable input or an
/// empty comparable intersection.  Cells present in only one document are
/// skipped (a baseline regenerated at a different sweep still gates the
/// shared cells) — but at least one cell must match.
pub fn compare(kind: GateKind, fresh: &str, baseline: &str) -> Result<Vec<CellDiff>, String> {
    let fresh_cells = series_cells(&parse_json(fresh).map_err(|e| format!("fresh: {e}"))?, kind)?;
    let base_cells = series_cells(
        &parse_json(baseline).map_err(|e| format!("baseline: {e}"))?,
        kind,
    )?;
    let mut diffs = Vec::new();
    for (key, base) in &base_cells {
        if let Some(fresh_value) = fresh_cells.get(key) {
            if *base <= 0.0 {
                return Err(format!("baseline cell {key} is non-positive ({base})"));
            }
            diffs.push(CellDiff {
                key: key.clone(),
                baseline: *base,
                fresh: *fresh_value,
                deviation: (fresh_value - base) / base,
            });
        }
    }
    if diffs.is_empty() {
        return Err(format!(
            "no comparable cells: baseline has [{}], fresh has [{}]",
            base_cells.keys().cloned().collect::<Vec<_>>().join(", "),
            fresh_cells.keys().cloned().collect::<Vec<_>>().join(", ")
        ));
    }
    Ok(diffs)
}

/// Resolve the gate tolerance: `--tolerance <x>` argument, then the
/// `PERF_GATE_TOLERANCE` environment variable, then [`DEFAULT_TOLERANCE`].
pub fn tolerance_from(args: &[String]) -> Result<f64, String> {
    let mut tolerance = None;
    if let Some(index) = args.iter().position(|a| a == "--tolerance") {
        let raw = args
            .get(index + 1)
            .ok_or_else(|| "--tolerance needs a value".to_string())?;
        tolerance = Some(raw.clone());
    } else if let Ok(raw) = std::env::var("PERF_GATE_TOLERANCE") {
        tolerance = Some(raw);
    }
    match tolerance {
        None => Ok(DEFAULT_TOLERANCE),
        Some(raw) => {
            let value: f64 = raw.parse().map_err(|_| format!("bad tolerance `{raw}`"))?;
            if value > 0.0 && value.is_finite() {
                Ok(value)
            } else {
                Err(format!("tolerance must be a positive number, got `{raw}`"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(cells: &[(&str, &str, u64, f64)]) -> String {
        let series: Vec<String> = cells
            .iter()
            .map(|(backend, mode, rows, metric)| {
                format!(
                    "{{\"backend\":\"{backend}\",\"mode\":\"{mode}\",\"history_rows\":{rows},\"avg_round_micros\":{metric}}}"
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"rule_scaling\",\"series\":[{}]}}",
            series.join(",")
        )
    }

    #[test]
    fn parses_the_committed_document_shape() {
        let text = doc(&[("algebra", "incremental", 16000, 38.5)]);
        let parsed = parse_json(&text).unwrap();
        let cells = series_cells(&parsed, GateKind::RuleScaling).unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells["algebra/incremental/16000"], 38.5);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond_in_both_directions() {
        let baseline = doc(&[("algebra", "incremental", 0, 100.0)]);
        let ok = doc(&[("algebra", "incremental", 0, 120.0)]);
        let slow = doc(&[("algebra", "incremental", 0, 130.0)]);
        let fast = doc(&[("algebra", "incremental", 0, 70.0)]);
        let diffs = compare(GateKind::RuleScaling, &ok, &baseline).unwrap();
        assert!(diffs.iter().all(|d| d.within(DEFAULT_TOLERANCE)));
        let diffs = compare(GateKind::RuleScaling, &slow, &baseline).unwrap();
        assert!(diffs.iter().any(|d| !d.within(DEFAULT_TOLERANCE)));
        let diffs = compare(GateKind::RuleScaling, &fast, &baseline).unwrap();
        assert!(diffs.iter().any(|d| !d.within(DEFAULT_TOLERANCE)));
    }

    #[test]
    fn empty_intersection_is_an_error_not_a_pass() {
        let baseline = doc(&[("algebra", "incremental", 512, 50.0)]);
        let fresh = doc(&[("algebra", "incremental", 16000, 50.0)]);
        let err = compare(GateKind::RuleScaling, &fresh, &baseline).unwrap_err();
        assert!(err.contains("no comparable cells"));
    }

    #[test]
    fn tolerance_resolution_prefers_the_flag() {
        let args = vec!["--tolerance".to_string(), "0.5".to_string()];
        assert_eq!(tolerance_from(&args).unwrap(), 0.5);
        assert_eq!(
            tolerance_from(&[]).unwrap_or(DEFAULT_TOLERANCE),
            DEFAULT_TOLERANCE
        );
        assert!(tolerance_from(&["--tolerance".into(), "-1".into()]).is_err());
        assert!(tolerance_from(&["--tolerance".into(), "nan".into()]).is_err());
    }

    #[test]
    fn backend_matrix_cells_key_on_depth() {
        let text = "{\"series\":[{\"backend\":\"sharded4\",\"mode\":\"pipelined\",\"depth\":32,\"throughput_tps\":900.0}]}";
        let parsed = parse_json(text).unwrap();
        let cells = series_cells(&parsed, GateKind::BackendMatrix).unwrap();
        assert_eq!(cells["sharded4/pipelined/32"], 900.0);
    }
}
