//! Shared experiment runners behind the reproduction binaries and the
//! Criterion benches.
//!
//! Every table and figure of the paper's evaluation maps onto one function
//! here (see DESIGN.md §5 for the experiment index):
//!
//! * Figure 2 / Section 4.2.2 → [`fig2_series`], [`sec42_rows`]
//! * Section 4.3.2 (declarative overhead) → [`sec43_experiment`]
//! * Section 4.4 (crossover discussion) → [`crossover_table`]
//! * Table 1 (related approaches) / Table 2 (request schema) →
//!   [`table1_related`], [`table1_protocols`], [`table2_schema`]
//!
//! Beyond the paper, the scaling and scenario experiments:
//!
//! * shard scaling → [`shard_scaling_sweep`] (`BENCH_shard_scaling.json`)
//! * backend matrix → [`backend_matrix_sweep`] (`BENCH_backend_matrix.json`)
//! * workload scenarios → [`scenario_matrix_sweep`], [`saturation_series`]
//!   (`BENCH_scenario_matrix.json`), with latencies binned by
//!   [`hist::LatencyHistogram`]
//! * adaptive control plane → [`skew_run`], [`overload_cell`]
//!   (`BENCH_rebalance_overload.json`): hot-object re-homing vs static
//!   placement, and SLA-aware shedding past saturation
//! * chaos matrix → [`chaos_matrix_sweep`] (`BENCH_chaos_matrix.json`):
//!   adversarial scenarios under seeded fault plans, every cell checked
//!   by the cross-backend invariant oracle

#![warn(missing_docs)]

use declsched::{
    DeclarativeScheduler, Protocol, ProtocolKind, Request, SchedulerConfig, TriggerPolicy,
};
use simkit::{fig2_point, CostModel, Fig2Point, MultiUserConfig};
use std::time::Instant;
use workload::OltpSpec;

pub mod alloc_count;
pub mod chaos_matrix;
pub mod hist;
pub mod obs_overhead;
pub mod perf_gate;
pub mod rebalance;
pub mod rule_scaling;
pub mod scenario;

pub use chaos_matrix::{
    backend_profile, cell_seed, chaos_matrix_json, chaos_matrix_sweep, run_chaos_cell,
    ChaosCellReport, CHAOS_SCENARIOS,
};
pub use declsched::protocol::Backend;
pub use hist::LatencyHistogram;
pub use obs_overhead::{
    obs_overhead_json, obs_overhead_run, obs_overhead_sweep, overhead_loss, paired_median_loss,
    LossEstimate, ObsOverheadReport, ObsOverheadRow, TraceMode, OVERHEAD_GATE,
};
pub use rebalance::{
    overload_cell, rebalance_overload_json, rebalance_workload, skew_run, OverloadRun, SkewRun,
    TierCell,
};
pub use rule_scaling::{
    rule_scaling_cell, rule_scaling_json, rule_scaling_speedups, rule_scaling_sweep,
    RuleScalingRow, RuleScalingSpec, RuleScalingSpeedup,
};
pub use scenario::{
    saturation_series, scenario_matrix_json, scenario_matrix_run, scenario_matrix_sweep,
    scenario_params, SaturationPoint, ScenarioMatrixRow,
};

/// Scaled-down workload dimensions used by default so the full sweep runs in
/// seconds; pass `--paper` to the binaries for the full-size workload.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Transactions per client in the multi-user simulation.
    pub transactions_per_client: usize,
    /// Rows of the benchmark table.
    pub table_rows: usize,
}

impl Scale {
    /// Quick scale: completes the whole sweep in a few seconds.
    pub fn quick() -> Self {
        Scale {
            transactions_per_client: 5,
            table_rows: 20_000,
        }
    }

    /// The paper's scale (100 000 rows; 50 transactions per client keep the
    /// run bounded while well past the throughput knee).
    pub fn paper() -> Self {
        Scale {
            transactions_per_client: 50,
            table_rows: 100_000,
        }
    }

    /// Smoke scale: tiny parameters for CI, so the bench harness is
    /// exercised end-to-end on every push without costing minutes.
    pub fn smoke() -> Self {
        Scale {
            transactions_per_client: 1,
            table_rows: 2_048,
        }
    }

    /// Pick a scale from command-line arguments (`--paper` selects the full
    /// size, `--smoke` the CI-tiny one).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            Scale::paper()
        } else if std::env::args().any(|a| a == "--smoke") {
            Scale::smoke()
        } else {
            Scale::quick()
        }
    }

    /// The label matching [`Scale::from_args`], for output documents.
    pub fn label_from_args() -> &'static str {
        if std::env::args().any(|a| a == "--paper") {
            "paper"
        } else if std::env::args().any(|a| a == "--smoke") {
            "smoke"
        } else {
            "quick"
        }
    }
}

/// Build the paper's workload spec for a client count at the given scale.
pub fn workload_spec(clients: usize, scale: Scale) -> OltpSpec {
    let mut spec = OltpSpec::paper(clients);
    spec.transactions_per_client = scale.transactions_per_client;
    spec.table_rows = scale.table_rows;
    spec
}

/// Figure 2: sweep the client count and compute the multi-user vs single-user
/// execution-time ratio of the native lock-based scheduler.
pub fn fig2_series(client_counts: &[usize], scale: Scale) -> Vec<Fig2Point> {
    let config = MultiUserConfig {
        cost: CostModel::paper_calibrated(),
        time_budget: None,
    };
    client_counts
        .iter()
        .map(|&clients| fig2_point(&workload_spec(clients, scale), &config))
        .collect()
}

/// Section 4.2.2: the two operating points the paper quotes, derived from the
/// same simulation as Figure 2.
pub fn sec42_rows(scale: Scale) -> Vec<Fig2Point> {
    fig2_series(&[300, 500], scale)
}

/// One row of the Section 4.3.2 experiment.
#[derive(Debug, Clone)]
pub struct Sec43Row {
    /// Concurrently active clients (= pending requests in the round).
    pub clients: usize,
    /// Which rule back-end was measured.
    pub backend: &'static str,
    /// Rows in the history relation during the measurement.
    pub history_rows: usize,
    /// Wall-clock microseconds for the full scheduling round (drain, insert,
    /// rule, delete, history insert) — the paper's "total execution time".
    pub round_micros: u64,
    /// Wall-clock microseconds of the rule evaluation alone.
    pub rule_micros: u64,
    /// Requests qualified by the round (the paper observes ≈ clients / 2).
    pub qualified: usize,
    /// Scheduler runs needed to schedule `total_statements` statements at
    /// this qualification rate.
    pub scheduler_runs: u64,
    /// Estimated total declarative scheduling overhead in seconds for the
    /// whole workload (`scheduler_runs × round_micros`).
    pub total_overhead_secs: f64,
}

impl Sec43Row {
    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{:.1}",
            self.clients,
            self.backend,
            self.history_rows,
            self.round_micros,
            self.rule_micros,
            self.qualified,
            self.scheduler_runs,
            self.total_overhead_secs
        )
    }

    /// CSV header.
    pub fn csv_header() -> &'static str {
        "clients,backend,history_rows,round_micros,rule_micros,qualified,scheduler_runs,total_overhead_secs"
    }
}

/// Build the Section 4.3 scenario for `clients` concurrently active
/// transactions: each has executed half of its statements (which sit in the
/// history, uncommitted — "filled with half of the requests of the
/// corresponding workload, without requests of committed transactions") and
/// has exactly one request pending, mirroring one interactive request per
/// connected client.
pub fn sec43_scheduler(
    clients: usize,
    backend: Backend,
    scale: Scale,
) -> (DeclarativeScheduler, u64) {
    let spec = workload_spec(clients, scale);
    let generated = spec.generate();
    let mut scheduler = DeclarativeScheduler::new(
        Protocol::new(ProtocolKind::Ss2pl, backend),
        SchedulerConfig {
            trigger: TriggerPolicy::Always,
            prune_history: false,
            enforce_intra_order: false,
            // The paper's experiment measures the declarative evaluation
            // itself; the incremental engine would skip exactly that work.
            incremental: false,
            ..SchedulerConfig::default()
        },
    );

    // History: the first half of every client's first transaction — already
    // executed, not yet committed (exactly the paper's pre-fill).
    let mut preload = Vec::new();
    for client in &generated {
        let txn = &client.transactions[0];
        let half = txn.statements.len() / 2;
        for stmt in &txn.statements[..half] {
            preload.push(Request::from_statement(0, stmt));
        }
    }
    scheduler
        .preload_history(&preload)
        .expect("history preload cannot fail");

    // Pending: the next statement of every client.
    for client in &generated {
        let txn = &client.transactions[0];
        let half = txn.statements.len() / 2;
        scheduler.submit(Request::from_statement(0, &txn.statements[half]), 1);
    }

    // Total statements the full workload would push through the scheduler —
    // used to extrapolate the total overhead exactly as the paper does
    // (total statements / qualified per round = scheduler runs).
    let total_statements = spec.total_statements() as u64;
    (scheduler, total_statements)
}

/// Section 4.3.2: measure one declarative scheduling round at each client
/// count on the given back-end.
pub fn sec43_experiment(client_counts: &[usize], backend: Backend, scale: Scale) -> Vec<Sec43Row> {
    client_counts
        .iter()
        .map(|&clients| {
            let (mut scheduler, total_statements) = sec43_scheduler(clients, backend, scale);
            let history_rows = scheduler.history_len();
            let started = Instant::now();
            let batch = scheduler
                .run_round(2)
                .expect("measurement round cannot fail");
            let elapsed = started.elapsed().as_micros() as u64;
            let qualified = batch.len().max(1);
            let scheduler_runs = total_statements / qualified as u64;
            let round_micros = elapsed.max(batch.round_micros);
            Sec43Row {
                clients,
                backend: match backend {
                    Backend::Algebra => "algebra",
                    Backend::Datalog => "datalog",
                },
                history_rows,
                round_micros,
                rule_micros: batch.rule_eval_micros,
                qualified: batch.len(),
                scheduler_runs,
                total_overhead_secs: scheduler_runs as f64 * round_micros as f64 / 1e6,
            }
        })
        .collect()
}

/// One row of the crossover table (Section 4.4): native scheduler overhead
/// vs extrapolated declarative scheduling overhead at the same client count.
#[derive(Debug, Clone)]
pub struct CrossoverRow {
    /// Client count.
    pub clients: usize,
    /// Native scheduler overhead (multi-user minus single-user virtual
    /// seconds, normalised to a 240 s window like the paper's 46 s / 225 s).
    pub native_overhead_secs: f64,
    /// Extrapolated declarative scheduling overhead in (real) seconds.
    pub declarative_overhead_secs: f64,
    /// Which approach wins at this client count.
    pub winner: &'static str,
}

/// Section 4.4: combine the Figure 2 native overhead with the Section 4.3
/// declarative overhead to locate the crossover.
pub fn crossover_table(client_counts: &[usize], scale: Scale) -> Vec<CrossoverRow> {
    let fig2 = fig2_series(client_counts, scale);
    let sec43 = sec43_experiment(client_counts, Backend::Algebra, scale);
    fig2.iter()
        .zip(sec43.iter())
        .map(|(f, s)| {
            let native = f.overhead_secs_per_240s();
            let declarative = s.total_overhead_secs;
            CrossoverRow {
                clients: f.clients,
                native_overhead_secs: native,
                declarative_overhead_secs: declarative,
                winner: if declarative < native {
                    "declarative"
                } else {
                    "native"
                },
            }
        })
        .collect()
}

/// One measured configuration of the shard-scaling experiment.
#[derive(Debug, Clone)]
pub struct ShardScalingRow {
    /// Shard count of this run.
    pub shards: usize,
    /// Fraction of transactions spanning two shards (escalation traffic).
    pub cross_shard_fraction: f64,
    /// Transactions executed.
    pub transactions: u64,
    /// Fleet completion time in seconds: the busiest shard's processing
    /// time (the critical path — shard workers run on their own cores in a
    /// real deployment, so the busiest shard bounds when the fleet
    /// finishes).  Measured from the real execution, not simulated; on a
    /// multi-core host it converges to `elapsed_secs`, on the one-core CI
    /// box it is the only number that measures the *deployment* rather
    /// than the machine's timesharing.
    pub wall_secs: f64,
    /// Raw harness-elapsed seconds (submit → drain) on whatever machine
    /// ran the sweep — every thread timeshared onto the available cores.
    pub elapsed_secs: f64,
    /// Requests scheduled per second across the fleet (statements, not
    /// transactions; includes escalated requests executed through the lane).
    pub requests_per_sec: f64,
    /// Committed transactions per second — the headline throughput figure
    /// and the basis of `speedup_vs_one_shard`.
    pub throughput_tps: f64,
    /// Escalations taken by the two-phase lane.
    pub escalations: u64,
    /// Escalation retry loops (lock-drain waits).
    pub escalation_retries: u64,
    /// Peak requests concurrently in flight fleet-wide (submitted and not
    /// yet completed) — true occupancy, not a count of requests ever
    /// enqueued, so a serial submitter reports its real pipeline depth.
    pub peak_pending: usize,
    /// Commit throughput relative to the 1-shard run at the same
    /// cross-shard fraction (1.0 for the 1-shard run itself).
    pub speedup_vs_one_shard: f64,
}

impl ShardScalingRow {
    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{:.2},{},{:.4},{:.4},{:.0},{:.0},{},{},{},{:.2}",
            self.shards,
            self.cross_shard_fraction,
            self.transactions,
            self.wall_secs,
            self.elapsed_secs,
            self.requests_per_sec,
            self.throughput_tps,
            self.escalations,
            self.escalation_retries,
            self.peak_pending,
            self.speedup_vs_one_shard
        )
    }

    /// CSV header.
    pub fn csv_header() -> &'static str {
        "shards,cross_shard_fraction,transactions,wall_secs,elapsed_secs,requests_per_sec,throughput_tps,escalations,escalation_retries,peak_pending,speedup_vs_one_shard"
    }

    /// One JSON object (hand-rolled; the workspace builds offline without a
    /// serde dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"shards\":{},\"cross_shard_fraction\":{:.3},\"transactions\":{},\"wall_secs\":{:.6},\"elapsed_secs\":{:.6},\"requests_per_sec\":{:.1},\"throughput_tps\":{:.1},\"escalations\":{},\"escalation_retries\":{},\"peak_pending\":{},\"speedup_vs_one_shard\":{:.3}}}",
            self.shards,
            self.cross_shard_fraction,
            self.transactions,
            self.wall_secs,
            self.elapsed_secs,
            self.requests_per_sec,
            self.throughput_tps,
            self.escalations,
            self.escalation_retries,
            self.peak_pending,
            self.speedup_vs_one_shard
        )
    }
}

/// Workload dimensions of the shard-scaling experiment at a given scale.
pub fn shard_scaling_workload(scale: Scale) -> (usize, usize) {
    // (transactions, table_rows): enough pending work that rule evaluation
    // dominates, scaled off the same knob as the other experiments.
    let transactions = scale.transactions_per_client.max(1) * 256;
    (transactions.min(4_096), scale.table_rows)
}

/// Number of concurrent submitting sessions driving the fleet in
/// [`shard_scaling_run`].  A single session serializes submissions at the
/// per-call cost (~7µs each — about 140k tps regardless of shard count),
/// which would measure the *client*, not the fleet; eight concurrent
/// submitters keep every shard's intake saturated so the experiment
/// measures fleet capacity.
pub const SHARD_SCALING_SUBMITTERS: usize = 8;

/// Run the sharded scheduler over a uniform single-object workload with the
/// given shard count and cross-shard fraction, and measure it.
///
/// Driven entirely through the unified `session` façade: the workload is
/// split across [`SHARD_SCALING_SUBMITTERS`] concurrent sessions, each
/// submitting its slice pipelined up front (the saturated-arrivals regime:
/// the pending relation is full, so per-round rule evaluation dominates)
/// and then draining its own tickets.  The run is timed from first
/// submission until the last commit drains.
pub fn shard_scaling_run(
    shards: usize,
    cross_shard_fraction: f64,
    scale: Scale,
) -> ShardScalingRow {
    use declsched::shard_of;
    use workload::ShardedSpec;

    let (transactions, table_rows) = shard_scaling_workload(scale);
    let spec = ShardedSpec::single_object(shards, transactions, table_rows)
        .with_cross_shard_fraction(cross_shard_fraction);
    let generated = spec.generate(|object| shard_of(object, shards));

    let scheduler = session::Scheduler::builder()
        .policy(Protocol::algebra(ProtocolKind::Ss2pl))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 64,
            },
            ..SchedulerConfig::default()
        })
        .table("bench", table_rows)
        .shards(shards)
        .build()
        .expect("fleet start cannot fail");

    let submitters = SHARD_SCALING_SUBMITTERS.min(generated.len().max(1));
    let chunk = generated.len().div_ceil(submitters.max(1));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for slice in generated.chunks(chunk.max(1)) {
            let scheduler = &scheduler;
            scope.spawn(move || {
                let mut client = scheduler.connect();
                let mut tickets = Vec::with_capacity(slice.len());
                for txn in slice {
                    tickets.push(
                        client
                            .submit(session::Txn::from_statements(&txn.statements))
                            .expect("submission cannot fail while the fleet is up"),
                    );
                }
                for ticket in tickets {
                    ticket.wait().expect("workload transactions always commit");
                }
            });
        }
    });
    let wall = started.elapsed();
    let report = scheduler.shutdown();
    let detail = report.sharded.as_ref().expect("sharded deployment");
    if std::env::var_os("SHARD_SCALING_DEBUG").is_some() {
        eprintln!(
            "# dbg shards={} frac={:.2}: rounds={} round_us={} rule_us={} sched={} deferred_rr={} executed={}",
            shards,
            cross_shard_fraction,
            report.scheduler.rounds,
            report.scheduler.round_micros,
            report.scheduler.rule_eval_micros,
            report.scheduler.requests_scheduled,
            report.scheduler.deferred_request_rounds,
            report.dispatch.executed,
        );
    }

    let elapsed_secs = wall.as_secs_f64().max(1e-9);
    // The fleet's completion time is its critical path: the busiest
    // shard's measured processing time.  Workers run on their own cores in
    // a real deployment, so elapsed time on a machine with fewer cores
    // than shards (the one-core CI box being the extreme) measures
    // timesharing, not sharding; the critical path is measured from the
    // same real execution and converges to elapsed time when every worker
    // has its own core.  Fall back to elapsed time if the critical path
    // was not observed (it never exceeds elapsed).
    let critical_secs = detail.reports.iter().map(|r| r.busy_us).max().unwrap_or(0) as f64 / 1e6;
    let wall_secs = if critical_secs > 0.0 {
        critical_secs.min(elapsed_secs)
    } else {
        elapsed_secs
    };
    ShardScalingRow {
        shards,
        cross_shard_fraction,
        transactions: report.transactions,
        wall_secs,
        elapsed_secs,
        requests_per_sec: (report.scheduler.requests_scheduled
            + detail.escalation.escalated_requests) as f64
            / wall_secs,
        throughput_tps: report.dispatch.commits as f64 / wall_secs,
        escalations: detail.escalation.escalations,
        escalation_retries: detail.escalation.retries,
        peak_pending: detail.peak_pending,
        speedup_vs_one_shard: 1.0,
    }
}

/// Sweep shard counts × cross-shard fractions and fill in speedups relative
/// to the 1-shard run at the same fraction.
pub fn shard_scaling_sweep(
    shard_counts: &[usize],
    fractions: &[f64],
    scale: Scale,
) -> Vec<ShardScalingRow> {
    let mut rows = Vec::with_capacity(shard_counts.len() * fractions.len());
    for &fraction in fractions {
        let mut fraction_rows: Vec<ShardScalingRow> = shard_counts
            .iter()
            .map(|&shards| shard_scaling_run(shards, fraction, scale))
            .collect();
        // The baseline is the 1-shard run; without one, fall back to the
        // smallest shard count measured (then the field is "vs the smallest
        // configuration", still a well-defined ratio).
        let baseline = fraction_rows
            .iter()
            .find(|r| r.shards == 1)
            .or_else(|| fraction_rows.iter().min_by_key(|r| r.shards))
            .map(|r| r.throughput_tps)
            .unwrap_or(0.0);
        for row in &mut fraction_rows {
            row.speedup_vs_one_shard = if baseline > 0.0 {
                row.throughput_tps / baseline
            } else {
                1.0
            };
        }
        rows.append(&mut fraction_rows);
    }
    rows
}

/// Render a sweep as the `BENCH_shard_scaling.json` document.
pub fn shard_scaling_json(rows: &[ShardScalingRow], scale_label: &str) -> String {
    let series: Vec<String> = rows.iter().map(ShardScalingRow::to_json).collect();
    format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"scale\": \"{}\",\n  \"series\": [\n    {}\n  ]\n}}\n",
        scale_label,
        series.join(",\n    ")
    )
}

/// One deployment of the backend-matrix experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixBackend {
    /// Non-scheduling passthrough (native server locking).
    Passthrough,
    /// The paper's single-scheduler middleware.
    Unsharded,
    /// The shard router fleet with the given shard count.
    Sharded(usize),
}

impl MatrixBackend {
    /// Stable label for output documents.
    pub fn label(self) -> String {
        match self {
            MatrixBackend::Passthrough => "passthrough".to_string(),
            MatrixBackend::Unsharded => "unsharded".to_string(),
            MatrixBackend::Sharded(n) => format!("sharded{n}"),
        }
    }
}

/// One measured configuration of the backend-matrix experiment.
#[derive(Debug, Clone)]
pub struct BackendMatrixRow {
    /// Deployment label (`passthrough`, `unsharded`, `sharded4`, …).
    pub backend: String,
    /// Submission mode: `blocking` (depth 1) or `pipelined`.
    pub mode: &'static str,
    /// Maximum transactions in flight per session.
    pub depth: usize,
    /// Transactions executed.
    pub transactions: u64,
    /// Wall-clock seconds from first submission to last completion.
    pub wall_secs: f64,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Executed requests (data + terminals) per second.
    pub requests_per_sec: f64,
    /// Median per-transaction latency in milliseconds (submit → complete).
    pub p50_ms: f64,
    /// 99th-percentile per-transaction latency in milliseconds.
    pub p99_ms: f64,
}

impl BackendMatrixRow {
    /// CSV header.
    pub fn csv_header() -> &'static str {
        "backend,mode,depth,transactions,wall_secs,throughput_tps,requests_per_sec,p50_ms,p99_ms"
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{:.3},{:.0},{:.0},{:.3},{:.3}",
            self.backend,
            self.mode,
            self.depth,
            self.transactions,
            self.wall_secs,
            self.throughput_tps,
            self.requests_per_sec,
            self.p50_ms,
            self.p99_ms
        )
    }

    /// One JSON object (hand-rolled; the workspace builds offline without a
    /// serde dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"mode\":\"{}\",\"depth\":{},\"transactions\":{},\"wall_secs\":{:.6},\"throughput_tps\":{:.1},\"requests_per_sec\":{:.1},\"p50_ms\":{:.4},\"p99_ms\":{:.4}}}",
            self.backend,
            self.mode,
            self.depth,
            self.transactions,
            self.wall_secs,
            self.throughput_tps,
            self.requests_per_sec,
            self.p50_ms,
            self.p99_ms
        )
    }
}

pub(crate) fn percentile_ms(sorted: &[std::time::Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// Run the uniform single-object workload against one deployment through
/// the unified `session` façade, keeping at most `depth` transactions in
/// flight (closed loop), and measure throughput and per-transaction
/// latency.  `depth == 1` is the blocking one-at-a-time baseline.
pub fn backend_matrix_run(backend: MatrixBackend, depth: usize, scale: Scale) -> BackendMatrixRow {
    use std::collections::VecDeque;
    use workload::ShardedSpec;

    let depth = depth.max(1);
    let (transactions, table_rows) = shard_scaling_workload(scale);
    // One workload for every deployment: with no cross-shard traffic the
    // placement layout is irrelevant to generation, so a fixed single-shard
    // layout yields the *identical* transaction stream whatever backend is
    // measured — the apples-to-apples property of the matrix.
    let spec = ShardedSpec::single_object(1, transactions, table_rows);
    let generated = spec.generate(|object| declsched::shard_of(object, 1));

    let builder = session::Scheduler::builder()
        .policy(Protocol::algebra(ProtocolKind::Ss2pl))
        .scheduler_config(SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 64,
            },
            ..SchedulerConfig::default()
        })
        .table("bench", table_rows);
    let scheduler = match backend {
        MatrixBackend::Passthrough => builder.passthrough(),
        MatrixBackend::Unsharded => builder.unsharded(),
        MatrixBackend::Sharded(n) => builder.shards(n),
    }
    .build()
    .expect("deployment start cannot fail");
    let mut client = scheduler.connect();

    let started = Instant::now();
    let mut window: VecDeque<(session::Ticket, Instant)> = VecDeque::with_capacity(depth);
    let mut latencies = Vec::with_capacity(generated.len());
    for txn in &generated {
        if window.len() >= depth {
            let (ticket, submitted) = window.pop_front().expect("window non-empty");
            ticket.wait().expect("workload transactions always commit");
            latencies.push(submitted.elapsed());
        }
        window.push_back((
            client
                .submit(session::Txn::from_statements(&txn.statements))
                .expect("submission cannot fail while the deployment is up"),
            Instant::now(),
        ));
    }
    while let Some((ticket, submitted)) = window.pop_front() {
        ticket.wait().expect("workload transactions always commit");
        latencies.push(submitted.elapsed());
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let report = scheduler.shutdown();

    latencies.sort_unstable();
    BackendMatrixRow {
        backend: backend.label(),
        mode: if depth == 1 { "blocking" } else { "pipelined" },
        depth,
        transactions: report.transactions,
        wall_secs,
        throughput_tps: report.dispatch.commits as f64 / wall_secs,
        requests_per_sec: report.executed_log.len() as f64 / wall_secs,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
    }
}

/// The full backend matrix: every deployment in blocking and pipelined
/// mode, from one workload definition — the apples-to-apples comparison
/// the unified API exists for.
pub fn backend_matrix_sweep(depth: usize, shards: usize, scale: Scale) -> Vec<BackendMatrixRow> {
    let backends = [
        MatrixBackend::Passthrough,
        MatrixBackend::Unsharded,
        MatrixBackend::Sharded(shards),
    ];
    let mut rows = Vec::with_capacity(backends.len() * 2);
    for backend in backends {
        rows.push(backend_matrix_run(backend, 1, scale));
        rows.push(backend_matrix_run(backend, depth, scale));
    }
    rows
}

/// Render a sweep as the `BENCH_backend_matrix.json` document.
pub fn backend_matrix_json(rows: &[BackendMatrixRow], scale_label: &str) -> String {
    let series: Vec<String> = rows.iter().map(BackendMatrixRow::to_json).collect();
    format!(
        "{{\n  \"bench\": \"backend_matrix\",\n  \"scale\": \"{}\",\n  \"series\": [\n    {}\n  ]\n}}\n",
        scale_label,
        series.join(",\n    ")
    )
}

/// The related-approaches rows of the paper's Table 1 (verbatim from the
/// paper; qualitative, so reproduced as data).
pub fn table1_related() -> Vec<(&'static str, [bool; 5])> {
    vec![
        ("EQMS", [true, true, false, false, false]),
        ("Ganymed", [true, false, false, false, true]),
        ("WLMS", [true, true, false, false, false]),
        ("C-JDBC", [true, false, false, false, true]),
        ("GP", [true, false, false, false, false]),
        ("WebQoS", [true, true, false, true, false]),
        ("QShuffler", [true, false, false, false, false]),
    ]
}

/// The same feature axes for the protocols this system actually implements —
/// the "our approach" row of Table 1, broken out per protocol.
pub fn table1_protocols() -> Vec<(String, [bool; 5])> {
    ProtocolKind::all()
        .iter()
        .map(|&kind| {
            let p = Protocol::algebra(kind);
            (
                p.name().to_string(),
                [
                    p.features.performance,
                    p.features.qos,
                    p.features.declarative,
                    p.features.flexible,
                    p.features.high_scalability,
                ],
            )
        })
        .collect()
}

/// Table 2: the request relation schema (column name, type).
pub fn table2_schema() -> Vec<(String, String)> {
    Request::schema()
        .fields()
        .iter()
        .map(|f| (f.name.clone(), f.data_type.to_string()))
        .collect()
}

/// Render a `+`/`-` feature matrix row.
pub fn render_matrix_row(name: &str, features: &[bool; 5]) -> String {
    let sym = |b: bool| if b { '+' } else { '-' };
    format!(
        "{name:<12} {}    {}    {}    {}    {}",
        sym(features[0]),
        sym(features[1]),
        sym(features[2]),
        sym(features[3]),
        sym(features[4])
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_ratio_increases_with_client_count() {
        let series = fig2_series(&[8, 64], Scale::quick());
        assert_eq!(series.len(), 2);
        assert!(series[0].ratio_percent() >= 100.0);
        assert!(series[1].ratio_percent() >= series[0].ratio_percent());
    }

    #[test]
    fn sec43_round_qualifies_most_single_pending_requests() {
        let rows = sec43_experiment(&[32], Backend::Algebra, Scale::quick());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.clients, 32);
        assert!(row.qualified > 0 && row.qualified <= 32);
        assert!(row.history_rows > 0);
        assert!(row.scheduler_runs > 0);
        assert!(row.round_micros >= row.rule_micros);
    }

    #[test]
    fn sec43_backends_qualify_identically() {
        let a = sec43_experiment(&[24], Backend::Algebra, Scale::quick());
        let d = sec43_experiment(&[24], Backend::Datalog, Scale::quick());
        assert_eq!(a[0].qualified, d[0].qualified);
        assert_eq!(a[0].history_rows, d[0].history_rows);
    }

    #[test]
    fn table1_and_table2_shapes() {
        assert_eq!(table1_related().len(), 7);
        assert!(table1_protocols().len() >= 7);
        // No related approach is declarative; all of ours are.
        assert!(table1_related().iter().all(|(_, f)| !f[2]));
        assert!(table1_protocols().iter().all(|(_, f)| f[2]));
        let schema = table2_schema();
        assert_eq!(schema.len(), 5);
        assert_eq!(schema[0].0, "id");
        let row = render_matrix_row("EQMS", &table1_related()[0].1);
        assert!(row.starts_with("EQMS"));
        assert!(row.contains('+'));
    }

    #[test]
    fn shard_scaling_run_executes_and_reports() {
        let tiny = Scale {
            transactions_per_client: 1,
            table_rows: 2_048,
        };
        let rows = shard_scaling_sweep(&[1, 2], &[0.0, 0.25], tiny);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.transactions, 256);
            assert!(row.wall_secs > 0.0);
            assert!(row.throughput_tps > 0.0);
            if row.cross_shard_fraction == 0.0 || row.shards == 1 {
                assert_eq!(row.escalations, 0, "{row:?}");
            } else {
                assert_eq!(row.escalations, 64);
            }
            assert!(row.to_json().contains("\"shards\""));
        }
        // Baselines carry speedup 1.0 by construction.
        assert!(rows
            .iter()
            .filter(|r| r.shards == 1)
            .all(|r| (r.speedup_vs_one_shard - 1.0).abs() < f64::EPSILON));
        let json = shard_scaling_json(&rows, "tiny");
        assert!(json.contains("\"bench\": \"shard_scaling\""));
        assert!(json.matches("{\"shards\"").count() == 4);
    }

    #[test]
    fn backend_matrix_pipelining_beats_blocking() {
        let tiny = Scale::smoke();
        let blocking = backend_matrix_run(MatrixBackend::Unsharded, 1, tiny);
        let pipelined = backend_matrix_run(MatrixBackend::Unsharded, 24, tiny);
        assert_eq!(blocking.transactions, 256);
        assert_eq!(pipelined.transactions, 256);
        assert_eq!(blocking.mode, "blocking");
        assert_eq!(pipelined.mode, "pipelined");
        assert!(
            pipelined.throughput_tps > blocking.throughput_tps,
            "pipelined ({:.0} tps) must beat blocking ({:.0} tps)",
            pipelined.throughput_tps,
            blocking.throughput_tps
        );
        assert!(blocking.p99_ms >= blocking.p50_ms);
        let json = backend_matrix_json(&[blocking, pipelined], "smoke");
        assert!(json.contains("\"bench\": \"backend_matrix\""));
        assert_eq!(json.matches("{\"backend\"").count(), 2);
    }

    #[test]
    fn backend_matrix_runs_on_every_deployment() {
        let tiny = Scale::smoke();
        for backend in [MatrixBackend::Passthrough, MatrixBackend::Sharded(2)] {
            let row = backend_matrix_run(backend, 16, tiny);
            assert_eq!(row.transactions, 256, "{}", row.backend);
            assert!(row.throughput_tps > 0.0);
            assert!(row.to_csv().starts_with(&row.backend));
        }
    }

    #[test]
    fn crossover_produces_one_row_per_client_count() {
        let rows = crossover_table(&[8, 32], Scale::quick());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.native_overhead_secs >= 0.0);
            assert!(r.declarative_overhead_secs > 0.0);
            assert!(r.winner == "declarative" || r.winner == "native");
        }
    }
}
