//! A small fixed-bucket latency histogram.
//!
//! Latency distributions under saturation are heavy-tailed, so benches must
//! report percentiles — averages hide collapse entirely.  This histogram
//! uses geometrically spaced buckets (constant *relative* resolution of
//! ~15 % from 1 µs to 100 s), needs no allocation per sample and merges
//! cheaply, which is all the scenario matrix requires.  Exact minimum,
//! maximum and mean are tracked on the side.

/// Geometric growth factor between adjacent bucket bounds.
const GROWTH: f64 = 1.15;
/// Lower bound of the first bucket, microseconds.
const MIN_US: f64 = 1.0;
/// Everything at or above this lands in the overflow bucket, microseconds.
const MAX_US: f64 = 1e8;

/// A latency histogram over fixed, geometrically spaced buckets.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// Bucket upper bounds in microseconds, ascending; the last entry is
    /// the overflow bucket's bound (`MAX_US`).
    bounds_us: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
    /// Samples at or beyond [`MAX_US`]: they land in the last bucket, where
    /// the bound no longer describes them.  Kept as an explicit count so
    /// saturation is visible instead of silently flattening the tail.
    overflow: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let mut bounds_us = Vec::new();
        let mut bound = MIN_US;
        while bound < MAX_US {
            bounds_us.push(bound.round() as u64);
            bound *= GROWTH;
        }
        bounds_us.push(MAX_US as u64);
        let buckets = bounds_us.len();
        LatencyHistogram {
            bounds_us,
            counts: vec![0; buckets],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            overflow: 0,
        }
    }

    /// Record one latency sample, in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let index = match self.bounds_us.binary_search(&us) {
            Ok(i) | Err(i) => i.min(self.bounds_us.len() - 1),
        };
        self.counts[index] += 1;
        self.count += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        if us >= MAX_US as u64 {
            self.overflow += 1;
        }
    }

    /// Record a [`std::time::Duration`] sample.
    pub fn record(&mut self, latency: std::time::Duration) {
        self.record_us(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.bounds_us, other.bounds_us);
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        self.overflow += other.overflow;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that saturated the histogram's range (≥ 100 s): they sit in
    /// the last bucket with only [`LatencyHistogram::max_ms`] describing
    /// them, so any nonzero value here means the bucketed quantiles
    /// understate the tail.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Exact mean of the recorded samples, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64 / 1e3
        }
    }

    /// Exact maximum, in milliseconds.
    pub fn max_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max_us as f64 / 1e3
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds: the upper bound of
    /// the bucket holding the target sample, clamped to the exact observed
    /// extremes so single-bucket distributions report exactly.
    ///
    /// An empty histogram has no quantiles and returns `None` — fabricating
    /// a number from bucket bounds (or the `target ≥ 1` clamp) would let a
    /// run that completed nothing report a plausible-looking p99.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                if index == self.counts.len() - 1 {
                    // Overflow bucket: its nominal bound says nothing, the
                    // observed maximum does.
                    return Some(self.max_us);
                }
                return Some(self.bounds_us[index].clamp(self.min_us, self.max_us));
            }
        }
        Some(self.max_us)
    }

    /// Median latency in milliseconds (`None` with no samples).
    pub fn p50_ms(&self) -> Option<f64> {
        self.quantile_us(0.50).map(|us| us as f64 / 1e3)
    }

    /// 99th-percentile latency in milliseconds (`None` with no samples).
    pub fn p99_ms(&self) -> Option<f64> {
        self.quantile_us(0.99).map(|us| us as f64 / 1e3)
    }

    /// 99.9th-percentile latency in milliseconds (`None` with no samples).
    pub fn p999_ms(&self) -> Option<f64> {
        self.quantile_us(0.999).map(|us| us as f64 / 1e3)
    }

    /// The non-empty buckets as `(upper_bound_us, count)` pairs — the
    /// machine-readable form for benchmark JSON.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.bounds_us
            .iter()
            .zip(&self.counts)
            .filter(|(_, &count)| count > 0)
            .map(|(&bound, &count)| (bound, count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.p50_ms(), None);
        assert_eq!(h.p99_ms(), None);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantiles_track_a_uniform_ramp_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100_000u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 100_000);
        for (q, exact) in [(0.50, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let estimate = h.quantile_us(q).unwrap() as f64;
            let error = (estimate - exact).abs() / exact;
            assert!(
                error < GROWTH - 1.0 + 0.01,
                "q={q}: estimate {estimate} vs exact {exact} (error {error})"
            );
        }
        // Exact side stats.
        assert!((h.mean_ms() - 50.0005).abs() < 1e-6);
        assert!((h.max_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn single_value_distributions_report_exactly() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1_000 {
            h.record_us(777);
        }
        // The clamp to observed extremes pins every quantile to the value.
        assert_eq!(h.quantile_us(0.5), Some(777));
        assert_eq!(h.quantile_us(0.999), Some(777));
        assert_eq!(h.quantile_us(1.0), Some(777));
    }

    #[test]
    fn overflow_and_underflow_land_in_the_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record_us(0);
        h.record(Duration::from_secs(10_000)); // 1e10 us, beyond MAX_US
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.0), Some(1)); // the first bucket's bound
        assert_eq!(h.quantile_us(1.0), Some(10_000_000_000)); // clamped to observed max
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].0, MIN_US as u64);
        assert_eq!(buckets[1].0, MAX_US as u64);
        // Saturation is counted, not silent: one sample hit the overflow
        // bucket, the in-range one did not.
        assert_eq!(h.overflow(), 1);
        h.record_us(MAX_US as u64); // the boundary itself saturates
        assert_eq!(h.overflow(), 2);
        let mut merged = LatencyHistogram::new();
        merged.merge(&h);
        assert_eq!(merged.overflow(), 2, "merge must carry the overflow count");
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for us in (1..5_000u64).step_by(7) {
            a.record_us(us);
            whole.record_us(us);
        }
        for us in (1..9_000u64).step_by(11) {
            b.record_us(us);
            whole.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile_us(q), whole.quantile_us(q), "q={q}");
        }
        assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
        assert!((a.mean_ms() - whole.mean_ms()).abs() < 1e-12);
    }

    #[test]
    fn percentile_helpers_are_ordered() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            for _ in 0..100 {
                h.record_us(us);
            }
        }
        assert!(h.p50_ms() <= h.p99_ms());
        assert!(h.p99_ms() <= h.p999_ms());
        assert!(h.p999_ms().unwrap() <= h.max_ms());
    }
}
