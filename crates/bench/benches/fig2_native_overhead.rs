//! Criterion bench for the Figure 2 simulation: wall-clock cost of the
//! multi-user native-scheduler simulation at increasing client counts (the
//! virtual-time results themselves are printed by the `fig2_native_overhead`
//! binary; this bench tracks that the simulator stays fast enough to sweep).

use bench::{workload_spec, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simkit::{run_multi_user, MultiUserConfig};

fn bench_multi_user_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_multi_user_sim");
    group.sample_size(10);
    let config = MultiUserConfig::default();
    for &clients in &[10usize, 50, 100] {
        let spec = workload_spec(clients, Scale::quick());
        group.bench_with_input(BenchmarkId::from_parameter(clients), &spec, |b, spec| {
            b.iter(|| run_multi_user(spec, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_user_sim);
criterion_main!(benches);
