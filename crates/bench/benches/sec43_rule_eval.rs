//! Criterion bench for the Section 4.3.2 experiment: the cost of one
//! declarative SS2PL scheduling round as the number of concurrently active
//! clients grows, on both rule back-ends.

use bench::{sec43_scheduler, Backend, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_rule_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec43_rule_round");
    group.sample_size(10);
    for &clients in &[50usize, 150, 300, 500] {
        for backend in [Backend::Algebra, Backend::Datalog] {
            let label = match backend {
                Backend::Algebra => "algebra",
                Backend::Datalog => "datalog",
            };
            group.bench_with_input(BenchmarkId::new(label, clients), &clients, |b, &clients| {
                b.iter_batched(
                    || sec43_scheduler(clients, backend, Scale::quick()).0,
                    |mut scheduler| scheduler.run_round(2).expect("round cannot fail"),
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rule_round);
criterion_main!(benches);
