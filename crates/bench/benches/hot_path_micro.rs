//! Micro-benchmarks for the allocation-free hot path: inline tuple
//! construction, interner lookups, and a full incremental delta round.
//!
//! These are the three primitives the rule-scaling numbers decompose into;
//! keeping them on a CI smoke run means a regression shows up at the
//! primitive that caused it, not just in the end-to-end curve.

use bench::{rule_scaling_cell, Backend, RuleScalingSpec};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use relalg::{Symbol, Tuple, Value};

fn bench_tuple_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tuple_build");
    // Arity 5 matches the request schema (ID, TA, INTRATA, op, object);
    // arity 10 spills past the inline capacity onto the heap.
    for &arity in &[5usize, 10] {
        let values: Vec<Value> = (0..arity as i64).map(Value::Int).collect();
        group.bench_with_input(
            BenchmarkId::new("from_slice", arity),
            &values,
            |b, values| b.iter(|| Tuple::from_slice(black_box(values))),
        );
    }
    // The join path: concatenate two request-arity rows in one pass.
    let left: Vec<Value> = (0..5).map(Value::Int).collect();
    let right: Vec<Value> = (5..10).map(Value::Int).collect();
    group.bench_function("from_slices_join", |b| {
        b.iter(|| Tuple::from_slices(black_box(&left), black_box(&right)))
    });
    group.finish();
}

fn bench_intern_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("intern");
    // Steady state: the literal is already interned (protocol literals are
    // interned at construction), so this measures the read-mostly hit path.
    let premium = Symbol::intern("premium");
    group.bench_function("intern_hit", |b| {
        b.iter(|| Symbol::intern(black_box("premium")))
    });
    group.bench_function("resolve", |b| b.iter(|| black_box(premium).as_str()));
    group.finish();
}

fn bench_delta_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_round");
    group.sample_size(10);
    // One full incremental cell at a mid-size history: measures the pooled
    // round loop end to end (submit, qualify, dispatch, drain).
    // Criterion already iterates, so the cell itself runs once per iter.
    let spec = RuleScalingSpec {
        history_sizes: vec![2_048],
        rounds: 10,
        txns_per_round: 8,
        repeats: 1,
    };
    for backend in [Backend::Algebra, Backend::Datalog] {
        let label = match backend {
            Backend::Algebra => "algebra",
            Backend::Datalog => "datalog",
        };
        group.bench_function(BenchmarkId::new(label, 2_048usize), |b| {
            b.iter(|| rule_scaling_cell(backend, true, 2_048, &spec))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tuple_build,
    bench_intern_lookup,
    bench_delta_round
);
criterion_main!(benches);
