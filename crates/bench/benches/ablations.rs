//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * **A1 — rule back-end**: relational-algebra plan vs Datalog program vs a
//!   SchedLang-compiled protocol, on identical scheduling rounds.
//! * **A2 — trigger policy**: time vs fill-level vs hybrid triggers at a
//!   fixed arrival pattern (how many rounds / how much rule work each incurs).
//! * **A3 — batch size**: scheduler invocation granularity.
//! * **A4 — protocol cost**: what each shipped protocol's rule costs to
//!   evaluate on the same pending/history state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use declsched::{
    DeclarativeScheduler, Protocol, ProtocolKind, Request, SchedulerConfig, SchedulingPolicy,
    TriggerPolicy,
};
use rand_like::SplitMix;

/// A tiny deterministic generator so the bench does not depend on `rand`
/// (keeps bench inputs identical across runs and machines).
mod rand_like {
    /// SplitMix64 — enough randomness for spreading objects.
    pub struct SplitMix(pub u64);
    impl SplitMix {
        pub fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

fn scheduler_with_pending(
    policy: impl Into<SchedulingPolicy>,
    clients: usize,
    objects: u64,
) -> DeclarativeScheduler {
    let mut scheduler = DeclarativeScheduler::new(
        policy,
        SchedulerConfig {
            trigger: TriggerPolicy::Always,
            prune_history: false,
            enforce_intra_order: false,
            // The ablations time the declarative back-ends themselves.
            incremental: false,
            ..SchedulerConfig::default()
        },
    );
    let mut rng = SplitMix(7);
    // History: half the clients hold a write lock somewhere.
    let mut history = Vec::new();
    for ta in 0..clients as u64 {
        if ta % 2 == 0 {
            history.push(Request::write(
                0,
                1_000 + ta,
                0,
                (rng.next() % objects) as i64,
            ));
        }
    }
    scheduler.preload_history(&history).unwrap();
    // Pending: one request per client.
    for ta in 0..clients as u64 {
        let object = (rng.next() % objects) as i64;
        let request = if ta % 3 == 0 {
            Request::write(0, ta + 1, 0, object)
        } else {
            Request::read(0, ta + 1, 0, object)
        };
        scheduler.submit(request, 0);
    }
    scheduler
}

fn ablation_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backend");
    group.sample_size(10);
    let clients = 200;
    let schedlang_protocol = schedlang::compile_protocol(schedlang::stdlib::SS2PL).unwrap();
    let variants: Vec<(&str, Protocol)> = vec![
        ("algebra", Protocol::algebra(ProtocolKind::Ss2pl)),
        ("datalog", Protocol::datalog(ProtocolKind::Ss2pl)),
        ("schedlang", schedlang_protocol),
    ];
    for (label, protocol) in variants {
        group.bench_function(BenchmarkId::new("ss2pl", label), |b| {
            b.iter_batched(
                || scheduler_with_pending(protocol.clone(), clients, 500),
                |mut s| s.run_round(1).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn ablation_trigger(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_trigger");
    group.sample_size(10);
    let triggers = [
        ("time_5ms", TriggerPolicy::TimeElapsed { interval_ms: 5 }),
        ("fill_64", TriggerPolicy::FillLevel { threshold: 64 }),
        (
            "hybrid",
            TriggerPolicy::Hybrid {
                interval_ms: 5,
                threshold: 64,
            },
        ),
        ("always", TriggerPolicy::Always),
    ];
    for (label, trigger) in triggers {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut scheduler = DeclarativeScheduler::new(
                    Protocol::algebra(ProtocolKind::Ss2pl),
                    SchedulerConfig {
                        trigger,
                        ..SchedulerConfig::default()
                    },
                );
                // 512 requests arriving over 64 virtual milliseconds.
                let mut rng = SplitMix(3);
                let mut scheduled = 0usize;
                for i in 0..512u64 {
                    let now = i / 8;
                    scheduler.submit(Request::read(0, i + 1, 0, (rng.next() % 1000) as i64), now);
                    if let Some(batch) = scheduler.tick(now).unwrap() {
                        scheduled += batch.len();
                    }
                }
                // Drain the tail.
                while scheduler.pending() > 0 || scheduler.queued() > 0 {
                    scheduled += scheduler.run_round(100).unwrap().len();
                }
                scheduled
            });
        });
    }
    group.finish();
}

fn ablation_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_batch_size");
    group.sample_size(10);
    for &batch in &[32usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_batched(
                || scheduler_with_pending(Protocol::algebra(ProtocolKind::Ss2pl), batch, 2_000),
                |mut s| s.run_round(1).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn ablation_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_protocols");
    group.sample_size(10);
    for &kind in ProtocolKind::all() {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let mut s = scheduler_with_pending(Protocol::algebra(kind), 200, 500);
                    if kind == ProtocolKind::ConsistencyRationing {
                        s.register_aux_relation(declsched::protocol::object_class_table(&[]));
                    }
                    s
                },
                |mut s| s.run_round(1).unwrap(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_backend,
    ablation_trigger,
    ablation_batch_size,
    ablation_protocols
);
criterion_main!(benches);
