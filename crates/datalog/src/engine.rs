//! Fact storage: relations and the database of relations.

use crate::error::{DatalogError, DatalogResult};
use relalg::{Table, Value};
use std::collections::{HashMap, HashSet};

/// A set of ground tuples for one predicate.
///
/// Tuples are stored both in insertion order (for deterministic output) and
/// in a hash set (for O(1) duplicate detection during fixpoint evaluation).
#[derive(Debug, Clone, Default)]
pub struct Relation {
    rows: Vec<Vec<Value>>,
    index: HashSet<Vec<Value>>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, row: Vec<Value>) -> bool {
        if self.index.contains(&row) {
            return false;
        }
        self.index.insert(row.clone());
        self.rows.push(row);
        true
    }

    /// Membership test.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.index.contains(row)
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Consume the relation, returning its tuples in insertion order.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Remove every tuple.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.index.clear();
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.rows.iter()
    }
}

/// A collection of named relations: the extensional database (facts supplied
/// by the caller) plus, after evaluation, the derived intensional relations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: HashMap<String, Relation>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Add a single fact.
    pub fn add_fact(&mut self, predicate: impl Into<String>, row: Vec<Value>) -> bool {
        self.relations
            .entry(predicate.into())
            .or_default()
            .insert(row)
    }

    /// Add many facts for one predicate.
    pub fn add_facts(
        &mut self,
        predicate: impl Into<String>,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) {
        let rel = self.relations.entry(predicate.into()).or_default();
        for row in rows {
            rel.insert(row);
        }
    }

    /// Ensure a (possibly empty) relation exists for a predicate.  Useful so
    /// that rules referring to an empty EDB relation evaluate rather than
    /// erroring on a missing name.
    pub fn declare(&mut self, predicate: impl Into<String>) {
        self.relations.entry(predicate.into()).or_default();
    }

    /// Load every row of a [`relalg::Table`] as facts for `predicate`.
    /// This is how the scheduler moves its pending/history relations into the
    /// Datalog engine each round.
    pub fn load_table(&mut self, predicate: impl Into<String>, table: &Table) {
        let rel = self.relations.entry(predicate.into()).or_default();
        for row in table.rows() {
            rel.insert(row.values().to_vec());
        }
    }

    /// Look up a relation.
    pub fn relation(&self, predicate: &str) -> Option<&Relation> {
        self.relations.get(predicate)
    }

    /// Look up a relation, returning an empty one if absent.
    pub fn relation_or_empty(&self, predicate: &str) -> Relation {
        self.relations.get(predicate).cloned().unwrap_or_default()
    }

    /// Mutable access to a relation, creating it if absent.
    pub fn relation_mut(&mut self, predicate: &str) -> &mut Relation {
        self.relations.entry(predicate.to_string()).or_default()
    }

    /// Remove every fact of a relation, keeping it declared.
    pub fn clear_relation(&mut self, predicate: &str) {
        if let Some(rel) = self.relations.get_mut(predicate) {
            rel.clear();
        }
    }

    /// Names of all stored relations (unsorted).
    pub fn predicates(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// Verify that every fact for `predicate` has the given arity.
    pub fn check_arity(&self, predicate: &str, expected: usize) -> DatalogResult<()> {
        if let Some(rel) = self.relations.get(predicate) {
            for row in rel.rows() {
                if row.len() != expected {
                    return Err(DatalogError::FactArity {
                        predicate: predicate.to_string(),
                        expected,
                        got: row.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of facts across all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::{Field, Schema};

    #[test]
    fn relation_deduplicates_and_preserves_order() {
        let mut r = Relation::new();
        assert!(r.insert(vec![Value::Int(1)]));
        assert!(r.insert(vec![Value::Int(2)]));
        assert!(!r.insert(vec![Value::Int(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Value::Int(2)]));
        assert_eq!(r.rows()[0], vec![Value::Int(1)]);
    }

    #[test]
    fn database_fact_management() {
        let mut db = Database::new();
        db.add_fact("edge", vec![1.into(), 2.into()]);
        db.add_facts(
            "edge",
            vec![vec![2.into(), 3.into()], vec![1.into(), 2.into()]],
        );
        db.declare("empty");
        assert_eq!(db.relation("edge").unwrap().len(), 2);
        assert!(db.relation("empty").unwrap().is_empty());
        assert!(db.relation("missing").is_none());
        assert_eq!(db.total_facts(), 2);
    }

    #[test]
    fn load_table_moves_rows_into_relation() {
        let schema = Schema::new(vec![Field::int("ta"), Field::str("op")]);
        let mut t = Table::new("requests", schema);
        t.push(relalg::tuple![1, "r"]).unwrap();
        t.push(relalg::tuple![2, "w"]).unwrap();
        let mut db = Database::new();
        db.load_table("pending", &t);
        assert_eq!(db.relation("pending").unwrap().len(), 2);
    }

    #[test]
    fn arity_check() {
        let mut db = Database::new();
        db.add_fact("p", vec![1.into()]);
        assert!(db.check_arity("p", 1).is_ok());
        assert!(db.check_arity("p", 2).is_err());
        assert!(db.check_arity("absent", 3).is_ok());
    }
}
