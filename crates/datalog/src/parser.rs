//! Text syntax for Datalog programs.
//!
//! Grammar (informally):
//!
//! ```text
//! program   := (rule | comment)*
//! rule      := atom ( ":-" body )? "."
//! body      := item ("," item)*
//! item      := "!" atom | atom | term cmp term
//! atom      := ident "(" term ("," term)* ")"
//! term      := VARIABLE | NUMBER | STRING | lower_ident
//! cmp       := "=" | "!=" | "<" | "<=" | ">" | ">="
//! comment   := "%" ... end of line     (also "#" and "//")
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` are variables;
//! lowercase identifiers are string constants (Prolog-style atoms); numbers
//! and double-quoted strings are constants.

use crate::ast::{Atom, BodyItem, CompareOp, Program, Rule, Term};
use crate::error::{DatalogError, DatalogResult};
use relalg::Value;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

/// Parse a program from text.
pub fn parse_program(src: &str) -> DatalogResult<Program> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        column: 1,
    };
    let mut rules = Vec::new();
    loop {
        p.skip_ws_and_comments();
        if p.at_end() {
            break;
        }
        rules.push(p.parse_rule()?);
    }
    // Safety check here so callers get errors at parse time rather than at
    // evaluation time.
    for rule in &rules {
        if !rule.is_safe() {
            return Err(DatalogError::UnsafeRule {
                rule: rule.to_string(),
            });
        }
    }
    Ok(Program::new(rules))
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') | Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn expect(&mut self, s: &str) -> DatalogResult<()> {
        self.skip_ws_and_comments();
        for &b in s.as_bytes() {
            if self.peek() != Some(b) {
                return Err(self.error(format!("expected `{s}`")));
            }
            self.bump();
        }
        Ok(())
    }

    fn try_consume(&mut self, s: &str) -> bool {
        self.skip_ws_and_comments();
        let bytes = s.as_bytes();
        if self.src.len() - self.pos < bytes.len() {
            return false;
        }
        if &self.src[self.pos..self.pos + bytes.len()] == bytes {
            for _ in 0..bytes.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn parse_rule(&mut self) -> DatalogResult<Rule> {
        let head = self.parse_atom()?;
        self.skip_ws_and_comments();
        let body = if self.try_consume(":-") {
            let mut items = vec![self.parse_body_item()?];
            while self.try_consume(",") {
                items.push(self.parse_body_item()?);
            }
            items
        } else {
            Vec::new()
        };
        self.expect(".")?;
        Ok(Rule::new(head, body))
    }

    fn parse_body_item(&mut self) -> DatalogResult<BodyItem> {
        self.skip_ws_and_comments();
        // Negated atom: `!pred(...)` or `not pred(...)`.
        if self.peek() == Some(b'!') && self.src.get(self.pos + 1) != Some(&b'=') {
            self.bump();
            let atom = self.parse_atom()?;
            return Ok(BodyItem::Negative(atom));
        }
        if self.lookahead_keyword("not") {
            self.try_consume("not");
            let atom = self.parse_atom()?;
            return Ok(BodyItem::Negative(atom));
        }
        // Either an atom or a comparison; decide by looking for `(` after an
        // identifier.
        let start = (self.pos, self.line, self.column);
        if let Ok(term) = self.parse_term() {
            self.skip_ws_and_comments();
            if let Some(op) = self.try_parse_compare_op() {
                let right = self.parse_term()?;
                return Ok(BodyItem::Compare {
                    op,
                    left: term,
                    right,
                });
            }
            // Not a comparison: rewind and parse as an atom.
            self.pos = start.0;
            self.line = start.1;
            self.column = start.2;
        }
        let atom = self.parse_atom()?;
        Ok(BodyItem::Positive(atom))
    }

    fn lookahead_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws_and_comments();
        let bytes = kw.as_bytes();
        if self.src.len() - self.pos < bytes.len() + 1 {
            return false;
        }
        &self.src[self.pos..self.pos + bytes.len()] == bytes
            && self.src[self.pos + bytes.len()].is_ascii_whitespace()
    }

    fn try_parse_compare_op(&mut self) -> Option<CompareOp> {
        for (text, op) in [
            ("!=", CompareOp::Neq),
            ("<=", CompareOp::Le),
            (">=", CompareOp::Ge),
            ("<", CompareOp::Lt),
            (">", CompareOp::Gt),
            ("=", CompareOp::Eq),
        ] {
            if self.try_consume(text) {
                return Some(op);
            }
        }
        None
    }

    fn parse_atom(&mut self) -> DatalogResult<Atom> {
        self.skip_ws_and_comments();
        let name = self.parse_identifier()?;
        if name
            .chars()
            .next()
            .map(|c| c.is_uppercase())
            .unwrap_or(false)
        {
            return Err(self.error("predicate names must start with a lowercase letter"));
        }
        self.expect("(")?;
        let mut terms = vec![self.parse_term()?];
        while self.try_consume(",") {
            terms.push(self.parse_term()?);
        }
        self.expect(")")?;
        Ok(Atom::new(name, terms))
    }

    fn parse_term(&mut self) -> DatalogResult<Term> {
        self.skip_ws_and_comments();
        match self.peek() {
            Some(b'"') => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(c) => s.push(c as char),
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Ok(Term::Const(Value::str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let mut text = String::new();
                if c == b'-' {
                    text.push('-');
                    self.bump();
                }
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c as char);
                        self.bump();
                    } else if c == b'.'
                        && self
                            .src
                            .get(self.pos + 1)
                            .map(|d| d.is_ascii_digit())
                            .unwrap_or(false)
                    {
                        is_float = true;
                        text.push('.');
                        self.bump();
                    } else {
                        break;
                    }
                }
                if text == "-" {
                    return Err(self.error("expected digits after `-`"));
                }
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| self.error(format!("invalid float `{text}`")))?;
                    Ok(Term::Const(Value::Float(v)))
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| self.error(format!("invalid integer `{text}`")))?;
                    Ok(Term::Const(Value::Int(v)))
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.parse_identifier()?;
                let first = name.chars().next().unwrap_or('_');
                if first.is_uppercase() || first == '_' {
                    Ok(Term::Var(name))
                } else {
                    // Prolog-style atom constant.
                    Ok(Term::Const(Value::str(name)))
                }
            }
            _ => Err(self.error("expected a term (variable, number, string or atom)")),
        }
    }

    fn parse_identifier(&mut self) -> DatalogResult<String> {
        self.skip_ws_and_comments();
        let mut name = String::new();
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {}
            _ => return Err(self.error("expected an identifier")),
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                name.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts_rules_and_comments() {
        let p = parse_program(
            r#"
            % transitive closure
            edge(1, 2).
            edge(2, 3).   # another comment
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).  // recursive step
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert!(p.rules[0].is_fact());
        assert_eq!(p.rules[2].head.predicate, "reach");
    }

    #[test]
    fn parses_negation_both_syntaxes() {
        let p = parse_program(
            r#"
            free(O) :- object(O), !locked(O).
            free2(O) :- object(O), not locked(O).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules[0].negative_deps(), vec!["locked"]);
        assert_eq!(p.rules[1].negative_deps(), vec!["locked"]);
    }

    #[test]
    fn parses_comparisons_and_constants() {
        let p = parse_program(
            r#"
            conflict(T1, T2) :- op(T1, O, "w"), op(T2, O, Kind), T1 != T2, Kind = "w".
            big(X) :- val(X), X >= 10.
            neg(X) :- val(X), X < -3.
            frac(X) :- val(X), X > 2.5.
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        let body = &p.rules[0].body;
        assert!(matches!(
            body[2],
            BodyItem::Compare {
                op: CompareOp::Neq,
                ..
            }
        ));
        // lowercase identifier as atom constant
        let p2 = parse_program("class(T, premium) :- ta(T).").unwrap();
        match &p2.rules[0].head.terms[1] {
            Term::Const(v) => assert_eq!(v.as_str(), Some("premium")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unsafe_rules_at_parse_time() {
        let err = parse_program("bad(X) :- other(Y).").unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeRule { .. }));
        let err = parse_program("bad(X) :- p(X), !q(Z).").unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeRule { .. }));
    }

    #[test]
    fn reports_positions_for_syntax_errors() {
        let err = parse_program("p(X) :- q(X)").unwrap_err(); // missing period
        match err {
            DatalogError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_program("p(").is_err());
        assert!(parse_program("P(x).").is_err()); // uppercase predicate
        assert!(parse_program(r#"p("unterminated)."#).is_err());
    }

    #[test]
    fn underscore_variables_are_variables() {
        let p = parse_program("head(X) :- pair(X, _Ignored).").unwrap();
        match &p.rules[0].body[0] {
            BodyItem::Positive(a) => assert!(a.terms[1].is_var()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_parse_round_trip() {
        let src = r#"qualified(T, I) :- pending(Id, T, I, Op, O), wlocked(O, T2), T != T2."#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2);
    }
}
