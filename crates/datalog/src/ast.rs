//! Abstract syntax of Datalog programs.

use relalg::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term: either a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Variable, conventionally starting with an uppercase letter.
    Var(String),
    /// Constant value.
    Const(Value),
}

impl Term {
    /// Variable constructor.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Constant constructor.
    pub fn constant(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Is this a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Variable name if this is a variable.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            Term::Var(n) => Some(n),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "\"{s}\""),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom: a predicate applied to terms, e.g. `pending(Id, Ta, Op, Obj)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Predicate (relation) name.
    pub predicate: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(predicate: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Names of all variables appearing in the atom.
    pub fn variables(&self) -> BTreeSet<&str> {
        self.terms.iter().filter_map(|t| t.var_name()).collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators usable as built-in constraints in rule bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Equality.
    Eq,
    /// Inequality.
    Neq,
    /// Less-than.
    Lt,
    /// Less-than-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-than-or-equal.
    Ge,
}

impl CompareOp {
    /// Apply the comparison to two constants.  Returns `false` when the
    /// values are incomparable (mirrors SQL semantics: such bindings are
    /// filtered out).
    pub fn apply(self, a: &Value, b: &Value) -> bool {
        match a.sql_cmp(b) {
            None => false,
            Some(ord) => match self {
                CompareOp::Eq => ord == std::cmp::Ordering::Equal,
                CompareOp::Neq => ord != std::cmp::Ordering::Equal,
                CompareOp::Lt => ord == std::cmp::Ordering::Less,
                CompareOp::Le => ord != std::cmp::Ordering::Greater,
                CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                CompareOp::Ge => ord != std::cmp::Ordering::Less,
            },
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Neq => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One item in a rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyItem {
    /// A positive atom: bindings must satisfy it.
    Positive(Atom),
    /// A negated atom: bindings must not satisfy it (stratified negation).
    Negative(Atom),
    /// A built-in comparison constraint over already-bound terms.
    Compare {
        /// Operator.
        op: CompareOp,
        /// Left term.
        left: Term,
        /// Right term.
        right: Term,
    },
}

impl BodyItem {
    /// Variables that this item *requires* to be bound elsewhere
    /// (negated atoms and comparisons do not bind variables themselves).
    pub fn required_variables(&self) -> BTreeSet<&str> {
        match self {
            BodyItem::Positive(_) => BTreeSet::new(),
            BodyItem::Negative(a) => a.variables(),
            BodyItem::Compare { left, right, .. } => {
                let mut s = BTreeSet::new();
                if let Some(v) = left.var_name() {
                    s.insert(v);
                }
                if let Some(v) = right.var_name() {
                    s.insert(v);
                }
                s
            }
        }
    }
}

impl fmt::Display for BodyItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyItem::Positive(a) => write!(f, "{a}"),
            BodyItem::Negative(a) => write!(f, "!{a}"),
            BodyItem::Compare { op, left, right } => write!(f, "{left} {op} {right}"),
        }
    }
}

/// A Datalog rule: `head :- body.`  A rule with an empty body is a fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Head atom (derived relation).
    pub head: Atom,
    /// Body items (conjunction).
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// Construct a rule.
    pub fn new(head: Atom, body: Vec<BodyItem>) -> Self {
        Rule { head, body }
    }

    /// Construct a fact (empty body, all head terms must be constants).
    pub fn fact(head: Atom) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// Is this rule a fact?
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Predicates of positive body atoms.
    pub fn positive_deps(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Positive(a) => Some(a.predicate.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Predicates of negative body atoms.
    pub fn negative_deps(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Negative(a) => Some(a.predicate.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Range-restriction / safety check: every head variable, every variable
    /// in a negated atom and every variable in a comparison must occur in at
    /// least one positive body atom.
    pub fn is_safe(&self) -> bool {
        let bound: BTreeSet<&str> = self
            .body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Positive(a) => Some(a.variables()),
                _ => None,
            })
            .flatten()
            .collect();
        let head_ok = self.head.variables().iter().all(|v| bound.contains(v));
        let body_ok = self
            .body
            .iter()
            .all(|b| b.required_variables().iter().all(|v| bound.contains(v)));
        head_ok && body_ok
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fact() {
            return write!(f, "{}.", self.head);
        }
        write!(f, "{} :- ", self.head)?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ".")
    }
}

/// A Datalog program: an ordered list of rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Build a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Names of all predicates defined by rule heads (the IDB).
    pub fn idb_predicates(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.as_str())
            .collect()
    }

    /// Names of predicates that only appear in bodies (the EDB — these must
    /// be supplied as facts by the caller).
    pub fn edb_predicates(&self) -> BTreeSet<&str> {
        let idb = self.idb_predicates();
        self.rules
            .iter()
            .flat_map(|r| {
                r.body.iter().filter_map(|b| match b {
                    BodyItem::Positive(a) | BodyItem::Negative(a) => Some(a.predicate.as_str()),
                    BodyItem::Compare { .. } => None,
                })
            })
            .filter(|p| !idb.contains(p))
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, terms: Vec<Term>) -> Atom {
        Atom::new(p, terms)
    }

    #[test]
    fn safety_check_accepts_range_restricted_rules() {
        // ok(X) :- p(X), !q(X), X > 3.
        let rule = Rule::new(
            atom("ok", vec![Term::var("X")]),
            vec![
                BodyItem::Positive(atom("p", vec![Term::var("X")])),
                BodyItem::Negative(atom("q", vec![Term::var("X")])),
                BodyItem::Compare {
                    op: CompareOp::Gt,
                    left: Term::var("X"),
                    right: Term::constant(3),
                },
            ],
        );
        assert!(rule.is_safe());
    }

    #[test]
    fn safety_check_rejects_unbound_head_or_negated_vars() {
        // bad(Y) :- p(X).
        let r1 = Rule::new(
            atom("bad", vec![Term::var("Y")]),
            vec![BodyItem::Positive(atom("p", vec![Term::var("X")]))],
        );
        assert!(!r1.is_safe());
        // bad(X) :- p(X), !q(Z).
        let r2 = Rule::new(
            atom("bad", vec![Term::var("X")]),
            vec![
                BodyItem::Positive(atom("p", vec![Term::var("X")])),
                BodyItem::Negative(atom("q", vec![Term::var("Z")])),
            ],
        );
        assert!(!r2.is_safe());
    }

    #[test]
    fn edb_and_idb_partition() {
        let p = Program::new(vec![
            Rule::new(
                atom("reach", vec![Term::var("X"), Term::var("Y")]),
                vec![BodyItem::Positive(atom(
                    "edge",
                    vec![Term::var("X"), Term::var("Y")],
                ))],
            ),
            Rule::new(
                atom("reach", vec![Term::var("X"), Term::var("Z")]),
                vec![
                    BodyItem::Positive(atom("reach", vec![Term::var("X"), Term::var("Y")])),
                    BodyItem::Positive(atom("edge", vec![Term::var("Y"), Term::var("Z")])),
                ],
            ),
        ]);
        assert_eq!(
            p.idb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["reach"]
        );
        assert_eq!(
            p.edb_predicates().into_iter().collect::<Vec<_>>(),
            vec!["edge"]
        );
    }

    #[test]
    fn compare_op_semantics() {
        use relalg::Value;
        assert!(CompareOp::Lt.apply(&Value::Int(1), &Value::Int(2)));
        assert!(CompareOp::Neq.apply(&Value::str("a"), &Value::str("b")));
        assert!(!CompareOp::Eq.apply(&Value::Null, &Value::Null));
        assert!(CompareOp::Ge.apply(&Value::Float(2.0), &Value::Int(2)));
    }

    #[test]
    fn display_round_trip_shapes() {
        let rule = Rule::new(
            atom("ok", vec![Term::var("X")]),
            vec![
                BodyItem::Positive(atom("p", vec![Term::var("X"), Term::constant("w")])),
                BodyItem::Negative(atom("q", vec![Term::var("X")])),
            ],
        );
        assert_eq!(rule.to_string(), "ok(X) :- p(X, \"w\"), !q(X).");
        let fact = Rule::fact(atom("p", vec![Term::constant(1)]));
        assert_eq!(fact.to_string(), "p(1).");
    }
}
