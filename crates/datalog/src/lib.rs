//! # datalog — a stratified, semi-naive Datalog engine
//!
//! The EDBT 2010 paper asks "to what extent can existing query languages be
//! used to capture typical constraints on request schedules?" and names
//! Datalog as a candidate alongside SQL.  This crate is the Datalog answer:
//! scheduling protocols (SS2PL, SLA ordering, relaxed consistency) are
//! expressed as rule programs over the `pending` and `history` relations and
//! evaluated every scheduling round.
//!
//! Features:
//!
//! * positive rules with semi-naive (delta) evaluation,
//! * stratified negation (`!atom(...)` in rule bodies),
//! * built-in comparison constraints (`X < Y`, `X != Y`, ...),
//! * a plain-text [`parser`] so protocols can live in configuration files,
//! * constants shared with [`relalg::Value`], so facts can be loaded straight
//!   from relational tables and results pushed back.
//!
//! ```
//! use datalog::prelude::*;
//!
//! let program = parse_program(
//!     r#"
//!     reach(X, Y) :- edge(X, Y).
//!     reach(X, Z) :- reach(X, Y), edge(Y, Z).
//!     "#,
//! ).unwrap();
//!
//! let mut db = Database::new();
//! db.add_fact("edge", vec![1.into(), 2.into()]);
//! db.add_fact("edge", vec![2.into(), 3.into()]);
//!
//! let out = evaluate(&program, db).unwrap();
//! assert_eq!(out.relation("reach").unwrap().len(), 3);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ast;
pub mod engine;
pub mod error;
pub mod eval;
pub mod incremental;
pub mod parser;
pub mod stratify;

pub use ast::{Atom, BodyItem, CompareOp, Program, Rule, Term};
pub use engine::{Database, Relation};
pub use error::{DatalogError, DatalogResult};
pub use eval::evaluate;
pub use incremental::{EvaluationStats, IncrementalEvaluation};
pub use parser::parse_program;

/// Convenient glob import.
pub mod prelude {
    pub use crate::ast::{Atom, BodyItem, CompareOp, Program, Rule, Term};
    pub use crate::engine::{Database, Relation};
    pub use crate::error::{DatalogError, DatalogResult};
    pub use crate::eval::evaluate;
    pub use crate::parser::parse_program;
    pub use relalg::Value;
}
