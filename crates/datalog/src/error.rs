//! Errors produced by the Datalog engine.

use std::fmt;

/// Result alias.
pub type DatalogResult<T> = Result<T, DatalogError>;

/// Errors produced while parsing, stratifying or evaluating programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// Syntax error with line/column information.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A rule violates the safety (range-restriction) requirement.
    UnsafeRule {
        /// The offending rule rendered as text.
        rule: String,
    },
    /// The program cannot be stratified (negation through a recursive cycle).
    NotStratifiable {
        /// The predicates on the offending cycle.
        cycle: Vec<String>,
    },
    /// A predicate is used with inconsistent arities.
    ArityMismatch {
        /// The predicate.
        predicate: String,
        /// Arities observed.
        arities: Vec<usize>,
    },
    /// Facts supplied for a predicate do not match its declared arity.
    FactArity {
        /// The predicate.
        predicate: String,
        /// Expected arity.
        expected: usize,
        /// Got arity.
        got: usize,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            DatalogError::UnsafeRule { rule } => {
                write!(
                    f,
                    "unsafe rule (unbound variable in head, negation or comparison): {rule}"
                )
            }
            DatalogError::NotStratifiable { cycle } => write!(
                f,
                "program is not stratifiable: negation on recursive cycle [{}]",
                cycle.join(" -> ")
            ),
            DatalogError::ArityMismatch { predicate, arities } => write!(
                f,
                "predicate `{predicate}` used with inconsistent arities: {arities:?}"
            ),
            DatalogError::FactArity {
                predicate,
                expected,
                got,
            } => write!(
                f,
                "fact for `{predicate}` has arity {got}, rules expect {expected}"
            ),
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_relevant_names() {
        let e = DatalogError::NotStratifiable {
            cycle: vec!["p".into(), "q".into()],
        };
        assert!(e.to_string().contains("p -> q"));
        let e = DatalogError::Parse {
            line: 3,
            column: 7,
            message: "expected `.`".into(),
        };
        assert!(e.to_string().contains("3:7"));
        let e = DatalogError::ArityMismatch {
            predicate: "pending".into(),
            arities: vec![4, 5],
        };
        assert!(e.to_string().contains("pending"));
    }
}
