//! Stratification of Datalog programs with negation.
//!
//! A program is stratifiable when no predicate depends on itself through a
//! negation.  Evaluation then proceeds stratum by stratum: all rules of a
//! stratum see the *complete* relations of lower strata, which gives negation
//! a well-defined (perfect-model) semantics.  The scheduling protocols of the
//! paper are naturally stratified — e.g. "blocked requests" are derived from
//! the history first, then "qualified requests" are those *not* blocked.

use crate::ast::Program;
use crate::error::{DatalogError, DatalogResult};
use std::collections::{BTreeMap, BTreeSet};

/// Result of stratification: for every IDB predicate a stratum number, and
/// the rules grouped per stratum in evaluation order.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum number per IDB predicate.
    pub strata: BTreeMap<String, usize>,
    /// Rule indexes (into `program.rules`) grouped by stratum, lowest first.
    pub rule_groups: Vec<Vec<usize>>,
}

/// Compute a stratification or report the negative cycle that prevents one.
pub fn stratify(program: &Program) -> DatalogResult<Stratification> {
    // Check arity consistency first: the same predicate must always be used
    // with one arity, otherwise evaluation would silently mis-join.
    check_arities(program)?;

    let idb: BTreeSet<&str> = program.idb_predicates();

    // Edges between IDB predicates: (from body predicate, to head predicate,
    // negative?).  EDB predicates live conceptually in stratum 0 and never
    // constrain anything.
    let mut edges: Vec<(String, String, bool)> = Vec::new();
    for rule in &program.rules {
        let head = rule.head.predicate.clone();
        for dep in rule.positive_deps() {
            if idb.contains(dep) {
                edges.push((dep.to_string(), head.clone(), false));
            }
        }
        for dep in rule.negative_deps() {
            if idb.contains(dep) {
                edges.push((dep.to_string(), head.clone(), true));
            }
        }
    }

    // Iteratively raise strata: head >= body for positive deps,
    // head > body (i.e. >= body+1) for negative deps.  If a stratum ever
    // exceeds the number of IDB predicates there must be a negative cycle.
    let mut strata: BTreeMap<String, usize> = idb.iter().map(|p| (p.to_string(), 0usize)).collect();
    let max_stratum = idb.len().max(1);
    let mut changed = true;
    while changed {
        changed = false;
        for (from, to, negative) in &edges {
            let from_stratum = strata[from];
            let required = if *negative {
                from_stratum + 1
            } else {
                from_stratum
            };
            let entry = strata.get_mut(to).expect("head is always an IDB predicate");
            if *entry < required {
                *entry = required;
                if *entry > max_stratum {
                    return Err(DatalogError::NotStratifiable {
                        cycle: find_negative_cycle(&edges),
                    });
                }
                changed = true;
            }
        }
    }

    // Group rules by the stratum of their head predicate.
    let max = strata.values().copied().max().unwrap_or(0);
    let mut rule_groups: Vec<Vec<usize>> = vec![Vec::new(); max + 1];
    for (i, rule) in program.rules.iter().enumerate() {
        let s = strata[&rule.head.predicate];
        rule_groups[s].push(i);
    }

    Ok(Stratification {
        strata,
        rule_groups,
    })
}

fn check_arities(program: &Program) -> DatalogResult<()> {
    let mut arities: BTreeMap<&str, BTreeSet<usize>> = BTreeMap::new();
    for rule in &program.rules {
        arities
            .entry(rule.head.predicate.as_str())
            .or_default()
            .insert(rule.head.arity());
        for item in &rule.body {
            match item {
                crate::ast::BodyItem::Positive(a) | crate::ast::BodyItem::Negative(a) => {
                    arities
                        .entry(a.predicate.as_str())
                        .or_default()
                        .insert(a.arity());
                }
                crate::ast::BodyItem::Compare { .. } => {}
            }
        }
    }
    for (pred, set) in arities {
        if set.len() > 1 {
            return Err(DatalogError::ArityMismatch {
                predicate: pred.to_string(),
                arities: set.into_iter().collect(),
            });
        }
    }
    Ok(())
}

/// Best-effort extraction of a cycle containing a negative edge, for error
/// reporting.  Falls back to listing all predicates on negative edges.
fn find_negative_cycle(edges: &[(String, String, bool)]) -> Vec<String> {
    let mut on_negative: BTreeSet<String> = BTreeSet::new();
    for (from, to, negative) in edges {
        if *negative {
            on_negative.insert(from.clone());
            on_negative.insert(to.clone());
        }
    }
    on_negative.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn positive_recursion_is_single_stratum() {
        let p =
            parse_program("reach(X,Y) :- edge(X,Y). reach(X,Z) :- reach(X,Y), edge(Y,Z).").unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata["reach"], 0);
        assert_eq!(s.rule_groups.len(), 1);
        assert_eq!(s.rule_groups[0].len(), 2);
    }

    #[test]
    fn negation_pushes_dependent_predicate_to_higher_stratum() {
        let p = parse_program(
            r#"
            blocked(O) :- history(T, O, "w").
            qualified(T, O) :- pending(T, O), !blocked(O).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata["blocked"], 0);
        assert_eq!(s.strata["qualified"], 1);
        assert_eq!(s.rule_groups.len(), 2);
    }

    #[test]
    fn negation_through_recursion_is_rejected() {
        let p = parse_program(
            r#"
            win(X) :- move(X, Y), !win(Y).
            "#,
        )
        .unwrap();
        let err = stratify(&p).unwrap_err();
        match err {
            DatalogError::NotStratifiable { cycle } => assert!(cycle.contains(&"win".to_string())),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mutual_negative_cycle_is_rejected() {
        let p = parse_program(
            r#"
            p(X) :- base(X), !q(X).
            q(X) :- base(X), !p(X).
            "#,
        )
        .unwrap();
        assert!(matches!(
            stratify(&p),
            Err(DatalogError::NotStratifiable { .. })
        ));
    }

    #[test]
    fn arity_mismatch_detected() {
        let p = parse_program(
            r#"
            a(X) :- b(X).
            c(X) :- b(X, Y).
            "#,
        )
        .unwrap();
        assert!(matches!(
            stratify(&p),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn chains_of_negation_produce_multiple_strata() {
        let p = parse_program(
            r#"
            a(X) :- base(X).
            b(X) :- base(X), !a(X).
            c(X) :- base(X), !b(X).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.strata["a"], 0);
        assert_eq!(s.strata["b"], 1);
        assert_eq!(s.strata["c"], 2);
    }
}
