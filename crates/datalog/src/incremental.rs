//! Cross-evaluation persistence: keep the fixpoint, re-derive only what a
//! delta can reach.
//!
//! [`crate::evaluate`] is a one-shot API: every call re-stratifies the
//! program, reloads every fact and recomputes every stratum.  A scheduler
//! evaluating the same program round after round over a state that changes
//! by a handful of rows pays the full O(facts) price each time.
//! [`IncrementalEvaluation`] amortises all three costs:
//!
//! * the program is validated and stratified **once**, at construction;
//! * the extensional facts and the derived fixpoint **persist** between
//!   [`IncrementalEvaluation::evaluate`] calls;
//! * between calls the caller describes how the inputs changed —
//!   [`extend_input`] for append-only growth (the scheduler's `history`
//!   relation in the paper's unbounded mode), [`replace_input`] for
//!   wholesale replacement (the `requests` relation, which shrinks when
//!   qualified rows leave) — and `evaluate` recomputes **per stratum**:
//!
//!   | stratum's relationship to the change | work done |
//!   |---|---|
//!   | unreachable from any changed predicate | **skipped** (cached fixpoint stands) |
//!   | reachable only positively, by insert-only deltas | **semi-naive resume**: iteration continues from the persisted fixpoint seeded with just the delta facts |
//!   | depends on a replaced input, or *negates* a changed predicate | **full recompute** of that stratum (a retraction, or an insertion under negation, can invalidate prior derivations) |
//!
//! Dirtiness propagates downstream: a fully recomputed stratum marks its
//! head predicates as replaced for the strata above it, a resumed stratum
//! passes along only the facts it newly derived.
//!
//! [`extend_input`]: IncrementalEvaluation::extend_input
//! [`replace_input`]: IncrementalEvaluation::replace_input

use crate::ast::{Program, Rule};
use crate::engine::{Database, Relation};
use crate::error::{DatalogError, DatalogResult};
use crate::eval::{evaluate_stratum, resume_stratum};
use crate::stratify::stratify;
use relalg::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// How much work the last [`IncrementalEvaluation::evaluate`] call did, per
/// stratum — the observability hook the scheduler's benches read.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvaluationStats {
    /// Strata skipped because no changed predicate reaches them.
    pub skipped: usize,
    /// Strata resumed semi-naively from insert-only deltas.
    pub resumed: usize,
    /// Strata recomputed from scratch (replaced or negated inputs).
    pub recomputed: usize,
}

/// One refined stratum group's evaluation plan, computed once at
/// construction: the rule indexes plus the head/positive/negative predicate
/// sets every [`IncrementalEvaluation::evaluate`] call used to re-derive
/// from the rule ASTs on every round.
#[derive(Debug)]
struct GroupPlan {
    /// Non-fact rule indexes into `program.rules`, in evaluation order.
    rules: Vec<usize>,
    /// Distinct head predicates of those rules.
    heads: Vec<String>,
    /// Distinct positive body dependencies.
    positive: Vec<String>,
    /// Distinct negative body dependencies.
    negative: Vec<String>,
}

/// A Datalog program plus its persisted extensional facts and derived
/// fixpoint, evaluated incrementally as the inputs change.
#[derive(Debug)]
pub struct IncrementalEvaluation {
    program: Program,
    /// Per-group evaluation plans for the stratum groups refined to one
    /// strongly connected component of head predicates each (mutually
    /// recursive predicates stay together; merely stratum-equal ones split
    /// apart), so an unchanged predicate skips even when its stratum-mate
    /// recomputes.
    plans: Vec<GroupPlan>,
    /// Head predicates (rules may not write into these via the input API).
    idb: HashSet<String>,
    /// Facts embedded in the program text, re-seeded after a stratum clear.
    base_facts: HashMap<String, Vec<Vec<Value>>>,
    db: Database,
    /// Inputs replaced since the last evaluation (deletions possible).
    replaced: HashSet<String>,
    /// Facts appended to inputs since the last evaluation.
    appended: HashMap<String, Relation>,
    evaluated_once: bool,
    stats: EvaluationStats,
}

impl IncrementalEvaluation {
    /// Validate and stratify the program once; facts in the program text are
    /// loaded immediately.
    pub fn new(program: Program) -> DatalogResult<Self> {
        for rule in &program.rules {
            if !rule.is_safe() {
                return Err(DatalogError::UnsafeRule {
                    rule: rule.to_string(),
                });
            }
        }
        let stratification = stratify(&program)?;
        let rule_groups = refine_groups(&program, &stratification.rule_groups);
        let plans: Vec<GroupPlan> = rule_groups
            .iter()
            .map(|group| {
                let rules: Vec<usize> = group
                    .iter()
                    .copied()
                    .filter(|&i| !program.rules[i].is_fact())
                    .collect();
                let mut heads: BTreeSet<&str> = BTreeSet::new();
                let mut positive: BTreeSet<&str> = BTreeSet::new();
                let mut negative: BTreeSet<&str> = BTreeSet::new();
                for &i in &rules {
                    let rule = &program.rules[i];
                    heads.insert(rule.head.predicate.as_str());
                    positive.extend(rule.positive_deps());
                    negative.extend(rule.negative_deps());
                }
                GroupPlan {
                    rules,
                    heads: heads.into_iter().map(str::to_string).collect(),
                    positive: positive.into_iter().map(str::to_string).collect(),
                    negative: negative.into_iter().map(str::to_string).collect(),
                }
            })
            .filter(|plan| !plan.rules.is_empty())
            .collect();
        let mut db = Database::new();
        let mut base_facts: HashMap<String, Vec<Vec<Value>>> = HashMap::new();
        for rule in program.rules.iter().filter(|r| r.is_fact()) {
            let row: Vec<Value> = rule
                .head
                .terms
                .iter()
                .map(|t| match t {
                    crate::ast::Term::Const(v) => *v,
                    crate::ast::Term::Var(_) => {
                        unreachable!("facts with variables are unsafe and rejected above")
                    }
                })
                .collect();
            base_facts
                .entry(rule.head.predicate.clone())
                .or_default()
                .push(row.clone());
            db.add_fact(rule.head.predicate.clone(), row);
        }
        for pred in program.edb_predicates() {
            db.declare(pred);
        }
        // Heads of real rules; a predicate defined only by ground facts in
        // the program text stays extensional (extendable by the caller).
        let idb: HashSet<String> = program
            .rules
            .iter()
            .filter(|r| !r.is_fact())
            .map(|r| r.head.predicate.clone())
            .collect();
        for pred in &idb {
            db.declare(pred);
        }
        Ok(IncrementalEvaluation {
            program,
            plans,
            idb,
            base_facts,
            db,
            replaced: HashSet::new(),
            appended: HashMap::new(),
            evaluated_once: false,
            stats: EvaluationStats::default(),
        })
    }

    /// Replace an extensional relation wholesale (rows may have been
    /// removed): every stratum reachable from it recomputes on the next
    /// evaluation.
    pub fn replace_input(
        &mut self,
        predicate: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> DatalogResult<()> {
        self.check_edb(predicate)?;
        self.db.clear_relation(predicate);
        self.db.add_facts(predicate.to_string(), rows);
        self.replaced.insert(predicate.to_string());
        self.appended.remove(predicate);
        Ok(())
    }

    /// Append facts to an extensional relation.  Only genuinely new facts
    /// enter the delta; strata reached only positively resume semi-naively
    /// from them.
    pub fn extend_input(
        &mut self,
        predicate: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> DatalogResult<()> {
        self.check_edb(predicate)?;
        for row in rows {
            if self.db.add_fact(predicate.to_string(), row.clone()) {
                self.appended
                    .entry(predicate.to_string())
                    .or_default()
                    .insert(row);
            }
        }
        Ok(())
    }

    fn check_edb(&self, predicate: &str) -> DatalogResult<()> {
        if self.idb.contains(predicate) {
            return Err(DatalogError::UnsafeRule {
                rule: format!("`{predicate}` is derived by rules and cannot be used as an input"),
            });
        }
        Ok(())
    }

    /// The persisted database: extensional facts plus, after the first
    /// [`Self::evaluate`], every derived relation.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Per-stratum work counters of the last [`Self::evaluate`] call.
    pub fn last_stats(&self) -> EvaluationStats {
        self.stats
    }

    /// Bring every derived relation up to date with the inputs, doing only
    /// the per-stratum work the accumulated changes require, and return the
    /// database holding the fixpoint.
    pub fn evaluate(&mut self) -> DatalogResult<&Database> {
        self.stats = EvaluationStats::default();
        let mut replaced: HashSet<String> = std::mem::take(&mut self.replaced);
        let mut deltas: HashMap<String, Relation> = std::mem::take(&mut self.appended);
        let first = !self.evaluated_once;
        // Stay "never evaluated" until the pass completes: an error partway
        // through leaves partially recomputed strata behind, and the taken
        // change sets are gone — the next call must recompute everything
        // from the (intact) extensional facts rather than silently serving
        // the stale fixpoint as if nothing had changed.
        self.evaluated_once = false;

        let mut rules: Vec<&Rule> = Vec::new();
        for plan in &self.plans {
            rules.clear();
            rules.extend(plan.rules.iter().map(|&i| &self.program.rules[i]));

            // A replaced dependency may have retracted facts; new facts under
            // a negation may retract derivations.  Either forces this stratum
            // to recompute from scratch.
            let must_recompute = first
                || plan
                    .positive
                    .iter()
                    .chain(plan.negative.iter())
                    .any(|p| replaced.contains(p))
                || plan
                    .negative
                    .iter()
                    .any(|p| deltas.get(p).is_some_and(|d| !d.is_empty()));

            if must_recompute {
                for head in &plan.heads {
                    self.db.clear_relation(head);
                    if let Some(facts) = self.base_facts.get(head) {
                        for row in facts {
                            self.db.add_fact(head.clone(), row.clone());
                        }
                    }
                }
                evaluate_stratum(&rules, &mut self.db)?;
                // Downstream strata must treat these heads as replaced.
                replaced.extend(plan.heads.iter().cloned());
                self.stats.recomputed += 1;
                continue;
            }

            // Positive-only reachability: resume semi-naive iteration from
            // the persisted fixpoint, seeded with just the delta facts.
            // The whole accumulated delta map is passed by reference — a
            // rule only ever looks up its own positive atoms' predicates,
            // so entries this stratum does not reference are inert, and no
            // relation is cloned to build a filtered seed.
            let has_delta = plan
                .positive
                .iter()
                .any(|p| deltas.get(p).is_some_and(|d| !d.is_empty()));
            if !has_delta {
                self.stats.skipped += 1;
                continue;
            }
            let derived = resume_stratum(&rules, &mut self.db, &deltas)?;
            for (predicate, relation) in derived {
                let pool = deltas.entry(predicate).or_default();
                for row in relation.into_rows() {
                    pool.insert(row);
                }
            }
            self.stats.resumed += 1;
        }
        self.evaluated_once = true;
        Ok(&self.db)
    }
}

/// Split each stratum group into sub-groups of mutually recursive head
/// predicates, in dependency order.  Stratification only guarantees
/// head ≥ body (positive) and head > body (negative), so independent
/// predicates often share a stratum number; evaluating them as one unit
/// would force a change in either to recompute both.  Within one stratum
/// all in-group edges are positive (negative edges strictly raise the
/// stratum), so any topological order of the positive-dependency SCCs is a
/// valid evaluation order.
fn refine_groups(program: &Program, rule_groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut refined = Vec::new();
    for group in rule_groups {
        // head predicate -> rule indexes in this group.
        let mut rules_of: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for &index in group {
            rules_of
                .entry(program.rules[index].head.predicate.as_str())
                .or_default()
                .push(index);
        }
        if rules_of.len() <= 1 {
            refined.push(group.clone());
            continue;
        }
        // In-group positive dependencies: edge head -> dep (dep must come
        // first).  The graphs are tiny (a handful of predicates), so the
        // O(n²) reachability closure is fine.
        let heads: Vec<&str> = rules_of.keys().copied().collect();
        let reaches = |from: &str, to: &str| -> bool {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(p) = stack.pop() {
                if !seen.insert(p) {
                    continue;
                }
                if p == to {
                    return true;
                }
                for &index in rules_of.get(p).into_iter().flatten() {
                    for dep in program.rules[index].positive_deps() {
                        if rules_of.contains_key(dep) {
                            stack.push(dep);
                        }
                    }
                }
            }
            false
        };
        // Peel predicates whose remaining in-group dependencies are all
        // emitted; when stuck, emit a whole mutually-recursive component.
        let mut remaining: BTreeSet<&str> = heads.iter().copied().collect();
        while !remaining.is_empty() {
            let free: Vec<&str> = remaining
                .iter()
                .copied()
                .filter(|head| {
                    rules_of[head].iter().all(|&index| {
                        program.rules[index]
                            .positive_deps()
                            .iter()
                            .all(|dep| dep == head || !remaining.contains(dep))
                    })
                })
                .collect();
            if !free.is_empty() {
                for head in free {
                    remaining.remove(head);
                    refined.push(rules_of[head].clone());
                }
                continue;
            }
            // A cycle: emit a strongly connected component whose external
            // dependencies are all emitted already.
            let component = remaining
                .iter()
                .copied()
                .map(|seed| {
                    remaining
                        .iter()
                        .copied()
                        .filter(|&p| p == seed || (reaches(seed, p) && reaches(p, seed)))
                        .collect::<Vec<&str>>()
                })
                .find(|component| {
                    component.iter().all(|head| {
                        rules_of[head].iter().all(|&index| {
                            program.rules[index]
                                .positive_deps()
                                .iter()
                                .all(|dep| component.contains(dep) || !remaining.contains(dep))
                        })
                    })
                })
                .expect("a dependency-minimal component always exists in a finite graph");
            let mut unit = Vec::new();
            for head in component {
                remaining.remove(head);
                unit.extend(rules_of[head].iter().copied());
            }
            unit.sort_unstable();
            refined.push(unit);
        }
    }
    refined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use crate::parser::parse_program;

    fn ints(rel: &Relation) -> Vec<Vec<i64>> {
        let mut rows: Vec<Vec<i64>> = rel
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
            .collect();
        rows.sort();
        rows
    }

    /// The one-shot evaluation of the same program over the same facts — the
    /// oracle every incremental result must match.
    fn oracle(source: &str, facts: &[(&str, Vec<Vec<Value>>)], out: &str) -> Vec<Vec<i64>> {
        let program = parse_program(source).unwrap();
        let mut db = Database::new();
        for (pred, rows) in facts {
            db.add_facts(pred.to_string(), rows.iter().cloned());
        }
        let result = evaluate(&program, db).unwrap();
        ints(&result.relation_or_empty(out))
    }

    const REACH: &str = r#"
        reach(X, Y) :- edge(X, Y).
        reach(X, Z) :- reach(X, Y), edge(Y, Z).
    "#;

    fn pairs(list: &[(i64, i64)]) -> Vec<Vec<Value>> {
        list.iter()
            .map(|&(a, b)| vec![a.into(), b.into()])
            .collect()
    }

    #[test]
    fn monotone_program_resumes_from_the_persisted_fixpoint() {
        let mut inc = IncrementalEvaluation::new(parse_program(REACH).unwrap()).unwrap();
        let mut edges = vec![(1, 2), (2, 3)];
        inc.extend_input("edge", pairs(&edges)).unwrap();
        inc.evaluate().unwrap();
        assert_eq!(
            ints(&inc.database().relation_or_empty("reach")),
            oracle(REACH, &[("edge", pairs(&edges))], "reach")
        );

        // Append one edge: the stratum resumes, it does not recompute.
        edges.push((3, 4));
        inc.extend_input("edge", pairs(&[(3, 4)])).unwrap();
        inc.evaluate().unwrap();
        assert_eq!(inc.last_stats().resumed, 1);
        assert_eq!(inc.last_stats().recomputed, 0);
        assert_eq!(
            ints(&inc.database().relation_or_empty("reach")),
            oracle(REACH, &[("edge", pairs(&edges))], "reach")
        );

        // No change at all: everything is skipped.
        inc.evaluate().unwrap();
        assert_eq!(inc.last_stats().skipped, 1);
        assert_eq!(inc.last_stats().resumed + inc.last_stats().recomputed, 0);
    }

    #[test]
    fn replacement_forces_recomputation_and_drops_retracted_facts() {
        let mut inc = IncrementalEvaluation::new(parse_program(REACH).unwrap()).unwrap();
        inc.extend_input("edge", pairs(&[(1, 2), (2, 3)])).unwrap();
        inc.evaluate().unwrap();
        assert_eq!(inc.database().relation_or_empty("reach").len(), 3);

        // Remove the (2,3) edge by replacement: reach(1,3) must disappear.
        inc.replace_input("edge", pairs(&[(1, 2)])).unwrap();
        inc.evaluate().unwrap();
        assert_eq!(inc.last_stats().recomputed, 1);
        assert_eq!(
            ints(&inc.database().relation_or_empty("reach")),
            vec![vec![1, 2]]
        );
    }

    const LOCKS: &str = r#"
        finished(T) :- history(T, O, "c").
        locked(O, T) :- history(T, O, "w"), !finished(T).
        blocked(Id) :- pending(Id, T, O), locked(O, T2), T != T2.
        qualified(Id) :- pending(Id, T, O), !blocked(Id).
    "#;

    #[test]
    fn negation_under_growth_recomputes_only_affected_strata() {
        let mut inc = IncrementalEvaluation::new(parse_program(LOCKS).unwrap()).unwrap();
        inc.extend_input("history", vec![vec![1.into(), 5.into(), "w".into()]])
            .unwrap();
        inc.replace_input(
            "pending",
            vec![
                vec![100.into(), 2.into(), 5.into()],
                vec![101.into(), 2.into(), 6.into()],
            ],
        )
        .unwrap();
        inc.evaluate().unwrap();
        assert_eq!(
            ints(&inc.database().relation_or_empty("qualified")),
            vec![vec![101]]
        );

        // Txn 1 commits: `finished` grows, which reaches `locked` through a
        // negation — that stratum and everything above recomputes, and the
        // previously blocked request qualifies.
        inc.extend_input("history", vec![vec![1.into(), 5.into(), "c".into()]])
            .unwrap();
        inc.evaluate().unwrap();
        assert!(inc.last_stats().recomputed >= 1);
        assert_eq!(
            ints(&inc.database().relation_or_empty("qualified")),
            vec![vec![100], vec![101]]
        );
    }

    #[test]
    fn unchanged_lock_strata_are_skipped_when_only_pending_changes() {
        let mut inc = IncrementalEvaluation::new(parse_program(LOCKS).unwrap()).unwrap();
        inc.extend_input(
            "history",
            vec![
                vec![1.into(), 5.into(), "w".into()],
                vec![3.into(), 7.into(), "w".into()],
            ],
        )
        .unwrap();
        inc.replace_input("pending", vec![vec![100.into(), 2.into(), 5.into()]])
            .unwrap();
        inc.evaluate().unwrap();
        assert!(inc.database().relation_or_empty("qualified").is_empty());

        // Only the pending relation changes between rounds: the history-
        // derived lock strata must be skipped, not rescanned.
        inc.replace_input("pending", vec![vec![102.into(), 2.into(), 8.into()]])
            .unwrap();
        inc.evaluate().unwrap();
        let stats = inc.last_stats();
        assert!(
            stats.skipped >= 2,
            "finished/locked strata must be reused: {stats:?}"
        );
        assert_eq!(
            ints(&inc.database().relation_or_empty("qualified")),
            vec![vec![102]]
        );
    }

    #[test]
    fn program_facts_survive_stratum_recomputation() {
        let source = r#"
            edge(1, 2).
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
        "#;
        let mut inc = IncrementalEvaluation::new(parse_program(source).unwrap()).unwrap();
        inc.evaluate().unwrap();
        assert_eq!(inc.database().relation_or_empty("reach").len(), 1);
        inc.extend_input("edge", pairs(&[(2, 3)])).unwrap();
        inc.evaluate().unwrap();
        assert_eq!(inc.database().relation_or_empty("reach").len(), 3);
    }

    #[test]
    fn inputs_must_be_extensional() {
        let mut inc = IncrementalEvaluation::new(parse_program(REACH).unwrap()).unwrap();
        assert!(inc.replace_input("reach", Vec::new()).is_err());
        assert!(inc.extend_input("reach", Vec::new()).is_err());
    }

    #[test]
    fn matches_one_shot_evaluation_across_random_growth() {
        // A randomized mirror: grow `edge` fact by fact and compare against
        // the one-shot oracle each step.
        let mut inc = IncrementalEvaluation::new(parse_program(REACH).unwrap()).unwrap();
        let mut edges: Vec<(i64, i64)> = Vec::new();
        let mut seed = 0x243F_6A88u64;
        for _ in 0..40 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((seed >> 33) % 8) as i64;
            let b = ((seed >> 17) % 8) as i64;
            edges.push((a, b));
            inc.extend_input("edge", pairs(&[(a, b)])).unwrap();
            inc.evaluate().unwrap();
            assert_eq!(
                ints(&inc.database().relation_or_empty("reach")),
                oracle(REACH, &[("edge", pairs(&edges))], "reach")
            );
        }
    }
}
