//! Semi-naive, stratified evaluation of Datalog programs.

use crate::ast::{Atom, BodyItem, Program, Rule, Term};
use crate::engine::{Database, Relation};
use crate::error::{DatalogError, DatalogResult};
use crate::stratify::stratify;
use relalg::Value;
use std::collections::HashMap;

/// Variable bindings accumulated while matching a rule body: a stack of
/// `(variable, value)` pairs pushed as atoms bind and truncated on
/// backtrack.  A rule binds a handful of variables, so linear lookup beats
/// a hash map — and backtracking is a `truncate`, not a map clone per
/// candidate row.
type Bindings<'r> = Vec<(&'r str, Value)>;

/// Reusable match-state for [`derive`]: the binding stack plus a ground-probe
/// buffer for negated atoms.  One instance lives per stratum evaluation and
/// is cleared, not reallocated, between rules.
#[derive(Default)]
struct EvalScratch<'r> {
    bindings: Bindings<'r>,
    probe: Vec<Value>,
}

fn lookup(bindings: &Bindings<'_>, name: &str) -> Option<Value> {
    bindings
        .iter()
        .rev()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
}

/// Evaluate a program against a database of facts, returning a database that
/// contains both the original facts and all derived relations.
///
/// Evaluation is stratum by stratum.  Within a stratum the rules are run with
/// semi-naive (delta) iteration: in every round only bindings that use at
/// least one tuple derived in the previous round are recomputed, which turns
/// the classic transitive-closure blow-up into linear work per new fact.
pub fn evaluate(program: &Program, mut db: Database) -> DatalogResult<Database> {
    // Reject unsafe rules up front (the parser already does this, but rules
    // may also be constructed programmatically by the scheduler crate).
    for rule in &program.rules {
        if !rule.is_safe() {
            return Err(DatalogError::UnsafeRule {
                rule: rule.to_string(),
            });
        }
    }

    let stratification = stratify(program)?;

    // Facts embedded in the program text.
    for rule in program.rules.iter().filter(|r| r.is_fact()) {
        let row: Vec<Value> = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => *v,
                Term::Var(_) => unreachable!("facts with variables are unsafe and rejected above"),
            })
            .collect();
        db.add_fact(rule.head.predicate.clone(), row);
    }

    // Make sure every referenced predicate exists (possibly empty) so lookups
    // below never fail on missing EDB relations.
    for pred in program.edb_predicates() {
        db.declare(pred);
    }
    for pred in program.idb_predicates() {
        db.declare(pred);
    }

    for group in &stratification.rule_groups {
        let rules: Vec<&Rule> = group
            .iter()
            .map(|&i| &program.rules[i])
            .filter(|r| !r.is_fact())
            .collect();
        if rules.is_empty() {
            continue;
        }
        evaluate_stratum(&rules, &mut db)?;
    }

    Ok(db)
}

/// Fixpoint of one stratum's rules.
pub(crate) fn evaluate_stratum(rules: &[&Rule], db: &mut Database) -> DatalogResult<()> {
    // Round 0: naive evaluation to seed the deltas.
    let mut delta: HashMap<String, Relation> = HashMap::new();
    let mut scratch = EvalScratch::default();
    let mut derived = Vec::new();
    for rule in rules {
        derived.clear();
        derive(rule, db, None, &mut scratch, &mut derived)?;
        for row in derived.drain(..) {
            if db.relation_mut(&rule.head.predicate).insert(row.clone()) {
                delta
                    .entry(rule.head.predicate.clone())
                    .or_default()
                    .insert(row);
            }
        }
    }
    drain_deltas(rules, db, &delta, None)?;
    Ok(())
}

/// Resume a stratum's semi-naive iteration from externally supplied deltas —
/// the cross-round continuation used by [`crate::IncrementalEvaluation`]:
/// `db` already holds a fixpoint of `rules` over the *previous* facts, and
/// `delta` holds only the facts added since.  Because semi-naive iteration
/// is insensitive to *when* a delta arrives (every rule is re-derived with
/// each positive atom restricted to the delta in turn), continuing from the
/// persisted fixpoint yields exactly the fixpoint over the enlarged fact
/// set, in time proportional to the new derivations.  The delta map is
/// borrowed, not consumed — entries for predicates no rule in this stratum
/// references are simply never looked up.  Returns the facts newly derived
/// for each head predicate (the downstream strata's delta).
pub(crate) fn resume_stratum(
    rules: &[&Rule],
    db: &mut Database,
    delta: &HashMap<String, Relation>,
) -> DatalogResult<HashMap<String, Relation>> {
    let mut derived_total = HashMap::new();
    drain_deltas(rules, db, delta, Some(&mut derived_total))?;
    Ok(derived_total)
}

/// Run semi-naive rounds until no rule derives anything new.  When
/// `derived_total` is given, every newly derived fact is also accumulated
/// there per head predicate (the resume path needs it to seed downstream
/// strata); the one-shot path passes `None` and skips that cost.
fn drain_deltas(
    rules: &[&Rule],
    db: &mut Database,
    seed: &HashMap<String, Relation>,
    mut derived_total: Option<&mut HashMap<String, Relation>>,
) -> DatalogResult<()> {
    let mut scratch = EvalScratch::default();
    let mut derived = Vec::new();
    let mut delta = step_deltas(
        rules,
        db,
        seed,
        &mut derived_total,
        &mut scratch,
        &mut derived,
    )?;
    while delta.values().any(|r| !r.is_empty()) {
        delta = step_deltas(
            rules,
            db,
            &delta,
            &mut derived_total,
            &mut scratch,
            &mut derived,
        )?;
    }
    Ok(())
}

/// One semi-naive round: for each positive body atom whose predicate has a
/// delta, run the rule with that atom restricted to the delta.  Returns the
/// next round's delta (facts first derived this round).
fn step_deltas<'r>(
    rules: &[&'r Rule],
    db: &mut Database,
    delta: &HashMap<String, Relation>,
    derived_total: &mut Option<&mut HashMap<String, Relation>>,
    scratch: &mut EvalScratch<'r>,
    derived: &mut Vec<Vec<Value>>,
) -> DatalogResult<HashMap<String, Relation>> {
    let mut next_delta: HashMap<String, Relation> = HashMap::new();
    for rule in rules {
        for (pos, item) in rule.body.iter().enumerate() {
            let BodyItem::Positive(atom) = item else {
                continue;
            };
            let Some(d) = delta.get(&atom.predicate) else {
                continue;
            };
            if d.is_empty() {
                continue;
            }
            derived.clear();
            derive(rule, db, Some((pos, d)), scratch, derived)?;
            for row in derived.drain(..) {
                if db.relation_mut(&rule.head.predicate).insert(row.clone()) {
                    if let Some(total) = derived_total.as_deref_mut() {
                        total
                            .entry(rule.head.predicate.clone())
                            .or_default()
                            .insert(row.clone());
                    }
                    next_delta
                        .entry(rule.head.predicate.clone())
                        .or_default()
                        .insert(row);
                }
            }
        }
    }
    Ok(next_delta)
}

/// Compute all head tuples derivable by one rule, appending them to
/// `results`.  When `delta_at` is given, the positive atom at that body
/// position is matched against the delta relation instead of the full
/// relation (semi-naive restriction).
fn derive<'r>(
    rule: &'r Rule,
    db: &Database,
    delta_at: Option<(usize, &Relation)>,
    scratch: &mut EvalScratch<'r>,
    results: &mut Vec<Vec<Value>>,
) -> DatalogResult<()> {
    scratch.bindings.clear();
    join_body(rule, 0, scratch, db, delta_at, results)
}

fn join_body<'r>(
    rule: &'r Rule,
    idx: usize,
    scratch: &mut EvalScratch<'r>,
    db: &Database,
    delta_at: Option<(usize, &Relation)>,
    results: &mut Vec<Vec<Value>>,
) -> DatalogResult<()> {
    if idx == rule.body.len() {
        // All body items satisfied: emit the head tuple.
        let row: Vec<Value> = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => *v,
                Term::Var(name) => lookup(&scratch.bindings, name)
                    .expect("safety check guarantees head variables are bound"),
            })
            .collect();
        results.push(row);
        return Ok(());
    }

    match &rule.body[idx] {
        BodyItem::Positive(atom) => {
            let use_delta = matches!(delta_at, Some((pos, _)) if pos == idx);
            let delta_rel;
            let rel: &Relation = if use_delta {
                delta_rel = delta_at.unwrap().1;
                delta_rel
            } else {
                match db.relation(&atom.predicate) {
                    Some(r) => r,
                    None => return Ok(()), // empty relation: no matches
                }
            };
            for row in rel.iter() {
                if row.len() != atom.arity() {
                    return Err(DatalogError::FactArity {
                        predicate: atom.predicate.clone(),
                        expected: atom.arity(),
                        got: row.len(),
                    });
                }
                let mark = scratch.bindings.len();
                if unify(atom, row, &mut scratch.bindings) {
                    join_body(rule, idx + 1, scratch, db, delta_at, results)?;
                }
                scratch.bindings.truncate(mark);
            }
            Ok(())
        }
        BodyItem::Negative(atom) => {
            // All variables are bound (safety); build the ground tuple in
            // the reused probe buffer and test membership.  The probe is
            // dead once tested, so deeper negations may freely overwrite it.
            let EvalScratch { bindings, probe } = scratch;
            probe.clear();
            probe.extend(atom.terms.iter().map(|t| {
                match t {
                    Term::Const(v) => *v,
                    Term::Var(name) => lookup(bindings, name)
                        .expect("safety check guarantees negated variables are bound"),
                }
            }));
            let present = db
                .relation(&atom.predicate)
                .map(|r| r.contains(probe))
                .unwrap_or(false);
            if !present {
                join_body(rule, idx + 1, scratch, db, delta_at, results)?;
            }
            Ok(())
        }
        BodyItem::Compare { op, left, right } => {
            let resolve = |t: &Term| -> Value {
                match t {
                    Term::Const(v) => *v,
                    Term::Var(name) => lookup(&scratch.bindings, name)
                        .expect("safety check guarantees comparison variables are bound"),
                }
            };
            let l = resolve(left);
            let r = resolve(right);
            if op.apply(&l, &r) {
                join_body(rule, idx + 1, scratch, db, delta_at, results)?;
            }
            Ok(())
        }
    }
}

/// Try to extend `bindings` so that `atom` matches `row`, pushing any new
/// bindings onto the stack.  On mismatch, partially pushed bindings remain —
/// the caller truncates back to its mark either way.
fn unify<'r>(atom: &'r Atom, row: &[Value], bindings: &mut Bindings<'r>) -> bool {
    for (term, value) in atom.terms.iter().zip(row.iter()) {
        match term {
            Term::Const(c) => {
                if c.sql_eq(value) != Some(true) {
                    return false;
                }
            }
            Term::Var(name) => match lookup(bindings, name) {
                Some(existing) => {
                    if existing.sql_eq(value) != Some(true) {
                        return false;
                    }
                }
                None => bindings.push((name.as_str(), *value)),
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ints(rel: &Relation) -> Vec<Vec<i64>> {
        let mut rows: Vec<Vec<i64>> = rel
            .rows()
            .iter()
            .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn transitive_closure() {
        let program = parse_program(
            r#"
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            "#,
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.add_fact("edge", vec![a.into(), b.into()]);
        }
        let out = evaluate(&program, db).unwrap();
        let reach = ints(out.relation("reach").unwrap());
        assert_eq!(
            reach,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4]
            ]
        );
    }

    #[test]
    fn facts_in_program_text_are_loaded() {
        let program = parse_program(
            r#"
            edge(1, 2).
            edge(2, 3).
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            "#,
        )
        .unwrap();
        let out = evaluate(&program, Database::new()).unwrap();
        assert_eq!(out.relation("reach").unwrap().len(), 3);
    }

    #[test]
    fn stratified_negation_computes_complement() {
        let program = parse_program(
            r#"
            locked(O) :- history(T, O, "w").
            free(O) :- object(O), !locked(O).
            "#,
        )
        .unwrap();
        let mut db = Database::new();
        for o in 1..=4 {
            db.add_fact("object", vec![o.into()]);
        }
        db.add_fact("history", vec![10.into(), 2.into(), "w".into()]);
        db.add_fact("history", vec![11.into(), 3.into(), "r".into()]);
        let out = evaluate(&program, db).unwrap();
        let free = ints(out.relation("free").unwrap());
        assert_eq!(free, vec![vec![1], vec![3], vec![4]]);
    }

    #[test]
    fn comparisons_filter_bindings() {
        let program = parse_program(
            r#"
            conflict(T1, T2) :- op(T1, O), op(T2, O), T1 < T2.
            "#,
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("op", vec![1.into(), 7.into()]);
        db.add_fact("op", vec![2.into(), 7.into()]);
        db.add_fact("op", vec![3.into(), 8.into()]);
        let out = evaluate(&program, db).unwrap();
        assert_eq!(ints(out.relation("conflict").unwrap()), vec![vec![1, 2]]);
    }

    #[test]
    fn constants_in_atoms_select_rows() {
        let program = parse_program(
            r#"
            writes(T) :- op(T, O, "w").
            "#,
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("op", vec![1.into(), 5.into(), "r".into()]);
        db.add_fact("op", vec![2.into(), 5.into(), "w".into()]);
        let out = evaluate(&program, db).unwrap();
        assert_eq!(ints(out.relation("writes").unwrap()), vec![vec![2]]);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let program = parse_program(
            r#"
            self(X) :- edge(X, X).
            "#,
        )
        .unwrap();
        let mut db = Database::new();
        db.add_fact("edge", vec![1.into(), 1.into()]);
        db.add_fact("edge", vec![1.into(), 2.into()]);
        let out = evaluate(&program, db).unwrap();
        assert_eq!(ints(out.relation("self").unwrap()), vec![vec![1]]);
    }

    #[test]
    fn empty_edb_relations_yield_empty_idb() {
        let program = parse_program("q(X) :- p(X).").unwrap();
        let out = evaluate(&program, Database::new()).unwrap();
        assert!(out.relation("q").unwrap().is_empty());
    }

    #[test]
    fn unstratifiable_program_rejected_at_eval() {
        let program = parse_program("win(X) :- move(X, Y), !win(Y).").unwrap();
        let err = evaluate(&program, Database::new()).unwrap_err();
        assert!(matches!(err, DatalogError::NotStratifiable { .. }));
    }

    #[test]
    fn multi_stratum_pipeline_matches_manual_computation() {
        // A miniature SS2PL shape: derive write-locked objects, then
        // qualified requests are pending requests on objects that are not
        // write-locked by *another* transaction.
        let program = parse_program(
            r#"
            wlocked(O, T) :- history(T, O, "w"), !finished(T).
            finished(T) :- history(T, O, "c").
            blocked(Id) :- pending(Id, T, O), wlocked(O, T2), T != T2.
            qualified(Id) :- pending(Id, T, O), !blocked(Id).
            "#,
        )
        .unwrap();
        let mut db = Database::new();
        // txn 1 wrote object 5 and committed; txn 2 wrote object 6, still active.
        db.add_facts(
            "history",
            vec![
                vec![1.into(), 5.into(), "w".into()],
                vec![1.into(), 5.into(), "c".into()],
                vec![2.into(), 6.into(), "w".into()],
            ],
        );
        // Wait: commit records in this mini-model are (T, O, "c"); reuse object 5 for txn 1's commit row.
        db.add_facts(
            "pending",
            vec![
                vec![100.into(), 3.into(), 5.into()], // object 5 free (txn1 finished)
                vec![101.into(), 3.into(), 6.into()], // object 6 locked by txn2
                vec![102.into(), 2.into(), 6.into()], // txn2's own request on 6: allowed
            ],
        );
        let out = evaluate(&program, db).unwrap();
        assert_eq!(
            ints(out.relation("qualified").unwrap()),
            vec![vec![100], vec![102]]
        );
        assert_eq!(ints(out.relation("blocked").unwrap()), vec![vec![101]]);
    }

    #[test]
    fn larger_chain_uses_semi_naive_efficiently() {
        // A 200-node chain: naive evaluation would be quadratic in rounds;
        // this completes quickly and exactly.
        let program = parse_program(
            r#"
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            "#,
        )
        .unwrap();
        let mut db = Database::new();
        let n = 200i64;
        for i in 0..n {
            db.add_fact("edge", vec![i.into(), (i + 1).into()]);
        }
        let out = evaluate(&program, db).unwrap();
        let expected = (n * (n + 1) / 2) as usize;
        assert_eq!(out.relation("reach").unwrap().len(), expected);
    }
}
