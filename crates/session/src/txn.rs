//! The typed transaction builder.

use declsched::{Request, SlaMeta};
use relalg::Value;
use txnstore::Statement;

/// A transaction under construction: statements in intra order, optional
/// SLA/priority metadata, and an incrementally precomputed object
/// footprint.
///
/// ```
/// use session::Txn;
///
/// let txn = Txn::new(7).read(3).write(9, 42).commit();
/// assert_eq!(txn.footprint(), &[3, 9]);
/// assert_eq!(txn.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Txn {
    ta: u64,
    requests: Vec<Request>,
    footprint: Vec<i64>,
    sla: Option<SlaMeta>,
    next_intra: u32,
    terminated: bool,
}

impl Txn {
    /// Start building transaction `ta`.  Transaction ids must be unique per
    /// scheduler deployment — reusing a live one is rejected at submission.
    pub fn new(ta: u64) -> Self {
        Txn {
            ta,
            requests: Vec::new(),
            footprint: Vec::new(),
            sla: None,
            next_intra: 0,
            terminated: false,
        }
    }

    /// Continue transaction `ta` from statement number `next_intra` — for
    /// incremental submission, where earlier statements of the same
    /// transaction were already submitted (and possibly executed) through
    /// an earlier `Txn`.
    ///
    /// ```
    /// use session::Txn;
    ///
    /// let opening = Txn::new(9).write(4, 1);          // intra 0, no terminal
    /// let closing = Txn::resume(9, opening.len() as u32).commit(); // intra 1
    /// assert_eq!(closing.requests()[0].intra, 1);
    /// ```
    pub fn resume(ta: u64, next_intra: u32) -> Self {
        Txn {
            next_intra,
            ..Txn::new(ta)
        }
    }

    /// Build a transaction from pre-generated workload statements,
    /// preserving their transaction id and intra order.
    ///
    /// # Panics
    ///
    /// Panics if `statements` is empty or spans multiple transaction ids.
    pub fn from_statements(statements: &[Statement]) -> Self {
        let ta = statements
            .first()
            .expect("a transaction needs at least one statement")
            .txn
            .0;
        assert!(
            statements.iter().all(|s| s.txn.0 == ta),
            "statements of one Txn must share a transaction id"
        );
        let mut txn = Txn::new(ta);
        for statement in statements {
            let request = Request::from_statement(0, statement);
            txn.push(request);
        }
        txn
    }

    fn push(&mut self, request: Request) {
        assert!(
            !self.terminated,
            "cannot append to a transaction after commit()/abort()"
        );
        if request.op.is_terminal() {
            self.terminated = true;
        } else if let Err(pos) = self.footprint.binary_search(&request.object) {
            self.footprint.insert(pos, request.object);
        }
        self.next_intra = self.next_intra.max(request.intra + 1);
        self.requests.push(request);
    }

    /// Append a read of `object`.
    pub fn read(mut self, object: i64) -> Self {
        let request = Request::read(0, self.ta, self.next_intra, object);
        self.push(request);
        self
    }

    /// Append a write of `value` to `object`.
    pub fn write(mut self, object: i64, value: i64) -> Self {
        let mut request = Request::write(0, self.ta, self.next_intra, object);
        request.write_value = Some(Value::Int(value));
        self.push(request);
        self
    }

    /// Terminate with a commit.
    pub fn commit(mut self) -> Self {
        let request = Request::commit(0, self.ta, self.next_intra);
        self.push(request);
        self
    }

    /// Terminate with an abort.
    pub fn abort(mut self) -> Self {
        let request = Request::abort(0, self.ta, self.next_intra);
        self.push(request);
        self
    }

    /// Attach SLA/priority metadata; carried on every request so the
    /// scheduling rounds' `sla` relation sees it end-to-end.
    pub fn with_sla(mut self, sla: SlaMeta) -> Self {
        self.sla = Some(sla);
        self
    }

    /// The transaction id.
    pub fn ta(&self) -> u64 {
        self.ta
    }

    /// The precomputed object footprint: distinct objects the data
    /// statements touch, ascending.  This is what a shard router partitions
    /// on.
    pub fn footprint(&self) -> &[i64] {
        &self.footprint
    }

    /// The requests built so far, in intra order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether no statement has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Whether the transaction ends in a commit/abort.
    pub fn is_terminated(&self) -> bool {
        self.terminated
    }

    /// The SLA metadata, if any.
    pub fn sla(&self) -> Option<SlaMeta> {
        self.sla
    }

    /// Finish building: the requests to hand to a backend, SLA metadata
    /// applied to every one.
    pub(crate) fn into_requests(self) -> Vec<Request> {
        let Txn { requests, sla, .. } = self;
        match sla {
            None => requests,
            Some(sla) => requests.into_iter().map(|r| r.with_sla(sla)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use declsched::{footprint, Operation};
    use txnstore::{StatementKind, TxnId};

    #[test]
    fn builder_numbers_intra_and_precomputes_footprint() {
        let txn = Txn::new(5).read(9).write(3, 1).write(9, 2).commit();
        assert_eq!(txn.ta(), 5);
        assert_eq!(txn.len(), 4);
        assert!(txn.is_terminated());
        assert_eq!(txn.footprint(), &[3, 9]);
        let intras: Vec<u32> = txn.requests().iter().map(|r| r.intra).collect();
        assert_eq!(intras, vec![0, 1, 2, 3]);
        assert_eq!(txn.requests()[3].op, Operation::Commit);
        // The precomputed footprint agrees with the canonical function.
        assert_eq!(txn.footprint(), footprint(txn.requests()).as_slice());
    }

    #[test]
    fn sla_is_applied_to_every_request() {
        let sla = SlaMeta {
            priority: 3,
            class: "premium",
            arrival_ms: 1,
            deadline_ms: 50,
        };
        let requests = Txn::new(2).read(1).commit().with_sla(sla).into_requests();
        assert!(requests.iter().all(|r| r.sla == Some(sla)));
    }

    #[test]
    fn from_statements_preserves_ids_and_order() {
        let statements = vec![
            Statement::select(TxnId(4), 0, "bench", 7),
            Statement::update(TxnId(4), 1, "bench", 8, 99),
            Statement::commit(TxnId(4), 2, "bench"),
        ];
        let txn = Txn::from_statements(&statements);
        assert_eq!(txn.ta(), 4);
        assert_eq!(txn.footprint(), &[7, 8]);
        assert!(txn.is_terminated());
        assert!(matches!(
            statements[1].kind,
            StatementKind::Update { key: 8, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "after commit")]
    fn appending_after_terminal_panics() {
        let _ = Txn::new(1).commit().read(3);
    }
}
