//! [`Backend`] over the shard router fleet.

use crate::backend::{Backend, BackendKind};
use crate::report::Report;
use crossbeam::channel::Receiver;
use declsched::{Request, SchedError, SchedResult};
use shard::{ShardedClientHandle, ShardedMiddleware};
use std::sync::Mutex;

pub(crate) struct ShardedBackend {
    /// Submission side: routes directly through the shared router core.
    handle: ShardedClientHandle,
    /// Ownership side: consumed by the first shutdown.
    middleware: Mutex<Option<ShardedMiddleware>>,
}

impl ShardedBackend {
    pub(crate) fn new(middleware: ShardedMiddleware) -> Self {
        ShardedBackend {
            handle: middleware.connect(),
            middleware: Mutex::new(Some(middleware)),
        }
    }
}

impl Backend for ShardedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sharded
    }

    fn submit(&self, requests: Vec<Request>) -> SchedResult<Receiver<SchedResult<()>>> {
        Ok(self.handle.submit_transaction(requests)?.into_receiver())
    }

    fn shutdown(&self) -> SchedResult<Report> {
        let middleware = self
            .middleware
            .lock()
            .expect("sharded backend lock poisoned")
            .take()
            .ok_or(SchedError::BackendShutdown { backend: "sharded" })?;
        Ok(Report::from_sharded(middleware.shutdown()))
    }
}
