//! [`Backend`] over the shard router fleet.

use crate::backend::{Backend, BackendKind, Completion};
use crate::report::Report;
use declsched::{Request, SchedError, SchedResult};
use shard::{ShardedClientHandle, ShardedMiddleware};
use std::sync::Mutex;

pub(crate) struct ShardedBackend {
    /// Submission side: routes directly through the shared router core.
    handle: ShardedClientHandle,
    /// Control-plane side: cheap clone of the router's control handle,
    /// usable without touching the shutdown lock.
    control: shard::ControlHandle,
    /// Ownership side: consumed by the first shutdown.
    middleware: Mutex<Option<ShardedMiddleware>>,
}

impl ShardedBackend {
    pub(crate) fn new(middleware: ShardedMiddleware) -> Self {
        ShardedBackend {
            handle: middleware.connect(),
            control: middleware.control(),
            middleware: Mutex::new(Some(middleware)),
        }
    }
}

impl Backend for ShardedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sharded
    }

    fn submit(&self, requests: Vec<Request>) -> SchedResult<Completion> {
        Ok(Completion::Sharded(
            self.handle.submit_transaction(requests)?,
        ))
    }

    fn shutdown(&self) -> SchedResult<Report> {
        let middleware = self
            .middleware
            .lock()
            .map_err(|_| SchedError::Poisoned {
                what: "sharded backend shutdown lock",
            })?
            .take()
            .ok_or(SchedError::BackendShutdown { backend: "sharded" })?;
        Ok(Report::from_sharded(middleware.shutdown()))
    }

    fn queue_depth(&self) -> usize {
        self.handle.max_queue_depth()
    }

    fn abandon(&self, ta: u64) {
        self.handle.abandon_transaction(ta);
    }

    fn sharded_control(&self) -> Option<shard::ControlHandle> {
        Some(self.control.clone())
    }
}
