//! The [`Backend`] trait: what a deployment must provide to serve
//! [`crate::Session`]s.

use crate::report::Report;
use crossbeam::channel::Receiver;
use declsched::{Request, SchedError, SchedResult};
use std::fmt;

/// The pending completion of one submitted transaction, returned by
/// [`Backend::submit`].  Resolves exactly once, when every request has
/// executed (or failed).
///
/// Channel-based backends (unsharded, passthrough, custom) wrap a
/// single-shot reply channel; the sharded fleet hands back its hub-backed
/// ticket directly, so a pipelined session costs one hub synchronization
/// per completion *batch* rather than one channel pair per transaction.
pub enum Completion {
    /// A single-shot reply channel; the sender dropping without replying
    /// reads as a closed backend.
    Channel(Receiver<SchedResult<()>>),
    /// A shard-fleet ticket waiting on the fleet's completion hub.
    Sharded(shard::TxnTicket),
}

impl Completion {
    /// Block until the transaction's result is known.
    pub fn wait(self) -> SchedResult<()> {
        match self {
            Completion::Channel(rx) => match rx.recv() {
                Ok(result) => result,
                Err(_) => Err(SchedError::ChannelClosed {
                    endpoint: "backend",
                }),
            },
            Completion::Sharded(ticket) => ticket.wait(),
        }
    }
}

/// Which deployment a [`crate::Scheduler`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's single-scheduler middleware (one declarative rule over
    /// one global pending/history relation pair).
    Unsharded,
    /// The shard router fleet: N schedulers over hash-partitioned
    /// relations, with a serialized escalation lane for spanning
    /// transactions.
    Sharded,
    /// Non-scheduling passthrough: requests forwarded to a server with its
    /// native lock-based scheduler enabled (the paper's overhead baseline).
    Passthrough,
}

impl BackendKind {
    /// Stable label used in reports and benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Unsharded => "unsharded",
            BackendKind::Sharded => "sharded",
            BackendKind::Passthrough => "passthrough",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A running scheduler deployment that [`crate::Session`]s submit to.
///
/// All three shipped deployments (unsharded middleware, shard router fleet,
/// passthrough) implement this; custom backends only need the same two
/// operations.  `submit` must not block on transaction *execution* — it
/// returns a `Completion` that resolves exactly once, which is what
/// makes pipelined submission possible.
pub trait Backend: Send + Sync {
    /// Which deployment this is.
    fn kind(&self) -> BackendKind;

    /// Accept one whole transaction (requests in intra order, SLA metadata
    /// intact) and return its pending completion, which resolves exactly
    /// once when every request has executed (or failed).
    fn submit(&self, requests: Vec<Request>) -> SchedResult<Completion>;

    /// Drain outstanding work, stop the deployment and return the unified
    /// report.  The first call wins; later calls (and later submissions)
    /// fail with [`declsched::SchedError::BackendShutdown`].
    fn shutdown(&self) -> SchedResult<Report>;

    /// The deployment's live scheduling backlog — for sharded deployments
    /// the *deepest* shard queue, for the unsharded middleware its
    /// incoming-plus-pending count.  The session layer's overload-shedding
    /// policy compares this against its watermark before admitting
    /// low-tier submissions.  Backends with no observable backlog report 0
    /// (and are therefore never shed against).
    fn queue_depth(&self) -> usize {
        0
    }

    /// Release any routing state recorded for transaction `ta` — called
    /// when a client abandons a transaction mid-flight (its `Session` is
    /// dropped before a terminal was submitted), so per-transaction routing
    /// entries cannot leak.  Default: nothing to release.
    fn abandon(&self, _ta: u64) {}

    /// The sharded control-plane handle, when this deployment is a shard
    /// fleet (load sampling, hot-object sketch, placement migration).
    fn sharded_control(&self) -> Option<shard::ControlHandle> {
        None
    }
}
