//! [`Backend`] over the non-scheduling passthrough mode.
//!
//! The paper: "In this mode, the scheduler forwards the requests to the
//! server without scheduling.  This way, the server undertakes the task of
//! doing request scheduling."  To serve pipelined sessions the forwarding
//! runs on its own worker thread: transactions queue in arrival order, a
//! statement the server blocks on a native lock stays queued and is
//! retried in arrival order whenever anything else makes progress (the
//! lock holder's commit arrives as a later submission).

use crate::backend::{Backend, BackendKind, Completion};
use crate::report::Report;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use declsched::passthrough::{PassthroughOutcome, PassthroughScheduler};
use declsched::{DispatchReport, Operation, Request, SchedError, SchedResult, SchedulerMetrics};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum PassthroughMessage {
    Txn {
        requests: Vec<Request>,
        reply: Sender<SchedResult<()>>,
    },
    Shutdown,
}

pub(crate) struct PassthroughBackend {
    sender: Sender<PassthroughMessage>,
    worker: Mutex<Option<JoinHandle<Report>>>,
}

impl PassthroughBackend {
    /// Start the passthrough worker with a chaos injector threaded into
    /// the forward loop (`WorkerRound`/`WorkerCommit` on shard 0).
    pub(crate) fn start_chaos(
        table: String,
        rows: usize,
        injector: Arc<chaos::FaultInjector>,
    ) -> SchedResult<Self> {
        let scheduler = PassthroughScheduler::new(table.clone(), rows)?;
        let (sender, receiver) = unbounded::<PassthroughMessage>();
        let worker = std::thread::Builder::new()
            .name("declsched-passthrough".to_string())
            .spawn(move || forward_loop(scheduler, receiver, table, rows, injector))
            .expect("spawning the passthrough worker cannot fail");
        Ok(PassthroughBackend {
            sender,
            worker: Mutex::new(Some(worker)),
        })
    }
}

impl Backend for PassthroughBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Passthrough
    }

    fn submit(&self, requests: Vec<Request>) -> SchedResult<Completion> {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender
            .send(PassthroughMessage::Txn {
                requests,
                reply: reply_tx,
            })
            .map_err(|_| SchedError::ChannelClosed {
                endpoint: "passthrough worker",
            })?;
        Ok(Completion::Channel(reply_rx))
    }

    fn shutdown(&self) -> SchedResult<Report> {
        let worker = self
            .worker
            .lock()
            .expect("passthrough backend lock poisoned")
            .take()
            .ok_or(SchedError::BackendShutdown {
                backend: "passthrough",
            })?;
        let _ = self.sender.send(PassthroughMessage::Shutdown);
        Ok(worker
            .join()
            .expect("passthrough worker never panics during an orderly shutdown"))
    }
}

/// One queued transaction and how far it has executed.
struct InFlight {
    requests: Vec<Request>,
    next: usize,
    reply: Sender<SchedResult<()>>,
}

/// The passthrough worker body.
fn forward_loop(
    mut scheduler: PassthroughScheduler,
    receiver: Receiver<PassthroughMessage>,
    table: String,
    rows: usize,
    injector: Arc<chaos::FaultInjector>,
) -> Report {
    let started = Instant::now();
    let mut queue: VecDeque<InFlight> = VecDeque::new();
    let mut dispatch = DispatchReport::default();
    let mut executed_log: Vec<Request> = Vec::new();
    let mut transactions = 0u64;
    let mut disconnected = false;
    // Chaos kill switch: once the worker is "killed" every queued and
    // later-arriving transaction fails; only shutdown is still honoured.
    let mut killed = false;

    loop {
        match receiver.recv_timeout(Duration::from_millis(1)) {
            Ok(first) => {
                let mut handle = |msg: PassthroughMessage, disconnected: &mut bool| match msg {
                    PassthroughMessage::Txn { requests, reply } => {
                        transactions += 1;
                        if killed {
                            let _ = reply.send(Err(SchedError::Dispatch {
                                message: "chaos: passthrough worker killed".to_string(),
                            }));
                        } else if requests.is_empty() {
                            let _ = reply.send(Ok(()));
                        } else {
                            queue.push_back(InFlight {
                                requests,
                                next: 0,
                                reply,
                            });
                        }
                    }
                    PassthroughMessage::Shutdown => *disconnected = true,
                };
                handle(first, &mut disconnected);
                while let Ok(msg) = receiver.try_recv() {
                    handle(msg, &mut disconnected);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => disconnected = true,
        }

        match injector.fire(chaos::Hook::WorkerRound { shard: 0 }) {
            Some(chaos::Fault::Stall { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            Some(chaos::Fault::Kill) if !killed => {
                killed = true;
                for txn in queue.drain(..) {
                    let _ = txn.reply.send(Err(SchedError::Dispatch {
                        message: "chaos: passthrough worker killed".to_string(),
                    }));
                }
            }
            _ => {}
        }

        // Forward in arrival order until a full pass makes no progress
        // (everything left is blocked on a native lock whose holder has not
        // submitted its terminal yet).  A killed worker forwards nothing.
        loop {
            if killed {
                break;
            }
            let mut progressed = false;
            let mut index = 0;
            while index < queue.len() {
                let mut remove = false;
                loop {
                    let request = {
                        let txn = &queue[index];
                        txn.requests.get(txn.next).cloned()
                    };
                    let Some(request) = request else {
                        let txn = queue.remove(index).expect("index in bounds");
                        let _ = txn.reply.send(Ok(()));
                        remove = true;
                        break;
                    };
                    if request.op.is_terminal() {
                        if let Some(chaos::Fault::Stall { millis }) =
                            injector.fire(chaos::Hook::WorkerCommit { shard: 0 })
                        {
                            std::thread::sleep(Duration::from_millis(millis));
                        }
                    }
                    match scheduler.forward(&request) {
                        Ok(PassthroughOutcome::Executed) => {
                            progressed = true;
                            count(&mut dispatch, request.op);
                            executed_log.push(request);
                            queue[index].next += 1;
                        }
                        Ok(PassthroughOutcome::Blocked) => break,
                        Ok(PassthroughOutcome::Aborted) => {
                            progressed = true;
                            dispatch.aborts += 1;
                            let ta = request.ta;
                            let txn = queue.remove(index).expect("index in bounds");
                            let _ = txn.reply.send(Err(SchedError::Dispatch {
                                message: format!(
                                    "transaction T{ta} aborted as a native deadlock victim"
                                ),
                            }));
                            remove = true;
                            break;
                        }
                        Err(e) => {
                            progressed = true;
                            let txn = queue.remove(index).expect("index in bounds");
                            let _ = txn.reply.send(Err(e));
                            remove = true;
                            break;
                        }
                    }
                }
                if !remove {
                    index += 1;
                }
            }
            if !progressed {
                break;
            }
        }

        if disconnected {
            if !queue.is_empty() {
                // Nothing left can make progress and no unblocking
                // submission can arrive any more: fail the stragglers.
                for txn in queue.drain(..) {
                    let ta = txn.requests.first().map(|r| r.ta).unwrap_or(0);
                    let _ = txn.reply.send(Err(SchedError::TransactionFinished { ta }));
                }
            }
            break;
        }
    }

    let final_rows = declsched::dispatch::snapshot_final_rows(scheduler.engine(), &table, rows);
    Report {
        backend: BackendKind::Passthrough,
        transactions,
        rounds: 0,
        scheduler: SchedulerMetrics::default(),
        dispatch,
        executed_log,
        final_rows,
        sharded: None,
        server: Some(scheduler.server_metrics()),
        tiers: Vec::new(),
        trace: obs::Trace::default(),
        anomalies: Vec::new(),
        wall: started.elapsed(),
    }
}

fn count(dispatch: &mut DispatchReport, op: Operation) {
    match op {
        Operation::Read => {
            dispatch.executed += 1;
            dispatch.reads += 1;
        }
        Operation::Write => {
            dispatch.executed += 1;
            dispatch.writes += 1;
        }
        Operation::Commit => dispatch.commits += 1,
        Operation::Abort => dispatch.aborts += 1,
    }
}
