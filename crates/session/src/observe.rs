//! Session-side observability: the submission/outcome counters, the
//! `Submitted`/`Shed` and terminal lifecycle events, and the shed-burst
//! anomaly hook.
//!
//! The session layer is where a transaction's lifecycle begins (admission)
//! and ends (the client observes the result), so it owns the bracketing
//! events of every flight-recorder timeline; everything in between is
//! emitted by the backend the deployment runs.

use declsched::{SchedError, SchedResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// Consecutive shed submissions that freeze an anomaly window — one window
/// per burst, frozen the moment the streak reaches the threshold.
pub(crate) const SHED_BURST: u64 = 32;

/// Shared observability state of one deployment, cloned into every
/// [`crate::Session`] and attached to every ticket cell.
pub(crate) struct SessionObs {
    /// Event emission (terminals come from whichever thread first awaits a
    /// ticket, so the recorder must be the shared flavour).
    pub(crate) recorder: obs::SharedRecorder,
    submitted: obs::Counter,
    committed: obs::Counter,
    aborted: obs::Counter,
    shed: obs::Counter,
    /// Consecutive shed submissions; reset by any admitted one.
    shed_streak: AtomicU64,
}

impl SessionObs {
    pub(crate) fn new(sink: &obs::TraceSink, registry: &obs::Registry) -> Self {
        SessionObs {
            recorder: sink.shared_recorder(),
            submitted: registry.counter("session.submitted"),
            committed: registry.counter("session.committed"),
            aborted: registry.counter("session.aborted"),
            shed: registry.counter("session.shed"),
            shed_streak: AtomicU64::new(0),
        }
    }

    /// An admitted submission: count it, break any shed streak, and emit
    /// `Submitted` for each request when the transaction is sampled.
    pub(crate) fn record_submitted(&self, ta: u64, sampled_intras: Option<&[u32]>) {
        self.submitted.inc();
        self.shed_streak.store(0, Ordering::Relaxed);
        if let Some(intras) = sampled_intras {
            let at_us = self.recorder.now_us();
            self.recorder
                .emit_group_at(ta, intras, at_us, obs::EventKind::Submitted);
        }
    }

    /// A submission rejected by the overload-shedding policy.  The request
    /// never reaches the scheduler, so its timeline is the two-event
    /// `Submitted → Shed` bracket.  A burst of [`SHED_BURST`] consecutive
    /// rejections freezes an anomaly window (once per burst).
    pub(crate) fn record_shed(&self, ta: u64, sampled_intras: Option<&[u32]>) {
        self.shed.inc();
        if let Some(intras) = sampled_intras {
            let at_us = self.recorder.now_us();
            self.recorder
                .emit_group_at(ta, intras, at_us, obs::EventKind::Submitted);
            self.recorder
                .emit_group_at(ta, intras, at_us, obs::EventKind::Shed);
        }
        let streak = self.shed_streak.fetch_add(1, Ordering::Relaxed) + 1;
        if streak == SHED_BURST {
            self.recorder.freeze_anomaly(&format!(
                "shed burst: {SHED_BURST} consecutive submissions rejected (last: T{ta})"
            ));
        }
    }

    /// The result of an admitted transaction, observed exactly once per
    /// ticket (the cell caches it): outcome counters, the terminal
    /// lifecycle event for each sampled request, and an anomaly window when
    /// the failure is a poisoned component or a native deadlock victim.
    pub(crate) fn record_outcome(
        &self,
        ta: u64,
        sampled_intras: Option<&[u32]>,
        result: &SchedResult<()>,
    ) {
        let kind = match result {
            Ok(()) => {
                self.committed.inc();
                obs::EventKind::Committed
            }
            Err(error) => {
                self.aborted.inc();
                let message = error.to_string();
                if matches!(error, SchedError::Poisoned { .. }) || message.contains("deadlock") {
                    self.recorder.freeze_anomaly(&format!("T{ta}: {message}"));
                }
                obs::EventKind::Aborted
            }
        };
        if let Some(intras) = sampled_intras {
            let at_us = self.recorder.now_us();
            self.recorder.emit_group_at(ta, intras, at_us, kind);
        }
    }
}
