//! [`Backend`] over the paper's unsharded middleware.

use crate::backend::{Backend, BackendKind, Completion};
use crate::report::Report;
use declsched::{ClientHandle, Middleware, Request, SchedError, SchedResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub(crate) struct UnshardedBackend {
    /// Submission side: a cheap clone of the control channel, usable
    /// without touching the shutdown lock.
    handle: ClientHandle,
    /// Live scheduler queue depth, shared with the scheduler thread.
    depth: std::sync::Arc<AtomicU64>,
    /// Ownership side: consumed by the first shutdown.
    middleware: Mutex<Option<Middleware>>,
    transactions: AtomicU64,
}

impl UnshardedBackend {
    pub(crate) fn new(middleware: Middleware) -> Self {
        UnshardedBackend {
            handle: middleware.connect(),
            depth: middleware.depth_gauge(),
            middleware: Mutex::new(Some(middleware)),
            transactions: AtomicU64::new(0),
        }
    }
}

impl Backend for UnshardedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Unsharded
    }

    fn submit(&self, requests: Vec<Request>) -> SchedResult<Completion> {
        self.transactions.fetch_add(1, Ordering::Relaxed);
        Ok(Completion::Channel(
            self.handle.submit_transaction(requests)?.into_receiver(),
        ))
    }

    fn shutdown(&self) -> SchedResult<Report> {
        let middleware = self
            .middleware
            .lock()
            .map_err(|_| SchedError::Poisoned {
                what: "unsharded backend shutdown lock",
            })?
            .take()
            .ok_or(SchedError::BackendShutdown {
                backend: "unsharded",
            })?;
        Ok(Report::from_unsharded(
            middleware.shutdown(),
            self.transactions.load(Ordering::Relaxed),
        ))
    }

    fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed) as usize
    }
}
