//! Per-SLA-tier admission and latency counters.
//!
//! Every transaction submitted with SLA metadata is accounted against its
//! service class: how many were admitted, how many the overload-protection
//! policy shed, how many completed or failed, and the observed
//! submit-to-completion latency.  The counters ride on the shared
//! [`TierRegistry`] owned by the `Scheduler`, so every `Session` of a
//! deployment accumulates into one per-tier view, reported as
//! [`crate::Report::tiers`] at shutdown.

use std::collections::HashMap;
use std::sync::Mutex;

/// Admission and latency counters for one SLA service class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TierReport {
    /// Service class name (e.g. `premium`, `standard`, `free`).
    pub class: &'static str,
    /// Transactions submitted with this class (admitted + shed).
    pub submitted: u64,
    /// Transactions that completed successfully.
    pub completed: u64,
    /// Transactions rejected by the overload-shedding policy (resolved
    /// with [`declsched::SchedError::Shed`]; never admitted).
    pub shed: u64,
    /// Transactions that failed for any other reason.
    pub failed: u64,
    /// Sum of observed submit-to-completion latencies, microseconds
    /// (completed transactions only).
    pub total_latency_us: u64,
    /// Largest observed submit-to-completion latency, microseconds.
    pub max_latency_us: u64,
}

impl TierReport {
    /// Mean completion latency in milliseconds (`None` before the first
    /// completion).
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.completed == 0 {
            None
        } else {
            Some(self.total_latency_us as f64 / self.completed as f64 / 1e3)
        }
    }

    /// Fraction of submissions shed.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }
}

/// The deployment-wide per-tier accumulator.
#[derive(Debug, Default)]
pub(crate) struct TierRegistry {
    inner: Mutex<HashMap<&'static str, TierReport>>,
}

impl TierRegistry {
    fn with_entry(&self, class: &'static str, update: impl FnOnce(&mut TierReport)) {
        let mut inner = match self.inner.lock() {
            Ok(inner) => inner,
            // Metrics are best-effort: a poisoned registry keeps counting.
            Err(poisoned) => poisoned.into_inner(),
        };
        let entry = inner.entry(class).or_insert_with(|| TierReport {
            class,
            ..TierReport::default()
        });
        update(entry);
    }

    /// Count one admitted submission of `class`.
    pub(crate) fn record_submitted(&self, class: &'static str) {
        self.with_entry(class, |t| t.submitted += 1);
    }

    /// Count one shed submission of `class` (also counts as submitted).
    pub(crate) fn record_shed(&self, class: &'static str) {
        self.with_entry(class, |t| {
            t.submitted += 1;
            t.shed += 1;
        });
    }

    /// Count one observed completion (or failure) of `class`.
    pub(crate) fn record_outcome(&self, class: &'static str, latency_us: u64, ok: bool) {
        self.with_entry(class, |t| {
            if ok {
                t.completed += 1;
                t.total_latency_us += latency_us;
                t.max_latency_us = t.max_latency_us.max(latency_us);
            } else {
                t.failed += 1;
            }
        });
    }

    /// Snapshot every tier, sorted by class name for stable output.
    pub(crate) fn snapshot(&self) -> Vec<TierReport> {
        let inner = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut tiers: Vec<TierReport> = inner.values().cloned().collect();
        tiers.sort_by_key(|t| t.class);
        tiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_per_class() {
        let registry = TierRegistry::default();
        registry.record_submitted("premium");
        registry.record_outcome("premium", 1_500, true);
        registry.record_submitted("free");
        registry.record_outcome("free", 9_000, false);
        registry.record_shed("free");
        let tiers = registry.snapshot();
        assert_eq!(tiers.len(), 2);
        let free = &tiers[0];
        assert_eq!(free.class, "free");
        assert_eq!(free.submitted, 2);
        assert_eq!(free.shed, 1);
        assert_eq!(free.failed, 1);
        assert_eq!(free.completed, 0);
        assert_eq!(free.mean_latency_ms(), None);
        assert!((free.shed_rate() - 0.5).abs() < f64::EPSILON);
        let premium = &tiers[1];
        assert_eq!(premium.completed, 1);
        assert_eq!(premium.max_latency_us, 1_500);
        assert_eq!(premium.mean_latency_ms(), Some(1.5));
    }
}
