//! The deployment entry point: [`Scheduler::builder`].

use crate::backend::{Backend, BackendKind};
use crate::observe::SessionObs;
use crate::passthrough::PassthroughBackend;
use crate::report::Report;
use crate::sess::Session;
use crate::sharded::ShardedBackend;
use crate::tier::TierRegistry;
use crate::unsharded::UnshardedBackend;
use declsched::protocol::SchedulingPolicy;
use declsched::{Middleware, Protocol, ProtocolKind, SchedResult, SchedulerConfig};
use relalg::Table;
use shard::{ShardConfig, ShardedMiddleware};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The session layer's SLA-aware overload-shedding policy.
///
/// While the backend's live queue depth ([`crate::Backend::queue_depth`])
/// is at or past `queue_watermark`, *opening* submissions whose SLA
/// priority is below `protect_priority` are rejected up front: their
/// [`crate::Ticket`] resolves immediately with the typed
/// [`declsched::SchedError::Shed`] outcome and nothing reaches the
/// scheduler.  Transactions at or above the protected priority — and
/// continuations of transactions already admitted — always pass, which is
/// what keeps the premium tier's tail latency bounded while the deployment
/// is driven past capacity.
///
/// Submissions without SLA metadata are never shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPolicy {
    /// Queue depth at which shedding engages (sustained backlog, not a
    /// transient round's worth of requests).
    pub queue_watermark: usize,
    /// Minimum SLA priority that is never shed.
    pub protect_priority: i64,
}

impl ShedPolicy {
    /// A policy shedding everything below `protect_priority` once the
    /// backlog reaches `queue_watermark`.
    pub fn new(queue_watermark: usize, protect_priority: i64) -> Self {
        ShedPolicy {
            queue_watermark,
            protect_priority,
        }
    }
}

/// The live shed policy, shared by the scheduler handle and every
/// connected session so the policy can be swapped mid-run — by
/// [`Scheduler::set_shed_policy`] or by a chaos `ShedFlip` fault —
/// without reconnecting anything.
#[derive(Debug, Default)]
pub(crate) struct ShedState {
    engaged: AtomicBool,
    watermark: AtomicUsize,
    protect: AtomicI64,
}

impl ShedState {
    pub(crate) fn new(initial: Option<ShedPolicy>) -> Self {
        let state = ShedState::default();
        state.set(initial);
        state
    }

    /// Swap the live policy (`None` disengages shedding).
    pub(crate) fn set(&self, policy: Option<ShedPolicy>) {
        match policy {
            Some(policy) => {
                // Parameters land before the engage flag so a concurrent
                // reader never observes the flag with stale parameters.
                self.watermark
                    .store(policy.queue_watermark, Ordering::Relaxed);
                self.protect
                    .store(policy.protect_priority, Ordering::Relaxed);
                self.engaged.store(true, Ordering::Release);
            }
            None => self.engaged.store(false, Ordering::Release),
        }
    }

    /// The currently engaged policy, if any.
    pub(crate) fn get(&self) -> Option<ShedPolicy> {
        self.engaged.load(Ordering::Acquire).then(|| ShedPolicy {
            queue_watermark: self.watermark.load(Ordering::Relaxed),
            protect_priority: self.protect.load(Ordering::Relaxed),
        })
    }
}

/// Which deployment the builder will start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Topology {
    Unsharded,
    Sharded(usize),
    Passthrough,
}

/// Configures and starts a scheduler deployment.
///
/// Defaults: the paper's SS2PL protocol on the relational-algebra back-end,
/// default [`SchedulerConfig`], a 10 000-row `bench` table, unsharded.
pub struct SchedulerBuilder {
    policy: SchedulingPolicy,
    config: SchedulerConfig,
    table: String,
    rows: usize,
    topology: Topology,
    aux_relations: Vec<Table>,
    shed: Option<ShedPolicy>,
    trace: obs::TraceConfig,
    chaos: Option<chaos::FaultPlan>,
}

impl SchedulerBuilder {
    fn new() -> Self {
        SchedulerBuilder {
            policy: Protocol::algebra(ProtocolKind::Ss2pl).into(),
            config: SchedulerConfig::default(),
            table: "bench".to_string(),
            rows: 10_000,
            topology: Topology::Unsharded,
            aux_relations: Vec::new(),
            shed: None,
            trace: obs::TraceConfig::off(),
            chaos: None,
        }
    }

    /// The declarative scheduling policy (a [`declsched::Protocol`], an
    /// [`declsched::AdaptiveProtocol`], or anything convertible).  Ignored
    /// in passthrough mode, where the server's native scheduler decides.
    pub fn policy(mut self, policy: impl Into<SchedulingPolicy>) -> Self {
        self.policy = policy.into();
        self
    }

    /// The scheduler configuration (trigger, history pruning, intra-order
    /// enforcement), applied to every scheduler the deployment runs.
    pub fn scheduler_config(mut self, config: SchedulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Name and size of the benchmark table the server(s) serve.
    pub fn table(mut self, table: impl Into<String>, rows: usize) -> Self {
        self.table = table.into();
        self.rows = rows;
        self
    }

    /// Deploy the paper's single-scheduler middleware (the default).
    pub fn unsharded(mut self) -> Self {
        self.topology = Topology::Unsharded;
        self
    }

    /// Deploy the shard router fleet with `shards` worker shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.topology = Topology::Sharded(shards.max(1));
        self
    }

    /// Deploy the non-scheduling passthrough (native server locking) — the
    /// paper's overhead baseline.
    pub fn passthrough(mut self) -> Self {
        self.topology = Topology::Passthrough;
        self
    }

    /// Register an auxiliary relation (e.g. `object_class` for consistency
    /// rationing) with every scheduler of the deployment.
    pub fn aux_relation(mut self, table: Table) -> Self {
        self.aux_relations.push(table);
        self
    }

    /// Enable SLA-aware overload shedding (off by default; see
    /// [`ShedPolicy`]).
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed = Some(policy);
        self
    }

    /// Enable the request flight recorder (off by default; see
    /// [`obs::TraceConfig`]).  With tracing on, every sampled transaction's
    /// lifecycle events land in per-worker ring buffers and come back
    /// merged as [`Report::trace`] at shutdown.  Metrics
    /// ([`Scheduler::registry`]) are always on — this knob only governs
    /// event recording.
    pub fn trace(mut self, config: obs::TraceConfig) -> Self {
        self.trace = config;
        self
    }

    /// Thread a deterministic chaos [`chaos::FaultPlan`] through the
    /// deployment (off by default).  Every layer fires its named hook
    /// points against the plan's injector: the scheduler/worker loops
    /// (`WorkerRound`, `WorkerCommit`), the shard router's fast-path sends
    /// (`RouterSend`), the escalation lane (`LaneJob`) and the session
    /// submission path (`SessionSubmit`, where a `ShedFlip` swaps the live
    /// [`ShedPolicy`] mid-run).  Inspect what actually fired through
    /// [`Scheduler::chaos_injector`].
    pub fn chaos(mut self, plan: chaos::FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Start the deployment.
    pub fn build(self) -> SchedResult<Scheduler> {
        let sink = obs::TraceSink::new(self.trace);
        let registry = Arc::new(obs::Registry::new());
        let injector = Arc::new(match &self.chaos {
            Some(plan) => chaos::FaultInjector::new(plan),
            None => chaos::FaultInjector::disabled(),
        });
        let backend: Arc<dyn Backend> = match self.topology {
            Topology::Unsharded => {
                Arc::new(UnshardedBackend::new(Middleware::start_chaos_observed(
                    self.policy,
                    self.config,
                    self.table,
                    self.rows,
                    self.aux_relations,
                    sink.clone(),
                    Arc::clone(&registry),
                    Arc::clone(&injector),
                )?))
            }
            Topology::Sharded(shards) => {
                let mut config = ShardConfig::new(shards, self.policy)
                    .with_scheduler(self.config)
                    .with_table(self.table, self.rows)
                    .with_chaos(Arc::clone(&injector));
                for aux in self.aux_relations {
                    config = config.with_aux_relation(aux);
                }
                Arc::new(ShardedBackend::new(
                    ShardedMiddleware::with_config_observed(
                        config,
                        sink.clone(),
                        Arc::clone(&registry),
                    )?,
                ))
            }
            Topology::Passthrough => Arc::new(PassthroughBackend::start_chaos(
                self.table,
                self.rows,
                Arc::clone(&injector),
            )?),
        };
        let observe = Arc::new(SessionObs::new(&sink, &registry));
        Ok(Scheduler {
            backend,
            tiers: Arc::new(TierRegistry::default()),
            shed: Arc::new(ShedState::new(self.shed)),
            sink,
            registry,
            observe,
            injector,
        })
    }
}

/// A running scheduler deployment — the unified control instance clients
/// connect to, whatever topology sits behind it.
pub struct Scheduler {
    backend: Arc<dyn Backend>,
    /// Per-SLA-tier admission/latency counters shared by every session.
    tiers: Arc<TierRegistry>,
    /// Live shed policy shared with every connected session.
    shed: Arc<ShedState>,
    /// Flight-recorder sink every layer of the deployment records into.
    sink: obs::TraceSink,
    /// Live metrics registry every layer of the deployment registers into.
    registry: Arc<obs::Registry>,
    /// Session-side counters/events, shared by every connected session.
    observe: Arc<SessionObs>,
    /// Chaos fault injector (disabled unless built with
    /// [`SchedulerBuilder::chaos`]).
    injector: Arc<chaos::FaultInjector>,
}

impl Scheduler {
    /// Start configuring a deployment.
    pub fn builder() -> SchedulerBuilder {
        SchedulerBuilder::new()
    }

    /// Wrap a custom [`Backend`] (the three shipped deployments come from
    /// [`Scheduler::builder`]).  Custom backends are not threaded into the
    /// flight recorder: the trace stays empty and only session-level
    /// metrics are recorded.
    pub fn from_backend(backend: Arc<dyn Backend>) -> Self {
        let sink = obs::TraceSink::disabled();
        let registry = Arc::new(obs::Registry::new());
        let observe = Arc::new(SessionObs::new(&sink, &registry));
        Scheduler {
            backend,
            tiers: Arc::new(TierRegistry::default()),
            shed: Arc::new(ShedState::new(None)),
            sink,
            registry,
            observe,
            injector: Arc::new(chaos::FaultInjector::disabled()),
        }
    }

    /// Which deployment this is.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Connect a new client session (the control instance "creates a
    /// separate client worker for each connected client").
    pub fn connect(&self) -> Session {
        Session::new(
            Arc::clone(&self.backend),
            Arc::clone(&self.tiers),
            Arc::clone(&self.shed),
            Arc::clone(&self.observe),
            Arc::clone(&self.injector),
        )
    }

    /// Swap the live overload-shedding policy for every connected (and
    /// future) session; `None` disengages shedding.  Safe mid-run — this
    /// is also the lever a chaos `ShedFlip` fault pulls.
    pub fn set_shed_policy(&self, policy: Option<ShedPolicy>) {
        self.shed.set(policy);
    }

    /// The currently engaged overload-shedding policy, if any.
    pub fn shed_policy(&self) -> Option<ShedPolicy> {
        self.shed.get()
    }

    /// The deployment's chaos fault injector — inspect
    /// [`chaos::FaultInjector::fired`] after a run to see which scripted
    /// faults actually landed.  Disabled (never fires) unless the
    /// deployment was built with [`SchedulerBuilder::chaos`].
    pub fn chaos_injector(&self) -> Arc<chaos::FaultInjector> {
        Arc::clone(&self.injector)
    }

    /// The deployment's live metrics registry — snapshot it mid-run
    /// ([`obs::Registry::snapshot`]) or dump it in Prometheus text
    /// exposition format ([`obs::Registry::render_text`]).  Every layer
    /// (scheduler core, shard workers, router, escalation lane, session
    /// shedding) publishes here; the control plane joins via
    /// `ControlPlane::start_observed`.
    pub fn registry(&self) -> Arc<obs::Registry> {
        Arc::clone(&self.registry)
    }

    /// The deployment's live scheduling backlog (see
    /// [`Backend::queue_depth`]).
    pub fn queue_depth(&self) -> usize {
        self.backend.queue_depth()
    }

    /// The sharded control-plane handle (load sampling, hot-object sketch,
    /// placement migration) — `Some` only for `.shards(n)` deployments.
    /// The `control` crate's `ControlPlane` drives this.
    pub fn sharded_control(&self) -> Option<shard::ControlHandle> {
        self.backend.sharded_control()
    }

    /// Drain outstanding work, stop the deployment and return the unified
    /// [`Report`].  Transactions submitted through still-alive sessions
    /// after this call fail with a channel error.
    ///
    /// # Panics
    ///
    /// Panics if the backend was already shut down — only reachable when
    /// the same backend `Arc` was wrapped into several schedulers via
    /// [`Scheduler::from_backend`]; use [`Scheduler::try_shutdown`] there.
    pub fn shutdown(self) -> Report {
        self.try_shutdown()
            .expect("backend already shut down through another handle — use try_shutdown when sharing a backend")
    }

    /// Like [`Scheduler::shutdown`], but surfaces
    /// [`declsched::SchedError::BackendShutdown`] instead of panicking when
    /// another handle over the same backend shut it down first.
    pub fn try_shutdown(self) -> SchedResult<Report> {
        // Backend shutdown joins every worker thread, so by the time it
        // returns all thread-owned recorders have flushed into the sink
        // and the merged trace is complete.
        let mut report = self.backend.shutdown()?;
        report.tiers = self.tiers.snapshot();
        report.trace = self.sink.merged_trace();
        report.anomalies = self.sink.take_anomalies();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Txn;
    use declsched::{SchedError, TriggerPolicy};

    fn builder() -> SchedulerBuilder {
        Scheduler::builder()
            .table("bench", 256)
            .scheduler_config(SchedulerConfig {
                trigger: TriggerPolicy::Hybrid {
                    interval_ms: 1,
                    threshold: 8,
                },
                ..SchedulerConfig::default()
            })
    }

    fn drive(scheduler: Scheduler) -> Report {
        let mut session = scheduler.connect();
        let tickets: Vec<_> = (1..=6u64)
            .map(|ta| {
                session
                    .submit(Txn::new(ta).write(ta as i64, ta as i64 * 10).commit())
                    .unwrap()
            })
            .collect();
        // Out-of-order wait on half; drain settles the rest.
        for ticket in tickets.into_iter().rev().take(3) {
            let receipt = ticket.wait().unwrap();
            assert_eq!(receipt.statements, 2);
        }
        assert!(session.in_flight() <= 3);
        session.drain().unwrap();
        assert_eq!(session.in_flight(), 0);
        scheduler.shutdown()
    }

    #[test]
    fn unsharded_backend_round_trips() {
        let report = drive(builder().build().unwrap());
        assert_eq!(report.backend, BackendKind::Unsharded);
        assert_eq!(report.transactions, 6);
        assert_eq!(report.dispatch.commits, 6);
        assert_eq!(report.dispatch.writes, 6);
        assert!(report.rounds >= 1);
        assert_eq!(report.final_rows[3], 30);
        assert!(report.sharded.is_none() && report.server.is_none());
    }

    #[test]
    fn sharded_backend_round_trips() {
        let report = drive(builder().shards(3).build().unwrap());
        assert_eq!(report.backend, BackendKind::Sharded);
        assert_eq!(report.transactions, 6);
        assert_eq!(report.dispatch.commits, 6);
        let detail = report.sharded.as_ref().expect("sharded detail");
        assert_eq!(detail.shards, 3);
        assert_eq!(detail.cross_shard_transactions, 0);
        assert_eq!(report.final_rows[3], 30);
    }

    #[test]
    fn passthrough_backend_round_trips() {
        let report = drive(builder().passthrough().build().unwrap());
        assert_eq!(report.backend, BackendKind::Passthrough);
        assert_eq!(report.transactions, 6);
        assert_eq!(report.dispatch.commits, 6);
        assert_eq!(report.rounds, 0, "passthrough never runs a rule round");
        let server = report.server.expect("native engine metrics");
        assert_eq!(server.commits, 6);
        assert_eq!(report.final_rows[3], 30);
    }

    #[test]
    fn passthrough_blocks_and_retries_conflicting_pipelined_transactions() {
        // T1 takes a native write lock and commits only via a later
        // submission; T2 (pipelined behind it) must block on the server and
        // still complete once T1's terminal arrives.
        let scheduler = builder().passthrough().build().unwrap();
        let mut session = scheduler.connect();
        let hold = session.submit(Txn::new(1).write(7, 1)).unwrap();
        let blocked = session.submit(Txn::new(2).write(7, 2).commit()).unwrap();
        hold.wait().unwrap();
        let commit = session.submit(Txn::resume(1, 1).commit()).unwrap();
        commit.wait().unwrap();
        blocked.wait().unwrap();
        let report = scheduler.shutdown();
        assert_eq!(report.dispatch.commits, 2);
        let server = report.server.expect("native engine metrics");
        assert!(server.lock_waits >= 1, "the server must have blocked T2");
        assert_eq!(report.final_rows[7], 2);
        // Admission order on the contested object: T1's write before T2's.
        let order: Vec<u64> = report.object_order(7).iter().map(|o| o.0).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn double_shutdown_is_rejected_at_the_backend() {
        let scheduler = builder().build().unwrap();
        let backend = Arc::clone(&scheduler.backend);
        let _ = scheduler.shutdown();
        let err = backend.shutdown().unwrap_err();
        assert!(matches!(err, SchedError::BackendShutdown { .. }));
        // Submissions after shutdown fail instead of hanging.
        let err = backend.submit(vec![]).map(|_| ()).unwrap_err();
        assert!(matches!(err, SchedError::ChannelClosed { .. }));
    }
}
