//! The unified run report, replacing the per-deployment
//! `MiddlewareReport` / `ShardedReport` pair at the client surface.

use crate::backend::BackendKind;
use crate::tier::TierReport;
use declsched::{shard_of, DispatchReport, MiddlewareReport, Request, SchedulerMetrics};
use shard::{EscalationStats, ShardReport, ShardedReport};
use std::collections::HashMap;
use std::time::Duration;
use txnstore::EngineMetrics;

/// Sharded-deployment detail embedded in a [`Report`].
#[derive(Debug, Clone)]
pub struct ShardedDetail {
    /// Number of shards.
    pub shards: usize,
    /// Transactions that took the serialized escalation lane.
    pub cross_shard_transactions: u64,
    /// Escalation-lane counters.
    pub escalation: EscalationStats,
    /// Peak pending-relation size over all shards.
    pub peak_pending: usize,
    /// Homes-map entries still live at shutdown (0 on a clean run — the
    /// leak witness the router regression tests assert on).
    pub unreclaimed_homes: u64,
    /// Final placement overlay: objects living away from their hash home,
    /// with the shard they were migrated to.
    pub placement: Vec<(i64, usize)>,
    /// Final placement epoch (number of effective placement changes).
    pub placement_epoch: u64,
    /// The raw per-shard reports (index = shard id).
    pub reports: Vec<ShardReport>,
}

/// Summary of a whole run, identical in shape for every backend so
/// deployments can be compared apples-to-apples from one scenario
/// definition.
#[derive(Debug, Clone)]
pub struct Report {
    /// Which deployment produced this report.
    pub backend: BackendKind,
    /// Transactions submitted through sessions.
    pub transactions: u64,
    /// Scheduling rounds executed (0 in passthrough mode).
    pub rounds: u64,
    /// Merged scheduler-side metrics (zeroed in passthrough mode).
    pub scheduler: SchedulerMetrics,
    /// Server-side execution totals.  Note that a sharded deployment
    /// commits a spanning transaction once on *every* touched engine.
    pub dispatch: DispatchReport,
    /// Every request executed, in execution order (per shard concatenated
    /// for sharded runs — an object lives on exactly one shard, so
    /// per-object order is total).
    pub executed_log: Vec<Request>,
    /// Final value of every benchmark-table row (index = row key; merged
    /// by home shard for sharded runs).
    pub final_rows: Vec<i64>,
    /// Sharded-deployment detail, when the backend is sharded.
    pub sharded: Option<ShardedDetail>,
    /// The server's native scheduler metrics (lock waits, deadlocks), when
    /// the backend is passthrough.
    pub server: Option<EngineMetrics>,
    /// Per-SLA-tier admission/latency counters (empty when no transaction
    /// carried SLA metadata), accumulated by the session layer.
    pub tiers: Vec<TierReport>,
    /// The merged flight-recorder trace (empty unless the deployment was
    /// built with [`crate::SchedulerBuilder::trace`]): every sampled
    /// request's lifecycle events, time-ordered across all workers.  Query
    /// with [`obs::Trace::timeline`] / [`obs::Trace::phase_histograms`].
    pub trace: obs::Trace,
    /// Frozen anomaly windows (rule failures, deadlock victims, shed
    /// bursts, rehomes): the events that led up to each incident.
    pub anomalies: Vec<obs::AnomalyWindow>,
    /// Wall-clock duration from backend start to shutdown.
    pub wall: Duration,
}

impl Report {
    /// Committed transactions per wall-clock second.
    pub fn commits_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.dispatch.commits as f64 / secs
        }
    }

    /// Executed requests (data statements + terminals) per wall-clock
    /// second.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.executed_log.len() as f64 / secs
        }
    }

    /// The per-object execution order of data operations:
    /// `(ta, intra, is_write)` triples for `object`, in execution order.
    /// This is the admission-order view cross-backend equivalence tests
    /// compare.
    pub fn object_order(&self, object: i64) -> Vec<(u64, u32, bool)> {
        self.executed_log
            .iter()
            .filter(|r| r.op.is_data() && r.object == object)
            .map(|r| (r.ta, r.intra, r.op == declsched::Operation::Write))
            .collect()
    }

    pub(crate) fn from_unsharded(report: MiddlewareReport, transactions: u64) -> Self {
        Report {
            backend: BackendKind::Unsharded,
            transactions,
            rounds: report.scheduler.rounds,
            scheduler: report.scheduler,
            dispatch: report.dispatch,
            executed_log: report.executed_log,
            final_rows: report.final_rows,
            sharded: None,
            server: None,
            tiers: Vec::new(),
            trace: obs::Trace::default(),
            anomalies: Vec::new(),
            wall: report.wall,
        }
    }

    pub(crate) fn from_sharded(report: ShardedReport) -> Self {
        let metrics = &report.metrics;
        let shards = metrics.shards.max(1);
        // Merge final rows by *final* home shard — the hash default plus
        // the placement overlay for migrated objects.  The router
        // guarantees an object is only ever written through its (current)
        // home shard's engine, and a migration copies the row value to the
        // new home, so the final home's copy is authoritative.
        let overlay: HashMap<i64, usize> = report.placement.iter().copied().collect();
        let rows = report
            .shards
            .iter()
            .map(|s| s.final_rows.len())
            .max()
            .unwrap_or(0);
        let final_rows: Vec<i64> = (0..rows)
            .map(|row| {
                let home = overlay
                    .get(&(row as i64))
                    .copied()
                    .unwrap_or_else(|| shard_of(row as i64, shards));
                report
                    .shards
                    .get(home)
                    .and_then(|s| s.final_rows.get(row).copied())
                    .unwrap_or(0)
            })
            .collect();
        let executed_log: Vec<Request> = report
            .shards
            .iter()
            .flat_map(|s| s.executed_log.iter().cloned())
            .collect();
        Report {
            backend: BackendKind::Sharded,
            transactions: metrics.transactions,
            rounds: metrics.merged.rounds,
            scheduler: metrics.merged,
            dispatch: metrics.dispatch,
            executed_log,
            final_rows,
            sharded: Some(ShardedDetail {
                shards,
                cross_shard_transactions: metrics.cross_shard_transactions,
                escalation: metrics.escalation,
                peak_pending: metrics.peak_pending,
                unreclaimed_homes: metrics.unreclaimed_homes,
                placement: report.placement,
                placement_epoch: metrics.placement_epoch,
                reports: report.shards,
            }),
            server: None,
            tiers: Vec::new(),
            trace: obs::Trace::default(),
            anomalies: Vec::new(),
            wall: metrics.wall,
        }
    }
}
