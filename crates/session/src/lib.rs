//! # session — the unified client API of the declarative scheduler
//!
//! The paper's middleware exposes **one** control-instance / client-worker
//! surface to clients, no matter what sits behind it.  This crate is that
//! surface for the whole reproduction: a single entry point over the
//! unsharded middleware, the sharded router fleet and the non-scheduling
//! passthrough mode, so every workload, benchmark and example runs
//! unmodified against any deployment.
//!
//! ```text
//!   Scheduler::builder()                 Session::submit(txn) -> Ticket
//!     .policy(...)            ┌──────────────────────────────────────────┐
//!     .table("bench", rows)   │  Backend (trait)                         │
//!     .shards(4)         ──►  │   ├─ unsharded middleware (1 scheduler)  │
//!     .build()?               │   ├─ shard router fleet   (N schedulers) │
//!                             │   └─ passthrough          (native locks) │
//!   Scheduler::connect()      └──────────────────────────────────────────┘
//!     -> Session              Scheduler::shutdown() -> Report (unified)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use session::{Scheduler, Txn};
//!
//! let scheduler = Scheduler::builder()
//!     .table("accounts", 100)
//!     .build()
//!     .expect("scheduler starts");
//! let mut session = scheduler.connect();
//!
//! // Pipelined: both transactions are in flight before either is awaited.
//! let t1 = session.submit(Txn::new(1).write(42, 7).commit()).unwrap();
//! let t2 = session.submit(Txn::new(2).write(42, 9).commit()).unwrap();
//! t2.wait().unwrap();
//! t1.wait().unwrap();
//!
//! let report = scheduler.shutdown();
//! assert_eq!(report.dispatch.commits, 2);
//! ```
//!
//! Swapping `.shards(4)` or `.passthrough()` into the builder changes the
//! deployment — nothing else in the driver code changes.
//!
//! ## Pipelined submission
//!
//! [`Session::submit`] never blocks: it hands the transaction to the
//! backend and returns a [`Ticket`] immediately, so one client thread can
//! keep dozens of transactions in flight.  [`Ticket::wait`] blocks until
//! that transaction has fully executed; tickets may be awaited in any
//! order, and dropping one without waiting neither loses the transaction
//! nor wedges the backend.  [`Session::drain`] awaits everything the
//! session still has in flight.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod backend;
mod builder;
mod observe;
mod passthrough;
mod report;
mod sess;
mod sharded;
mod ticket;
mod tier;
mod txn;
mod unsharded;

/// The observability crate, re-exported so deployments can name its types
/// ([`obs::TraceConfig`], [`obs::Registry`], [`obs::Trace`]) without a
/// direct dependency.
pub use obs;

pub use backend::{Backend, BackendKind};
pub use builder::{Scheduler, SchedulerBuilder, ShedPolicy};
pub use report::{Report, ShardedDetail};
pub use sess::Session;
pub use ticket::{Ticket, TxnReceipt};
pub use tier::TierReport;
pub use txn::Txn;
