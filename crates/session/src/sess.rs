//! The per-client session: pipelined transaction submission.

use crate::backend::Backend;
use crate::builder::{ShedPolicy, ShedState};
use crate::observe::SessionObs;
use crate::ticket::{Ticket, TicketCell, TierTrack, TxnReceipt};
use crate::tier::TierRegistry;
use crate::txn::Txn;
use declsched::{Request, SchedError, SchedResult};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// One connected client's view of a scheduler deployment.
///
/// Sessions are cheap; connect one per client thread.  Submission is
/// nonblocking — [`Session::submit`] returns a [`Ticket`] immediately, so
/// a single session can keep dozens of transactions in flight and await
/// them in any order (or not at all: [`Session::drain`] settles whatever
/// is still outstanding).
///
/// A session tracks which of its transactions are still **open** (routed
/// but no terminal submitted).  Dropping the session abandons them: the
/// backend releases any per-transaction routing state (the shard router's
/// homes entries), so a client that walks away mid-transaction cannot leak
/// routing entries for the lifetime of the deployment.
pub struct Session {
    backend: Arc<dyn Backend>,
    tiers: Arc<TierRegistry>,
    /// Live shed policy, shared with the owning scheduler handle and
    /// every sibling session (so mid-run policy swaps apply everywhere).
    shed: Arc<ShedState>,
    observe: Arc<SessionObs>,
    /// Chaos fault injector; `SessionSubmit` fires once per submission.
    injector: Arc<chaos::FaultInjector>,
    inflight: Vec<Arc<TicketCell>>,
    /// Transactions this session routed without a terminal yet.
    open: HashSet<u64>,
}

impl Session {
    pub(crate) fn new(
        backend: Arc<dyn Backend>,
        tiers: Arc<TierRegistry>,
        shed: Arc<ShedState>,
        observe: Arc<SessionObs>,
        injector: Arc<chaos::FaultInjector>,
    ) -> Self {
        Session {
            backend,
            tiers,
            shed,
            observe,
            injector,
            inflight: Vec::new(),
            open: HashSet::new(),
        }
    }

    /// Submit a transaction without waiting for it to execute.
    pub fn submit(&mut self, txn: Txn) -> SchedResult<Ticket> {
        let ta = txn.ta();
        self.submit_raw(ta, txn.into_requests())
    }

    /// Submit pre-built requests (one transaction, intra order) without
    /// waiting — the escape hatch for generated workloads that already
    /// carry request rows.
    pub fn submit_requests(&mut self, requests: Vec<Request>) -> SchedResult<Ticket> {
        let ta = requests.first().map(|r| r.ta).unwrap_or(0);
        self.submit_raw(ta, requests)
    }

    fn submit_raw(&mut self, ta: u64, requests: Vec<Request>) -> SchedResult<Ticket> {
        let statements = requests.len();
        let sla = requests.first().and_then(|r| r.sla);
        let has_terminal = requests.iter().any(|r| r.op.is_terminal());
        let opening = !requests.is_empty() && !self.open.contains(&ta);
        // Chaos hook: a scripted `ShedFlip` swaps the live policy *before*
        // this submission's shed check, so the flip applies from exactly
        // the scripted submission onwards.
        if let Some(chaos::Fault::ShedFlip {
            enable,
            queue_watermark,
            protect_priority,
        }) = self.injector.fire(chaos::Hook::SessionSubmit)
        {
            self.shed
                .set(enable.then(|| ShedPolicy::new(queue_watermark, protect_priority)));
        }
        // Flight recorder: capture the sampled requests' intra ids before
        // the request vector moves into the backend.
        let sampled_intras: Option<Vec<u32>> = (!requests.is_empty()
            && self.observe.recorder.samples(ta))
        .then(|| requests.iter().map(|r| r.intra).collect());

        // Overload protection: while the backend is past its queue-depth
        // watermark, *opening* submissions below the protected priority are
        // rejected up front with the typed `Shed` outcome — they never
        // reach the scheduler, take no locks and execute nothing.
        // Continuations of already-admitted transactions always pass, so a
        // shed can never strand held locks.
        if let (Some(policy), Some(sla)) = (self.shed.get(), sla) {
            if opening
                && sla.priority < policy.protect_priority
                && self.backend.queue_depth() >= policy.queue_watermark
            {
                self.tiers.record_shed(sla.class);
                self.observe.record_shed(ta, sampled_intras.as_deref());
                // Born resolved; not registered in-flight (there is nothing
                // to drain and `drain` reports failures, not rejections).
                return Ok(Ticket::new(TicketCell::resolved_with(
                    ta,
                    statements,
                    Err(SchedError::Shed { class: sla.class }),
                )));
            }
        }

        // Recorded before the backend sees the requests so the `Submitted`
        // timestamp precedes the router's `Routed`/`Escalated` one.
        self.observe.record_submitted(ta, sampled_intras.as_deref());
        let rx = self.backend.submit(requests)?;
        let tier = sla.map(|s| {
            self.tiers.record_submitted(s.class);
            TierTrack {
                registry: Arc::clone(&self.tiers),
                class: s.class,
                submitted: Instant::now(),
            }
        });
        let cell = TicketCell::new(
            ta,
            statements,
            rx,
            tier,
            Arc::clone(&self.observe),
            sampled_intras,
        );
        self.inflight.push(Arc::clone(&cell));
        if statements > 0 {
            if has_terminal {
                self.open.remove(&ta);
            } else {
                self.open.insert(ta);
            }
        }
        Ok(Ticket::new(cell))
    }

    /// Submit a transaction and block until it has fully executed — the
    /// one-at-a-time convenience path.
    pub fn execute(&mut self, txn: Txn) -> SchedResult<TxnReceipt> {
        self.submit(txn)?.wait()
    }

    /// Block until every transaction this session still has in flight has
    /// executed.  Returns the first failure (after settling the rest), so
    /// a dropped [`Ticket`] can never hide an error.
    pub fn drain(&mut self) -> SchedResult<()> {
        let mut first_error = None;
        for cell in self.inflight.drain(..) {
            if let Err(e) = cell.wait() {
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Number of transactions submitted through this session whose result
    /// has not been observed yet (by [`Ticket::wait`] or
    /// [`Session::drain`]).
    pub fn in_flight(&mut self) -> usize {
        self.inflight.retain(|cell| !cell.resolved());
        self.inflight.len()
    }

    /// Transactions this session routed without submitting a terminal yet.
    pub fn open_transactions(&self) -> usize {
        self.open.len()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Abandon what was never terminated: the backend reclaims any
        // per-transaction routing state (the shard router's homes map
        // entries would otherwise live until shutdown).
        for &ta in &self.open {
            self.backend.abandon(ta);
        }
    }
}
