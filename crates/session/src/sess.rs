//! The per-client session: pipelined transaction submission.

use crate::backend::Backend;
use crate::ticket::{Ticket, TicketCell, TxnReceipt};
use crate::txn::Txn;
use declsched::{Request, SchedResult};
use std::sync::Arc;

/// One connected client's view of a scheduler deployment.
///
/// Sessions are cheap; connect one per client thread.  Submission is
/// nonblocking — [`Session::submit`] returns a [`Ticket`] immediately, so
/// a single session can keep dozens of transactions in flight and await
/// them in any order (or not at all: [`Session::drain`] settles whatever
/// is still outstanding).
pub struct Session {
    backend: Arc<dyn Backend>,
    inflight: Vec<Arc<TicketCell>>,
}

impl Session {
    pub(crate) fn new(backend: Arc<dyn Backend>) -> Self {
        Session {
            backend,
            inflight: Vec::new(),
        }
    }

    /// Submit a transaction without waiting for it to execute.
    pub fn submit(&mut self, txn: Txn) -> SchedResult<Ticket> {
        let ta = txn.ta();
        self.submit_raw(ta, txn.into_requests())
    }

    /// Submit pre-built requests (one transaction, intra order) without
    /// waiting — the escape hatch for generated workloads that already
    /// carry request rows.
    pub fn submit_requests(&mut self, requests: Vec<Request>) -> SchedResult<Ticket> {
        let ta = requests.first().map(|r| r.ta).unwrap_or(0);
        self.submit_raw(ta, requests)
    }

    fn submit_raw(&mut self, ta: u64, requests: Vec<Request>) -> SchedResult<Ticket> {
        let statements = requests.len();
        let rx = self.backend.submit(requests)?;
        let cell = TicketCell::new(ta, statements, rx);
        self.inflight.push(Arc::clone(&cell));
        Ok(Ticket::new(cell))
    }

    /// Submit a transaction and block until it has fully executed — the
    /// one-at-a-time convenience path.
    pub fn execute(&mut self, txn: Txn) -> SchedResult<TxnReceipt> {
        self.submit(txn)?.wait()
    }

    /// Block until every transaction this session still has in flight has
    /// executed.  Returns the first failure (after settling the rest), so
    /// a dropped [`Ticket`] can never hide an error.
    pub fn drain(&mut self) -> SchedResult<()> {
        let mut first_error = None;
        for cell in self.inflight.drain(..) {
            if let Err(e) = cell.wait() {
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Number of transactions submitted through this session whose result
    /// has not been observed yet (by [`Ticket::wait`] or
    /// [`Session::drain`]).
    pub fn in_flight(&mut self) -> usize {
        self.inflight.retain(|cell| !cell.resolved());
        self.inflight.len()
    }
}
