//! In-flight transaction handles.

use crate::backend::Completion;
use crate::observe::SessionObs;
use crate::tier::TierRegistry;
use declsched::{SchedError, SchedResult};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What [`Ticket::wait`] returns once a transaction has fully executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnReceipt {
    /// The transaction id.
    pub ta: u64,
    /// Number of statements the transaction carried.
    pub statements: usize,
}

/// Per-tier accounting attached to a ticket of an SLA-tagged transaction:
/// its completion (and submit-to-completion latency) is recorded against
/// its service class when the result is first observed.
pub(crate) struct TierTrack {
    pub(crate) registry: Arc<TierRegistry>,
    pub(crate) class: &'static str,
    pub(crate) submitted: Instant,
}

/// Shared completion state of one submitted transaction.
///
/// Both the [`Ticket`] handed to the caller and the owning
/// [`crate::Session`] (for [`crate::Session::drain`]) point at the same
/// cell, so the result can be observed from either side exactly once and
/// re-read thereafter.
pub(crate) struct TicketCell {
    pub(crate) ta: u64,
    pub(crate) statements: usize,
    tier: Option<TierTrack>,
    /// Outcome accounting and terminal lifecycle events, recorded when the
    /// result is first observed.  `None` for born-resolved (shed) cells,
    /// whose outcome was already recorded at submission.
    observe: Option<(Arc<SessionObs>, Option<Vec<u32>>)>,
    state: Mutex<CellState>,
}

struct CellState {
    rx: Option<Completion>,
    done: Option<SchedResult<()>>,
}

impl TicketCell {
    pub(crate) fn new(
        ta: u64,
        statements: usize,
        rx: Completion,
        tier: Option<TierTrack>,
        observe: Arc<SessionObs>,
        sampled_intras: Option<Vec<u32>>,
    ) -> Arc<Self> {
        Arc::new(TicketCell {
            ta,
            statements,
            tier,
            observe: Some((observe, sampled_intras)),
            state: Mutex::new(CellState {
                rx: Some(rx),
                done: None,
            }),
        })
    }

    /// A cell born resolved — the shedding path: the transaction was never
    /// admitted and its result is already known.
    pub(crate) fn resolved_with(ta: u64, statements: usize, result: SchedResult<()>) -> Arc<Self> {
        Arc::new(TicketCell {
            ta,
            statements,
            tier: None,
            observe: None,
            state: Mutex::new(CellState {
                rx: None,
                done: Some(result),
            }),
        })
    }

    /// Block until the transaction's result is known and return it.  Safe
    /// to call from several holders: the first caller consumes the
    /// completion (any concurrent caller blocks on the cell lock meanwhile),
    /// later callers get the cached result.
    pub(crate) fn wait(&self) -> SchedResult<()> {
        let mut state = self.state.lock().map_err(|_| SchedError::Poisoned {
            what: "ticket cell",
        })?;
        if let Some(result) = &state.done {
            return result.clone();
        }
        let rx = state
            .rx
            .take()
            .expect("completion present until first wait");
        let result = rx.wait();
        if let Some(tier) = &self.tier {
            tier.registry.record_outcome(
                tier.class,
                tier.submitted.elapsed().as_micros() as u64,
                result.is_ok(),
            );
        }
        // Still under the cell lock, so the terminal lifecycle event is
        // emitted exactly once however many holders race to wait.
        if let Some((observe, sampled_intras)) = &self.observe {
            observe.record_outcome(self.ta, sampled_intras.as_deref(), &result);
        }
        state.done = Some(result.clone());
        result
    }

    /// Whether the result has already been observed.  A poisoned cell
    /// counts as resolved: its panicked observer already consumed the
    /// result.
    pub(crate) fn resolved(&self) -> bool {
        self.state
            .lock()
            .map(|state| state.done.is_some())
            .unwrap_or(true)
    }
}

/// A claim on one in-flight transaction, returned by
/// [`crate::Session::submit`].
///
/// Tickets may be awaited in any order.  Dropping a ticket without waiting
/// is safe: the transaction still executes, and the owning session's
/// [`crate::Session::drain`] can still observe its completion.
///
/// Under an overload-shedding policy ([`crate::ShedPolicy`]) a low-tier
/// submission past the watermark resolves immediately with the typed
/// [`declsched::SchedError::Shed`] outcome — check
/// [`declsched::SchedError::is_shed`] to distinguish a deliberate rejection
/// from a failure.
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl Ticket {
    pub(crate) fn new(cell: Arc<TicketCell>) -> Self {
        Ticket { cell }
    }

    /// The transaction id this ticket tracks.
    pub fn ta(&self) -> u64 {
        self.cell.ta
    }

    /// Block until the transaction has fully executed (every statement
    /// scheduled and run on the server) and return its receipt.
    pub fn wait(self) -> SchedResult<TxnReceipt> {
        self.cell.wait().map(|()| TxnReceipt {
            ta: self.cell.ta,
            statements: self.cell.statements,
        })
    }
}
