//! SLA-tiered workloads: premium vs. free clients.
//!
//! The paper motivates declarative scheduling with service-level agreements
//! "e.g. for premium vs. free customers in Web applications".  This module
//! generates the same OLTP statement stream as [`crate::oltp`] but tags every
//! client with a class and every transaction with an arrival time and a
//! deadline, which the SLA scheduling protocols in the core crate consume.

use crate::oltp::{ClientWorkload, OltpSpec};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use txnstore::TxnId;

/// Service class of a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClientClass {
    /// Paying customer: strict deadline, high priority.
    Premium,
    /// Standard customer.
    Standard,
    /// Free tier: best effort.
    Free,
}

impl ClientClass {
    /// Numeric priority (higher = more important), used by priority-based
    /// scheduling rules.
    pub fn priority(self) -> i64 {
        match self {
            ClientClass::Premium => 3,
            ClientClass::Standard => 2,
            ClientClass::Free => 1,
        }
    }

    /// The relative response-time target of this class, in milliseconds of
    /// virtual time.  Premium requests must be answered quickly.
    pub fn deadline_ms(self) -> u64 {
        match self {
            ClientClass::Premium => 50,
            ClientClass::Standard => 200,
            ClientClass::Free => 1000,
        }
    }

    /// Class name as stored in the scheduler's SLA relation.
    pub fn as_str(self) -> &'static str {
        match self {
            ClientClass::Premium => "premium",
            ClientClass::Standard => "standard",
            ClientClass::Free => "free",
        }
    }
}

/// SLA metadata attached to a transaction by the workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaRequestMeta {
    /// The transaction this metadata describes.
    pub txn: TxnId,
    /// Client class.
    pub class: ClientClass,
    /// Virtual arrival time in milliseconds.
    pub arrival_ms: u64,
    /// Absolute deadline in virtual milliseconds.
    pub deadline_ms: u64,
}

/// Specification of an SLA-tiered workload.
#[derive(Debug, Clone)]
pub struct SlaSpec {
    /// The underlying OLTP workload (statement shapes, table, distribution).
    pub oltp: OltpSpec,
    /// Fraction of clients in the premium class (0.0–1.0).
    pub premium_fraction: f64,
    /// Fraction of clients in the free class (0.0–1.0); the rest is standard.
    pub free_fraction: f64,
    /// Mean inter-arrival gap between a client's consecutive transactions,
    /// in virtual milliseconds.
    pub mean_think_time_ms: u64,
    /// Seed for class assignment and arrival jitter.
    pub seed: u64,
}

impl Default for SlaSpec {
    fn default() -> Self {
        SlaSpec {
            oltp: OltpSpec::small(12),
            premium_fraction: 0.2,
            free_fraction: 0.5,
            mean_think_time_ms: 10,
            seed: 11,
        }
    }
}

impl SlaSpec {
    /// Generate the statement workload plus per-transaction SLA metadata.
    pub fn generate(&self) -> (Vec<ClientWorkload>, Vec<SlaRequestMeta>) {
        let clients = self.oltp.generate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let classes: Vec<ClientClass> = (0..clients.len())
            .map(|i| self.class_for(i, clients.len()))
            .collect();

        let mut metas = Vec::new();
        for client in &clients {
            let class = classes[client.client_id];
            let mut clock_ms: u64 = rng.gen_range(0..self.mean_think_time_ms.max(1));
            for txn in &client.transactions {
                let jitter = rng.gen_range(0..=self.mean_think_time_ms.max(1));
                clock_ms += jitter;
                metas.push(SlaRequestMeta {
                    txn: txn.txn,
                    class,
                    arrival_ms: clock_ms,
                    deadline_ms: clock_ms + class.deadline_ms(),
                });
            }
        }
        metas.sort_by_key(|m| (m.arrival_ms, m.txn));
        (clients, metas)
    }

    /// Deterministic class assignment: the first `premium_fraction` of client
    /// ids are premium, the last `free_fraction` are free, the middle is
    /// standard.  Deterministic assignment keeps experiments reproducible and
    /// makes per-class result tables easy to interpret.
    fn class_for(&self, client_id: usize, total: usize) -> ClientClass {
        let premium_cut = (self.premium_fraction * total as f64).round() as usize;
        let free_cut = total - (self.free_fraction * total as f64).round() as usize;
        if client_id < premium_cut {
            ClientClass::Premium
        } else if client_id >= free_cut {
            ClientClass::Free
        } else {
            ClientClass::Standard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_fractions_are_respected() {
        let spec = SlaSpec {
            oltp: OltpSpec::small(10),
            premium_fraction: 0.2,
            free_fraction: 0.3,
            ..SlaSpec::default()
        };
        let (clients, metas) = spec.generate();
        assert_eq!(clients.len(), 10);
        let mut premium = 0;
        let mut free = 0;
        let mut standard = 0;
        for i in 0..10 {
            match spec.class_for(i, 10) {
                ClientClass::Premium => premium += 1,
                ClientClass::Free => free += 1,
                ClientClass::Standard => standard += 1,
            }
        }
        assert_eq!(premium, 2);
        assert_eq!(free, 3);
        assert_eq!(standard, 5);
        // Every transaction has metadata.
        let total_txns: usize = clients.iter().map(|c| c.transactions.len()).sum();
        assert_eq!(metas.len(), total_txns);
    }

    #[test]
    fn deadlines_follow_class_targets_and_arrivals_are_sorted() {
        let spec = SlaSpec::default();
        let (_, metas) = spec.generate();
        for m in &metas {
            assert_eq!(m.deadline_ms - m.arrival_ms, m.class.deadline_ms());
        }
        for pair in metas.windows(2) {
            assert!(pair[0].arrival_ms <= pair[1].arrival_ms);
        }
    }

    #[test]
    fn class_priorities_are_ordered() {
        assert!(ClientClass::Premium.priority() > ClientClass::Standard.priority());
        assert!(ClientClass::Standard.priority() > ClientClass::Free.priority());
        assert!(ClientClass::Premium.deadline_ms() < ClientClass::Free.deadline_ms());
        assert_eq!(ClientClass::Premium.as_str(), "premium");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SlaSpec::default();
        let (_, a) = spec.generate();
        let (_, b) = spec.generate();
        assert_eq!(a, b);
    }
}
