//! Operation mixes beyond the paper's 50/50 OLTP workload.
//!
//! The paper's future-work section calls for "different workloads with more
//! complex statements"; these mixes (read-heavy web traffic, write-heavy
//! ingest, long BI-style read batches) are what the ablation benches use to
//! probe how the declarative scheduler behaves away from the 20+20 setting.

use crate::dist::KeyDistribution;
use crate::oltp::OltpSpec;

/// A named read/write mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperationMix {
    /// The paper's mix: 20 SELECT + 20 UPDATE.
    Paper,
    /// Read-mostly web traffic: 18 SELECT + 2 UPDATE.
    ReadHeavy,
    /// Ingest: 2 SELECT + 18 UPDATE.
    WriteHeavy,
    /// Business-intelligence batch: 200 SELECTs, no writes (long read-only
    /// transactions, the QShuffler scenario from related work).
    BiBatch,
    /// Short point transactions: 2 SELECT + 2 UPDATE.
    Short,
}

impl OperationMix {
    /// `(selects, updates)` per transaction.
    pub fn counts(self) -> (usize, usize) {
        match self {
            OperationMix::Paper => (20, 20),
            OperationMix::ReadHeavy => (18, 2),
            OperationMix::WriteHeavy => (2, 18),
            OperationMix::BiBatch => (200, 0),
            OperationMix::Short => (2, 2),
        }
    }

    /// Fraction of statements that are writes.
    pub fn write_fraction(self) -> f64 {
        let (r, w) = self.counts();
        if r + w == 0 {
            0.0
        } else {
            w as f64 / (r + w) as f64
        }
    }

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            OperationMix::Paper => "paper-20r20w",
            OperationMix::ReadHeavy => "read-heavy",
            OperationMix::WriteHeavy => "write-heavy",
            OperationMix::BiBatch => "bi-batch",
            OperationMix::Short => "short",
        }
    }
}

/// A workload built from a named mix plus contention knobs.
#[derive(Debug, Clone)]
pub struct MixSpec {
    /// The read/write mix.
    pub mix: OperationMix,
    /// Concurrent clients.
    pub clients: usize,
    /// Transactions per client.
    pub transactions_per_client: usize,
    /// Table size.
    pub table_rows: usize,
    /// Key distribution.
    pub distribution: KeyDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl MixSpec {
    /// Build a spec with sensible defaults for the given mix and client count.
    pub fn new(mix: OperationMix, clients: usize) -> Self {
        MixSpec {
            mix,
            clients,
            transactions_per_client: 20,
            table_rows: 10_000,
            distribution: KeyDistribution::Uniform,
            seed: 99,
        }
    }

    /// Convert to the underlying [`OltpSpec`] so the same generator is used
    /// for every mix.
    pub fn to_oltp(&self) -> OltpSpec {
        let (selects, updates) = self.mix.counts();
        OltpSpec {
            clients: self.clients,
            transactions_per_client: self.transactions_per_client,
            selects_per_txn: selects,
            updates_per_txn: updates,
            table_rows: self.table_rows,
            table: "bench".to_string(),
            distribution: self.distribution.clone(),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txnstore::StatementKind;

    #[test]
    fn mixes_have_expected_write_fractions() {
        assert!((OperationMix::Paper.write_fraction() - 0.5).abs() < 1e-12);
        assert!(OperationMix::ReadHeavy.write_fraction() < 0.2);
        assert!(OperationMix::WriteHeavy.write_fraction() > 0.8);
        assert_eq!(OperationMix::BiBatch.write_fraction(), 0.0);
        assert_eq!(OperationMix::Short.counts(), (2, 2));
        assert_eq!(OperationMix::BiBatch.label(), "bi-batch");
    }

    #[test]
    fn mix_spec_generates_matching_statement_counts() {
        let spec = MixSpec::new(OperationMix::ReadHeavy, 3);
        let oltp = spec.to_oltp();
        let clients = oltp.generate();
        let txn = &clients[0].transactions[0];
        let reads = txn
            .statements
            .iter()
            .filter(|s| matches!(s.kind, StatementKind::Select { .. }))
            .count();
        let writes = txn
            .statements
            .iter()
            .filter(|s| matches!(s.kind, StatementKind::Update { .. }))
            .count();
        assert_eq!((reads, writes), OperationMix::ReadHeavy.counts());
    }

    #[test]
    fn bi_batch_is_read_only() {
        let spec = MixSpec::new(OperationMix::BiBatch, 2);
        let clients = spec.to_oltp().generate();
        for c in &clients {
            for t in &c.transactions {
                assert!(t
                    .statements
                    .iter()
                    .all(|s| !matches!(s.kind, StatementKind::Update { .. })));
            }
        }
    }
}
