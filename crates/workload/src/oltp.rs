//! The paper's OLTP workload generator.

use crate::dist::KeyDistribution;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use txnstore::{Statement, TxnId};

/// Specification of the paper's experiment workload (Section 4.2.1).
#[derive(Debug, Clone)]
pub struct OltpSpec {
    /// Number of concurrently active clients.
    pub clients: usize,
    /// Transactions generated per client (clients run them back to back).
    pub transactions_per_client: usize,
    /// SELECT statements per transaction (paper: 20).
    pub selects_per_txn: usize,
    /// UPDATE statements per transaction (paper: 20).
    pub updates_per_txn: usize,
    /// Rows in the target table (paper: 100 000).
    pub table_rows: usize,
    /// Name of the target table.
    pub table: String,
    /// Key distribution (paper: uniform).
    pub distribution: KeyDistribution,
    /// RNG seed so every run of an experiment sees the same workload.
    pub seed: u64,
}

impl Default for OltpSpec {
    fn default() -> Self {
        OltpSpec::paper(300)
    }
}

impl OltpSpec {
    /// The workload exactly as the paper describes it, for a given client
    /// count: 20 SELECT + 20 UPDATE per transaction, 100 000 uniform rows.
    pub fn paper(clients: usize) -> Self {
        OltpSpec {
            clients,
            transactions_per_client: 50,
            selects_per_txn: 20,
            updates_per_txn: 20,
            table_rows: 100_000,
            table: "bench".to_string(),
            distribution: KeyDistribution::Uniform,
            seed: 42,
        }
    }

    /// A scaled-down variant for unit tests and examples: small table, short
    /// transactions, few clients.
    pub fn small(clients: usize) -> Self {
        OltpSpec {
            clients,
            transactions_per_client: 5,
            selects_per_txn: 3,
            updates_per_txn: 3,
            table_rows: 200,
            table: "bench".to_string(),
            distribution: KeyDistribution::Uniform,
            seed: 7,
        }
    }

    /// Statements per transaction (data statements, excluding the commit).
    pub fn statements_per_txn(&self) -> usize {
        self.selects_per_txn + self.updates_per_txn
    }

    /// Total data statements across the whole workload.
    pub fn total_statements(&self) -> usize {
        self.clients * self.transactions_per_client * self.statements_per_txn()
    }

    /// Generate the workload: one [`ClientWorkload`] per client, each with
    /// its own back-to-back transaction list.  Transaction ids are globally
    /// unique and allocated round-robin so that `TA` numbers interleave the
    /// way concurrently arriving requests would.
    pub fn generate(&self) -> Vec<ClientWorkload> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut clients: Vec<ClientWorkload> = (0..self.clients)
            .map(|id| ClientWorkload {
                client_id: id,
                transactions: Vec::with_capacity(self.transactions_per_client),
            })
            .collect();

        let mut next_txn: u64 = 0;
        for round in 0..self.transactions_per_client {
            for client in clients.iter_mut() {
                next_txn += 1;
                let txn = TxnId(next_txn);
                let spec = self.generate_transaction(txn, &mut rng);
                debug_assert_eq!(round, client.transactions.len());
                client.transactions.push(spec);
            }
        }
        clients
    }

    fn generate_transaction(&self, txn: TxnId, rng: &mut StdRng) -> TransactionSpec {
        // Build the operation mix (reads and writes), then shuffle so reads
        // and writes interleave like a real OLTP transaction instead of all
        // reads first.
        let mut ops: Vec<bool> = Vec::with_capacity(self.statements_per_txn());
        ops.extend(std::iter::repeat_n(false, self.selects_per_txn)); // false = read
        ops.extend(std::iter::repeat_n(true, self.updates_per_txn)); // true = write
        ops.shuffle(rng);

        let mut statements = Vec::with_capacity(ops.len() + 1);
        for (intra, is_write) in ops.iter().enumerate() {
            let key = self.distribution.sample(rng, self.table_rows);
            let stmt = if *is_write {
                Statement::update(txn, intra as u32, self.table.clone(), key, key)
            } else {
                Statement::select(txn, intra as u32, self.table.clone(), key)
            };
            statements.push(stmt);
        }
        statements.push(Statement::commit(txn, ops.len() as u32, self.table.clone()));
        TransactionSpec { txn, statements }
    }
}

/// One generated transaction: its id plus its full statement list
/// (data statements followed by a commit).
#[derive(Debug, Clone)]
pub struct TransactionSpec {
    /// Transaction id.
    pub txn: TxnId,
    /// Statements, ending with [`txnstore::StatementKind::Commit`].
    pub statements: Vec<Statement>,
}

impl TransactionSpec {
    /// Number of data statements (excluding the terminal commit/abort).
    pub fn data_statements(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| !s.kind.is_terminal())
            .count()
    }
}

/// The full statement stream of one client.
#[derive(Debug, Clone)]
pub struct ClientWorkload {
    /// Client identifier (0-based).
    pub client_id: usize,
    /// Transactions in execution order.
    pub transactions: Vec<TransactionSpec>,
}

impl ClientWorkload {
    /// Total data statements this client will issue.
    pub fn total_statements(&self) -> usize {
        self.transactions
            .iter()
            .map(TransactionSpec::data_statements)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txnstore::StatementKind;

    #[test]
    fn paper_spec_matches_section_4_2_1() {
        let spec = OltpSpec::paper(300);
        assert_eq!(spec.clients, 300);
        assert_eq!(spec.selects_per_txn, 20);
        assert_eq!(spec.updates_per_txn, 20);
        assert_eq!(spec.table_rows, 100_000);
        assert_eq!(spec.statements_per_txn(), 40);
        assert!(matches!(spec.distribution, KeyDistribution::Uniform));
    }

    #[test]
    fn generation_produces_expected_counts_and_unique_txn_ids() {
        let spec = OltpSpec::small(4);
        let clients = spec.generate();
        assert_eq!(clients.len(), 4);
        let mut txn_ids = Vec::new();
        for c in &clients {
            assert_eq!(c.transactions.len(), spec.transactions_per_client);
            for t in &c.transactions {
                txn_ids.push(t.txn);
                assert_eq!(t.data_statements(), spec.statements_per_txn());
                // Every transaction ends with a commit.
                assert!(matches!(
                    t.statements.last().unwrap().kind,
                    StatementKind::Commit
                ));
                // Intra-transaction numbering is consecutive from zero.
                for (i, s) in t.statements.iter().enumerate() {
                    assert_eq!(s.intra as usize, i);
                    assert_eq!(s.txn, t.txn);
                }
            }
        }
        let unique: std::collections::HashSet<_> = txn_ids.iter().collect();
        assert_eq!(unique.len(), txn_ids.len());
        assert_eq!(
            clients
                .iter()
                .map(ClientWorkload::total_statements)
                .sum::<usize>(),
            spec.total_statements()
        );
    }

    #[test]
    fn read_write_mix_is_respected_and_shuffled() {
        let spec = OltpSpec::small(1);
        let clients = spec.generate();
        let txn = &clients[0].transactions[0];
        let reads = txn
            .statements
            .iter()
            .filter(|s| matches!(s.kind, StatementKind::Select { .. }))
            .count();
        let writes = txn
            .statements
            .iter()
            .filter(|s| matches!(s.kind, StatementKind::Update { .. }))
            .count();
        assert_eq!(reads, spec.selects_per_txn);
        assert_eq!(writes, spec.updates_per_txn);
    }

    #[test]
    fn keys_stay_within_the_table() {
        let mut spec = OltpSpec::small(2);
        spec.table_rows = 50;
        for c in spec.generate() {
            for t in &c.transactions {
                for s in &t.statements {
                    if let Some(obj) = s.object() {
                        assert!((0..50).contains(&obj.0));
                    }
                }
            }
        }
    }

    #[test]
    fn same_seed_same_workload_different_seed_differs() {
        let spec = OltpSpec::small(3);
        let a = spec.generate();
        let b = spec.generate();
        let render = |cs: &Vec<ClientWorkload>| {
            cs.iter()
                .flat_map(|c| c.transactions.iter())
                .flat_map(|t| t.statements.iter())
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&a), render(&b));
        let mut spec2 = spec.clone();
        spec2.seed = 999;
        assert_ne!(render(&a), render(&spec2.generate()));
    }
}
