//! The scenario library: named, reusable traffic shapes.
//!
//! The single OLTP mix the paper evaluates ([`crate::oltp::OltpSpec`]) is one
//! point in a large space of traffic shapes.  This module turns "a workload"
//! into a first-class, *named* object — a [`Scenario`] — so every benchmark,
//! test and example can iterate over the same [`registry`] instead of
//! hard-coding one statement stream.  A scenario bundles
//!
//! * a deterministic transaction stream (seeded generation, identical on
//!   every backend it is replayed against),
//! * an [`ArrivalSpec`] describing *how* those transactions arrive at the
//!   scheduler: closed-loop (a fixed number in flight, the classical bench
//!   shape that can never over-run the system) or **open-loop** (Poisson or
//!   bursty arrivals, where offered load is decoupled from completion and
//!   queueing collapse becomes observable),
//! * optional per-transaction service classes ([`ClientClass`]) for the
//!   SLA/priority protocols.
//!
//! The eleven registered scenarios:
//!
//! | name                 | shape                                              | arrivals |
//! |----------------------|----------------------------------------------------|----------|
//! | `zipf-hotspot`       | short 2r+2w transactions, Zipfian s = 1.1 keys     | closed   |
//! | `read-mostly`        | YCSB-B-style 95 % reads, Zipfian s = 0.8           | closed   |
//! | `order-pipeline`     | TPC-C-lite multi-step orders over key regions      | closed   |
//! | `bursty`             | single-update transactions, on/off burst arrivals  | open     |
//! | `sla-tiers`          | premium/standard/free classes, Poisson arrivals    | open     |
//! | `extreme-skew`       | 95 % of writes on 16 keys co-located by the router | closed   |
//! | `tiered-overload`    | mostly-sheddable tiers for the overload experiment | open     |
//! | `drifting-hotspot`   | hot key-set jumps to a disjoint region per phase   | closed   |
//! | `deadlock-storm`     | single-key upgrades on 4 keys — native deadlocks   | closed   |
//! | `oltp-analytical-mix`| OLTP point updates + wide sorted analytical scans  | closed   |
//! | `tenant-quota`       | per-tenant tiers under Poisson — quota pressure    | open     |
//!
//! Writes always store the row key as the value, so the *final database
//! state* of a committed scenario run is independent of admission order —
//! the property the cross-backend equivalence tests rely on.

use crate::dist::KeyDistribution;
use crate::sla::ClientClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txnstore::{Statement, TxnId};

/// How the transactions of a scenario arrive at the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Closed loop: keep at most `depth` transactions in flight; a new one
    /// is submitted only when an earlier one completes.  Offered load is
    /// *coupled* to completion — the system can never be over-run.
    Closed {
        /// Maximum transactions in flight.
        depth: usize,
    },
    /// Open loop: transactions arrive at exponentially distributed
    /// inter-arrival gaps with the given mean rate, whether or not earlier
    /// ones completed.  Offered load is decoupled from completion.
    Poisson {
        /// Mean arrival rate in transactions per second.
        rate_tps: f64,
    },
    /// Open loop with on/off bursts: a Poisson process whose rate switches
    /// between `base_tps` and `burst_tps` on a fixed cycle.
    Bursty {
        /// Arrival rate outside bursts, transactions per second.
        base_tps: f64,
        /// Arrival rate inside bursts, transactions per second.
        burst_tps: f64,
        /// Full on/off cycle length in milliseconds.
        period_ms: u64,
        /// Burst length at the start of each cycle, in milliseconds.
        burst_ms: u64,
    },
}

impl ArrivalSpec {
    /// Whether this spec describes open-loop arrivals.
    pub fn is_open_loop(&self) -> bool {
        !matches!(self, ArrivalSpec::Closed { .. })
    }

    /// The mean offered rate of an open-loop spec in transactions per
    /// second (duty-cycle-weighted for bursts); `None` for closed loops,
    /// whose rate is whatever the backend completes.
    pub fn mean_rate_tps(&self) -> Option<f64> {
        match *self {
            ArrivalSpec::Closed { .. } => None,
            ArrivalSpec::Poisson { rate_tps } => Some(rate_tps),
            ArrivalSpec::Bursty {
                base_tps,
                burst_tps,
                period_ms,
                burst_ms,
            } => {
                let period = period_ms.max(1) as f64;
                let duty = (burst_ms.min(period_ms) as f64) / period;
                Some(burst_tps * duty + base_tps * (1.0 - duty))
            }
        }
    }

    /// Scale every arrival rate by `factor` (closed-loop specs are
    /// unchanged).  Benchmarks use this to express offered load as a
    /// multiple of a measured capacity.
    pub fn scaled(self, factor: f64) -> Self {
        match self {
            ArrivalSpec::Closed { depth } => ArrivalSpec::Closed { depth },
            ArrivalSpec::Poisson { rate_tps } => ArrivalSpec::Poisson {
                rate_tps: rate_tps * factor,
            },
            ArrivalSpec::Bursty {
                base_tps,
                burst_tps,
                period_ms,
                burst_ms,
            } => ArrivalSpec::Bursty {
                base_tps: base_tps * factor,
                burst_tps: burst_tps * factor,
                period_ms,
                burst_ms,
            },
        }
    }
}

/// Scale knobs a scenario generator receives from the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Transactions to generate.
    pub transactions: usize,
    /// Rows in the benchmark table.
    pub table_rows: usize,
    /// RNG seed; the same seed always yields the identical stream.
    pub seed: u64,
}

impl ScenarioParams {
    /// A tiny parameter set for unit tests and doctests.
    pub fn small() -> Self {
        ScenarioParams {
            transactions: 64,
            table_rows: 512,
            seed: 7,
        }
    }
}

/// One generated transaction of a scenario: its statements (ending in a
/// commit) plus an optional service class for SLA-aware protocols.
#[derive(Debug, Clone)]
pub struct ScenarioTxn {
    /// Statements in intra order, terminated by a commit.
    pub statements: Vec<Statement>,
    /// Service class, when the scenario models tiered clients.
    pub class: Option<ClientClass>,
}

impl ScenarioTxn {
    fn plain(statements: Vec<Statement>) -> Self {
        ScenarioTxn {
            statements,
            class: None,
        }
    }
}

/// A named, reusable traffic shape.
///
/// Implementations must be deterministic: the same [`ScenarioParams`]
/// (including the seed) must generate the identical transaction stream, so
/// a scenario can be replayed bit-for-bit against every backend.
pub trait Scenario: Send + Sync {
    /// Stable scenario name, used as the key in benchmark output.
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn description(&self) -> &'static str;

    /// How transactions of this scenario arrive at the scheduler.
    fn arrival(&self) -> ArrivalSpec;

    /// Whether the scenario tags transactions with service classes (and
    /// should therefore be scheduled by an SLA/priority protocol).
    fn sla_aware(&self) -> bool {
        false
    }

    /// Generate the transaction stream.  Transaction ids are `1..=n` in
    /// stream order; every transaction ends in a commit.
    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn>;
}

/// Weighted choice over `items`: returns the item whose weight bucket the
/// roll lands in.  Non-positive weights are skipped; if *no* weight is
/// positive the choice falls back to uniform over all items; an empty slice
/// yields `None`.
pub fn pick_weighted<'a, T, R: Rng + ?Sized>(rng: &mut R, items: &'a [(f64, T)]) -> Option<&'a T> {
    if items.is_empty() {
        return None;
    }
    let total: f64 = items.iter().map(|(w, _)| w.max(0.0)).sum();
    if total <= 0.0 {
        // Degenerate mix (all weights zero/negative): uniform fallback.
        let index = rng.gen_range(0..items.len());
        return items.get(index).map(|(_, item)| item);
    }
    let mut roll = rng.gen_range(0.0..total);
    for (weight, item) in items {
        let weight = weight.max(0.0);
        if weight > 0.0 && roll < weight {
            return Some(item);
        }
        roll -= weight;
    }
    // Floating-point slack at the top of the range: last positive-weight item.
    items
        .iter()
        .rev()
        .find(|(w, _)| *w > 0.0)
        .map(|(_, item)| item)
}

const TABLE: &str = "bench";

fn read(txn: TxnId, intra: u32, key: i64) -> Statement {
    Statement::select(txn, intra, TABLE, key)
}

/// Writes store the key as the value so final state is order-independent.
fn write(txn: TxnId, intra: u32, key: i64) -> Statement {
    Statement::update(txn, intra, TABLE, key, key)
}

fn commit(txn: TxnId, intra: u32) -> Statement {
    Statement::commit(txn, intra, TABLE)
}

// ---------------------------------------------------------------------------
// 1. zipf-hotspot
// ---------------------------------------------------------------------------

/// Short read/write transactions with heavily skewed (Zipfian s = 1.1) key
/// choice: the contention-stress scenario.
pub struct ZipfHotspot;

impl Scenario for ZipfHotspot {
    fn name(&self) -> &'static str {
        "zipf-hotspot"
    }

    fn description(&self) -> &'static str {
        "short 2r+2w transactions on Zipfian (s=1.1) keys — contention stress"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Closed { depth: 32 }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let dist = KeyDistribution::Zipfian { s: 1.1 };
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                let mut statements = Vec::with_capacity(5);
                for intra in 0..4u32 {
                    let key = distinct_key(&dist, &mut rng, params.table_rows, &statements);
                    statements.push(if intra < 2 {
                        read(txn, intra, key)
                    } else {
                        write(txn, intra, key)
                    });
                }
                statements.push(commit(txn, 4));
                ScenarioTxn::plain(statements)
            })
            .collect()
    }
}

/// Draw a key the transaction has not touched yet (the declarative rules
/// assume each transaction accesses an object at most once per batch).
fn distinct_key(
    dist: &KeyDistribution,
    rng: &mut StdRng,
    table_rows: usize,
    taken: &[Statement],
) -> i64 {
    loop {
        let key = dist.sample(rng, table_rows);
        if !taken.iter().any(|s| s.object().map(|o| o.0) == Some(key)) {
            return key;
        }
    }
}

// ---------------------------------------------------------------------------
// 2. read-mostly
// ---------------------------------------------------------------------------

/// YCSB-B-style traffic: 95 % reads, 5 % writes, moderately skewed keys.
pub struct ReadMostly;

impl Scenario for ReadMostly {
    fn name(&self) -> &'static str {
        "read-mostly"
    }

    fn description(&self) -> &'static str {
        "YCSB-B-style 95% reads / 5% writes on Zipfian (s=0.8) keys"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Closed { depth: 32 }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let dist = KeyDistribution::Zipfian { s: 0.8 };
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                let statements_per_txn = 6usize;
                let mut statements = Vec::with_capacity(statements_per_txn + 1);
                for intra in 0..statements_per_txn as u32 {
                    let key = distinct_key(&dist, &mut rng, params.table_rows, &statements);
                    statements.push(if rng.gen_bool(0.05) {
                        write(txn, intra, key)
                    } else {
                        read(txn, intra, key)
                    });
                }
                statements.push(commit(txn, statements_per_txn as u32));
                ScenarioTxn::plain(statements)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 3. order-pipeline
// ---------------------------------------------------------------------------

/// The three TPC-C-lite transaction templates of [`OrderPipeline`].
enum OrderTemplate {
    NewOrder,
    Payment,
    Delivery,
}

/// TPC-C-lite: multi-step order transactions over three key regions — a
/// small hot *district* region (sequence counters), a large *stock* region
/// (item inventory) and an *order* region (one fresh row per order).
///
/// Templates are mixed by weight: 45 % new-order (read+bump a district,
/// read+decrement three stock rows, insert an order row), 45 % payment
/// (read+bump a district, update an order row), 10 % delivery (read an
/// order row, restock one stock row).
pub struct OrderPipeline;

impl OrderPipeline {
    /// Region boundaries `(districts, stock_end)` within `table_rows`:
    /// districts are the first ~1/64th of the table (at least one row, at
    /// most 64), stock the following ~60 %, orders the remainder.
    fn regions(table_rows: usize) -> (usize, usize) {
        let districts = (table_rows / 64).clamp(1, 64);
        let stock_end = districts + (table_rows - districts) * 3 / 5;
        (districts, stock_end.min(table_rows - 1))
    }
}

impl Scenario for OrderPipeline {
    fn name(&self) -> &'static str {
        "order-pipeline"
    }

    fn description(&self) -> &'static str {
        "TPC-C-lite multi-step orders: hot district counters, stock updates, order inserts"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Closed { depth: 16 }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        assert!(
            params.table_rows >= 16,
            "order-pipeline needs at least 16 rows to form its key regions"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let (districts, stock_end) = Self::regions(params.table_rows);
        let stock_dist = KeyDistribution::Zipfian { s: 0.9 };
        let stock_span = stock_end - districts;
        let order_span = params.table_rows - stock_end;
        let templates = [
            (0.45, OrderTemplate::NewOrder),
            (0.45, OrderTemplate::Payment),
            (0.10, OrderTemplate::Delivery),
        ];

        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                let district = rng.gen_range(0..districts as i64);
                // Spread the order region round-robin so order rows are
                // unique per transaction (an "insert" into a pre-sized table).
                let order_row = (stock_end + index % order_span) as i64;
                let template =
                    pick_weighted(&mut rng, &templates).expect("template mix is non-empty");
                let mut statements = Vec::new();
                let mut intra = 0u32;
                let mut push = |s: Statement, intra: &mut u32| {
                    statements.push(s);
                    *intra += 1;
                };
                match template {
                    OrderTemplate::NewOrder => {
                        // Step 1: read + bump the district's order counter.
                        push(read(txn, intra, district), &mut intra);
                        push(write(txn, intra, district), &mut intra);
                        // Step 2: check + decrement three distinct stock rows.
                        let mut items: Vec<i64> = Vec::with_capacity(3);
                        while items.len() < 3 {
                            let item = districts as i64 + stock_dist.sample(&mut rng, stock_span);
                            if !items.contains(&item) {
                                items.push(item);
                            }
                        }
                        for item in items {
                            push(read(txn, intra, item), &mut intra);
                            push(write(txn, intra, item), &mut intra);
                        }
                        // Step 3: write the order row.
                        push(write(txn, intra, order_row), &mut intra);
                    }
                    OrderTemplate::Payment => {
                        push(read(txn, intra, district), &mut intra);
                        push(write(txn, intra, district), &mut intra);
                        push(write(txn, intra, order_row), &mut intra);
                    }
                    OrderTemplate::Delivery => {
                        push(read(txn, intra, order_row), &mut intra);
                        let item = districts as i64 + stock_dist.sample(&mut rng, stock_span);
                        push(write(txn, intra, item), &mut intra);
                    }
                }
                statements.push(commit(txn, intra));
                ScenarioTxn::plain(statements)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 4. bursty
// ---------------------------------------------------------------------------

/// Single-update transactions arriving in open-loop on/off bursts: the
/// queueing-collapse probe.  During a burst the offered rate far exceeds
/// the trough rate; an open-loop driver keeps submitting through the burst
/// whether or not the backend keeps up, so saturation becomes visible as
/// growing latency instead of silently throttled submission.
pub struct BurstyArrivals;

impl Scenario for BurstyArrivals {
    fn name(&self) -> &'static str {
        "bursty"
    }

    fn description(&self) -> &'static str {
        "single-update transactions under open-loop on/off burst arrivals"
    }

    fn arrival(&self) -> ArrivalSpec {
        // Rates are relative: scenario_matrix rescales them to the measured
        // closed-loop capacity of the backend under test via
        // `ArrivalSpec::scaled`.
        ArrivalSpec::Bursty {
            base_tps: 2_000.0,
            burst_tps: 20_000.0,
            period_ms: 100,
            burst_ms: 20,
        }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        let mut rng = StdRng::seed_from_u64(params.seed);
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                let key = rng.gen_range(0..params.table_rows as i64);
                ScenarioTxn::plain(vec![write(txn, 0, key), commit(txn, 1)])
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 5. sla-tiers
// ---------------------------------------------------------------------------

/// Mixed premium/standard/free traffic under open-loop Poisson arrivals,
/// for the SLA-priority scheduling protocol: 20 % premium, 50 % standard,
/// 30 % free, assigned deterministically round-robin-by-weight so every
/// class is present from the first few transactions.
pub struct SlaTiers;

impl Scenario for SlaTiers {
    fn name(&self) -> &'static str {
        "sla-tiers"
    }

    fn description(&self) -> &'static str {
        "premium/standard/free classes under Poisson arrivals — drives the SLA protocol"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Poisson { rate_tps: 5_000.0 }
    }

    fn sla_aware(&self) -> bool {
        true
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let dist = KeyDistribution::HotSpot {
            hot_fraction: 0.3,
            hot_rows: (params.table_rows / 16).max(1),
        };
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                // Deterministic 2/5/3 class cycle out of every 10 transactions.
                let class = match index % 10 {
                    0 | 1 => ClientClass::Premium,
                    2..=6 => ClientClass::Standard,
                    _ => ClientClass::Free,
                };
                let mut statements = Vec::with_capacity(4);
                for intra in 0..3u32 {
                    let key = distinct_key(&dist, &mut rng, params.table_rows, &statements);
                    statements.push(if intra == 2 {
                        write(txn, intra, key)
                    } else {
                        read(txn, intra, key)
                    });
                }
                statements.push(commit(txn, 3));
                ScenarioTxn {
                    statements,
                    class: Some(class),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 6. extreme-skew
// ---------------------------------------------------------------------------

/// Shard count the skewed hot set is co-located against.  The scenario is
/// adversarial *by construction*: its hot keys all hash to the same shard
/// of a [`EXTREME_SKEW_REFERENCE_SHARDS`]-way fleet, so a static
/// footprint-hash router serves ~all of the traffic from one worker.  This
/// is the workload the control plane's hot-object re-homing exists for.
pub const EXTREME_SKEW_REFERENCE_SHARDS: usize = 4;

/// Number of hot keys in the co-located hot set.
pub const EXTREME_SKEW_HOT_KEYS: usize = 16;

/// Fraction of transactions that target the hot set.
pub const EXTREME_SKEW_HOT_FRACTION: f64 = 0.95;

/// Single-write transactions with 95 % of the traffic on a small hot set
/// whose keys all share one home shard under the router's hash at
/// [`EXTREME_SKEW_REFERENCE_SHARDS`]-way partitioning — hash-balancing
/// cannot help, only placement migration can.
pub struct ExtremeSkew;

impl ExtremeSkew {
    /// The co-located hot set within `table_rows`: the first
    /// [`EXTREME_SKEW_HOT_KEYS`] keys whose hash home is shard 0 of the
    /// reference fleet.
    pub fn hot_keys(table_rows: usize) -> Vec<i64> {
        (0..table_rows as i64)
            .filter(|&key| declsched::shard_of(key, EXTREME_SKEW_REFERENCE_SHARDS) == 0)
            .take(EXTREME_SKEW_HOT_KEYS)
            .collect()
    }
}

impl Scenario for ExtremeSkew {
    fn name(&self) -> &'static str {
        "extreme-skew"
    }

    fn description(&self) -> &'static str {
        "95% single-key writes on 16 hot keys co-located on one shard by the router hash"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Closed { depth: 32 }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        let hot = Self::hot_keys(params.table_rows);
        assert!(
            !hot.is_empty(),
            "extreme-skew needs a table large enough to contain its hot set"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                let key = if rng.gen_bool(EXTREME_SKEW_HOT_FRACTION) {
                    hot[rng.gen_range(0..hot.len())]
                } else {
                    rng.gen_range(0..params.table_rows as i64)
                };
                ScenarioTxn::plain(vec![write(txn, 0, key), commit(txn, 1)])
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 7. tiered-overload
// ---------------------------------------------------------------------------

/// The overload-shedding experiment's traffic: open-loop Poisson arrivals
/// where only a small premium slice (15 %) is protected and the bulk of the
/// load (25 % standard, 60 % free) is sheddable.  Driven past capacity,
/// an SLA-aware deployment keeps premium latency bounded by rejecting the
/// sheddable tiers; without shedding every tier queues together.
pub struct TieredOverload;

impl Scenario for TieredOverload {
    fn name(&self) -> &'static str {
        "tiered-overload"
    }

    fn description(&self) -> &'static str {
        "15% premium / 25% standard / 60% free under Poisson arrivals — the shedding probe"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Poisson { rate_tps: 5_000.0 }
    }

    fn sla_aware(&self) -> bool {
        true
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        let mut rng = StdRng::seed_from_u64(params.seed);
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                // Deterministic 3/5/12 class cycle out of every 20
                // transactions, so every class is present from the start.
                let class = match index % 20 {
                    0..=2 => ClientClass::Premium,
                    3..=7 => ClientClass::Standard,
                    _ => ClientClass::Free,
                };
                // Single-object read-modify-write: the read lock upgrades
                // to the write, and a single-object footprint keeps the
                // transaction on one shard — overload then lands on worker
                // queues, which is the backlog the shedding watermark (and
                // the rebalancer) observe.
                let key = rng.gen_range(0..params.table_rows as i64);
                ScenarioTxn {
                    statements: vec![read(txn, 0, key), write(txn, 1, key), commit(txn, 2)],
                    class: Some(class),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 8. drifting-hotspot
// ---------------------------------------------------------------------------

/// Number of phases the hot set moves through over a [`DriftingHotspot`] run.
pub const DRIFT_PHASES: usize = 4;

/// Hot keys per phase of the drifting hotspot.
pub const DRIFT_HOT_KEYS: usize = 8;

/// Fraction of transactions that target the current phase's hot set.
pub const DRIFT_HOT_FRACTION: f64 = 0.8;

/// A hotspot that *moves*: the stream is split into [`DRIFT_PHASES`] equal
/// phases and each phase concentrates [`DRIFT_HOT_FRACTION`] of its
/// single-key read-modify-write traffic on a phase-private, pairwise
/// disjoint [`DRIFT_HOT_KEYS`]-key hot set.  A placement rebalancer that
/// chased phase 1's hot keys is wrong by phase 2 — the adversarial probe
/// for migration-cooldown bounds (a naive rebalancer churns placements
/// every phase boundary).
pub struct DriftingHotspot;

impl DriftingHotspot {
    /// Which phase the `index`-th of `transactions` transactions falls in.
    pub fn phase_of(index: usize, transactions: usize) -> usize {
        (index * DRIFT_PHASES / transactions.max(1)).min(DRIFT_PHASES - 1)
    }

    /// The hot set of `phase` within `table_rows`: [`DRIFT_HOT_KEYS`] keys
    /// strided across the table, pairwise disjoint between phases.
    pub fn hot_keys(phase: usize, table_rows: usize) -> Vec<i64> {
        let stride = (table_rows / (DRIFT_PHASES * DRIFT_HOT_KEYS)).max(1);
        (0..DRIFT_HOT_KEYS)
            .map(|i| (((phase * DRIFT_HOT_KEYS + i) * stride) % table_rows) as i64)
            .collect()
    }
}

impl Scenario for DriftingHotspot {
    fn name(&self) -> &'static str {
        "drifting-hotspot"
    }

    fn description(&self) -> &'static str {
        "hot key-set moves to a disjoint region each quarter of the run — rebalancer churn probe"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Closed { depth: 32 }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        assert!(
            params.table_rows >= DRIFT_PHASES * DRIFT_HOT_KEYS,
            "drifting-hotspot needs disjoint per-phase hot sets"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                let phase = Self::phase_of(index, params.transactions);
                let hot = Self::hot_keys(phase, params.table_rows);
                let key = if rng.gen_bool(DRIFT_HOT_FRACTION) {
                    hot[rng.gen_range(0..hot.len())]
                } else {
                    rng.gen_range(0..params.table_rows as i64)
                };
                ScenarioTxn::plain(vec![read(txn, 0, key), write(txn, 1, key), commit(txn, 2)])
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 9. deadlock-storm
// ---------------------------------------------------------------------------

/// Size of the deadlock storm's hot set (keys `0..4`).
pub const DEADLOCK_STORM_HOT_KEYS: usize = 4;

/// Fraction of transactions landing on the storm's hot set.
pub const DEADLOCK_STORM_HOT_FRACTION: f64 = 0.9;

/// Concurrent single-key read→write upgrades on a tiny hot set.  On the
/// passthrough backend two transactions that both hold the shared lock on
/// the same key and both request the upgrade form a genuine native
/// upgrade deadlock — the server's waits-for detector must abort victims.
/// The scheduled backends qualify each transaction's read *and* write
/// together under SS2PL batch-conflict rules, so the same stream commits
/// without a single deadlock: the scenario measures exactly the class of
/// conflict declarative scheduling removes.
pub struct DeadlockStorm;

impl Scenario for DeadlockStorm {
    fn name(&self) -> &'static str {
        "deadlock-storm"
    }

    fn description(&self) -> &'static str {
        "single-key lock upgrades on 4 hot keys — native upgrade deadlocks on passthrough"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Closed { depth: 16 }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        assert!(
            params.table_rows >= DEADLOCK_STORM_HOT_KEYS,
            "deadlock-storm needs its hot keys inside the table"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                let key = if rng.gen_bool(DEADLOCK_STORM_HOT_FRACTION) {
                    rng.gen_range(0..DEADLOCK_STORM_HOT_KEYS as i64)
                } else {
                    rng.gen_range(0..params.table_rows as i64)
                };
                ScenarioTxn::plain(vec![read(txn, 0, key), write(txn, 1, key), commit(txn, 2)])
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 10. oltp-analytical-mix
// ---------------------------------------------------------------------------

/// Every n-th transaction of the mix is analytical.
pub const ANALYTICAL_EVERY: usize = 8;

/// Distinct rows one analytical transaction scans.
pub const ANALYTICAL_READS: usize = 12;

/// OLTP point read-modify-writes with a long-running analytical scan mixed
/// in every [`ANALYTICAL_EVERY`]-th transaction: [`ANALYTICAL_READS`]
/// distinct reads in ascending key order, holding shared locks across a
/// wide footprint until commit.  The scan's held read locks collide with
/// the point writers' upgrades — the classic OLTP-vs-analytics
/// interference shape.
pub struct OltpAnalyticalMix;

impl Scenario for OltpAnalyticalMix {
    fn name(&self) -> &'static str {
        "oltp-analytical-mix"
    }

    fn description(&self) -> &'static str {
        "point updates with a wide sorted analytical scan every 8th transaction"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Closed { depth: 16 }
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        assert!(
            params.table_rows >= ANALYTICAL_READS * 2,
            "oltp-analytical-mix needs room for its scan footprint"
        );
        let mut rng = StdRng::seed_from_u64(params.seed);
        let dist = KeyDistribution::HotSpot {
            hot_fraction: 0.6,
            hot_rows: (params.table_rows / 16).max(1),
        };
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                if index % ANALYTICAL_EVERY == 0 {
                    // Analytical: a wide scan over distinct rows, emitted in
                    // ascending key order so concurrent scans acquire their
                    // shared locks in one global order.
                    let mut keys: Vec<i64> = Vec::with_capacity(ANALYTICAL_READS);
                    while keys.len() < ANALYTICAL_READS {
                        let key = rng.gen_range(0..params.table_rows as i64);
                        if !keys.contains(&key) {
                            keys.push(key);
                        }
                    }
                    keys.sort_unstable();
                    let mut statements: Vec<Statement> = keys
                        .iter()
                        .enumerate()
                        .map(|(i, &key)| read(txn, i as u32, key))
                        .collect();
                    statements.push(commit(txn, ANALYTICAL_READS as u32));
                    ScenarioTxn::plain(statements)
                } else {
                    let key = dist.sample(&mut rng, params.table_rows);
                    ScenarioTxn::plain(vec![read(txn, 0, key), write(txn, 1, key), commit(txn, 2)])
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// 11. tenant-quota
// ---------------------------------------------------------------------------

/// Multi-tenant quota pressure: a 1/2/7 premium/standard/free tenant cycle
/// under open-loop Poisson arrivals, all issuing hotspot-skewed single-key
/// read-modify-writes.  Layered under the session layer's shed-policy
/// watermark the free bulk is the first to be refused while the thin
/// premium slice must never be — the chaos suite flips the policy mid-run
/// against exactly this stream.
pub struct TenantQuota;

impl Scenario for TenantQuota {
    fn name(&self) -> &'static str {
        "tenant-quota"
    }

    fn description(&self) -> &'static str {
        "1/2/7 premium/standard/free tenants under Poisson arrivals — quota-shedding pressure"
    }

    fn arrival(&self) -> ArrivalSpec {
        ArrivalSpec::Poisson { rate_tps: 5_000.0 }
    }

    fn sla_aware(&self) -> bool {
        true
    }

    fn generate(&self, params: &ScenarioParams) -> Vec<ScenarioTxn> {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let dist = KeyDistribution::HotSpot {
            hot_fraction: 0.5,
            hot_rows: (params.table_rows / 32).max(1),
        };
        (0..params.transactions)
            .map(|index| {
                let txn = TxnId(index as u64 + 1);
                // Deterministic 1/2/7 tenant cycle out of every 10.
                let class = match index % 10 {
                    0 => ClientClass::Premium,
                    1..=2 => ClientClass::Standard,
                    _ => ClientClass::Free,
                };
                let key = dist.sample(&mut rng, params.table_rows);
                ScenarioTxn {
                    statements: vec![read(txn, 0, key), write(txn, 1, key), commit(txn, 2)],
                    class: Some(class),
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Pre-intern every string literal the generated streams feed into the
/// scheduler's relations — the table name and the service-class names (the
/// operation codes are pre-interned by the core crate itself).  Called at
/// registry construction so the first scheduling round never takes the
/// interner's write lock on the hot path.
fn intern_literals() {
    declsched::Symbol::intern(TABLE);
    for class in [
        ClientClass::Premium,
        ClientClass::Standard,
        ClientClass::Free,
    ] {
        declsched::Symbol::intern(class.as_str());
    }
}

/// Every registered scenario, in stable order.  Benchmarks iterate this so
/// a newly added scenario is picked up everywhere without further wiring.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    intern_literals();
    vec![
        Box::new(ZipfHotspot),
        Box::new(ReadMostly),
        Box::new(OrderPipeline),
        Box::new(BurstyArrivals),
        Box::new(SlaTiers),
        Box::new(ExtremeSkew),
        Box::new(TieredOverload),
        Box::new(DriftingHotspot),
        Box::new(DeadlockStorm),
        Box::new(OltpAnalyticalMix),
        Box::new(TenantQuota),
    ]
}

/// Look a scenario up by its stable name.
pub fn by_name(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use txnstore::StatementKind;

    fn render(stream: &[ScenarioTxn]) -> Vec<String> {
        stream
            .iter()
            .flat_map(|t| t.statements.iter())
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn registry_has_five_uniquely_named_scenarios() {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        assert!(names.len() >= 5, "registry shrank: {names:?}");
        let unique: HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate scenario names");
        for name in names {
            assert!(by_name(name).is_some());
        }
        assert!(by_name("no-such-scenario").is_none());
    }

    #[test]
    fn every_scenario_generates_well_formed_deterministic_streams() {
        let params = ScenarioParams::small();
        for scenario in registry() {
            let stream = scenario.generate(&params);
            assert_eq!(stream.len(), params.transactions, "{}", scenario.name());
            for (index, txn) in stream.iter().enumerate() {
                let expected = TxnId(index as u64 + 1);
                assert!(
                    txn.statements.iter().all(|s| s.txn == expected),
                    "{}: stray txn id",
                    scenario.name()
                );
                // Consecutive intra numbering from zero, commit-terminated.
                for (i, s) in txn.statements.iter().enumerate() {
                    assert_eq!(s.intra as usize, i, "{}", scenario.name());
                }
                assert!(matches!(
                    txn.statements.last().unwrap().kind,
                    StatementKind::Commit
                ));
                // Keys stay within the table.
                for s in &txn.statements {
                    if let Some(object) = s.object() {
                        assert!((0..params.table_rows as i64).contains(&object.0));
                    }
                }
                // No object is read twice or written twice by one
                // transaction (a read+write pair on the same object is fine
                // — it upgrades to a write lock).
                let mut seen = HashSet::new();
                for s in &txn.statements {
                    if let Some(object) = s.object() {
                        assert!(
                            seen.insert((std::mem::discriminant(&s.kind), object.0)),
                            "{}: object {} repeated with the same operation",
                            scenario.name(),
                            object.0
                        );
                    }
                }
            }
            // Same seed → identical stream; different seed → different one.
            let again = scenario.generate(&params);
            assert_eq!(render(&stream), render(&again), "{}", scenario.name());
            let other = scenario.generate(&ScenarioParams {
                seed: params.seed + 1,
                ..params
            });
            assert_ne!(render(&stream), render(&other), "{}", scenario.name());
        }
    }

    #[test]
    fn zipf_hotspot_concentrates_traffic() {
        let params = ScenarioParams {
            transactions: 400,
            table_rows: 4_096,
            seed: 3,
        };
        let stream = ZipfHotspot.generate(&params);
        let hot_cut = params.table_rows as i64 / 100; // lowest 1% of keys
        let (mut hot, mut total) = (0usize, 0usize);
        for txn in &stream {
            for s in &txn.statements {
                if let Some(object) = s.object() {
                    total += 1;
                    if object.0 < hot_cut {
                        hot += 1;
                    }
                }
            }
        }
        assert!(
            hot as f64 / total as f64 > 0.2,
            "hotspot too cold: {hot}/{total}"
        );
    }

    #[test]
    fn read_mostly_is_mostly_reads() {
        let stream = ReadMostly.generate(&ScenarioParams::small());
        let (mut reads, mut writes) = (0usize, 0usize);
        for txn in &stream {
            for s in &txn.statements {
                match s.kind {
                    StatementKind::Select { .. } => reads += 1,
                    StatementKind::Update { .. } => writes += 1,
                    _ => {}
                }
            }
        }
        let write_fraction = writes as f64 / (reads + writes) as f64;
        assert!(write_fraction < 0.15, "write fraction {write_fraction}");
        assert!(writes > 0, "some writes must occur");
    }

    #[test]
    fn order_pipeline_touches_its_three_regions() {
        let params = ScenarioParams {
            transactions: 200,
            table_rows: 2_048,
            seed: 5,
        };
        let (districts, stock_end) = OrderPipeline::regions(params.table_rows);
        let stream = OrderPipeline.generate(&params);
        let (mut district_hits, mut stock_hits, mut order_hits) = (0usize, 0usize, 0usize);
        for txn in &stream {
            for s in &txn.statements {
                if let Some(object) = s.object() {
                    let key = object.0 as usize;
                    if key < districts {
                        district_hits += 1;
                    } else if key < stock_end {
                        stock_hits += 1;
                    } else {
                        order_hits += 1;
                    }
                }
            }
        }
        assert!(district_hits > 0 && stock_hits > 0 && order_hits > 0);
        // Districts are the hot region: far fewer rows, many hits.
        assert!(district_hits as f64 / districts as f64 > 1.0);
    }

    #[test]
    fn sla_tiers_assigns_all_classes_and_marks_itself_sla_aware() {
        let scenario = SlaTiers;
        assert!(scenario.sla_aware());
        assert!(scenario.arrival().is_open_loop());
        let stream = scenario.generate(&ScenarioParams::small());
        let classes: HashSet<ClientClass> = stream.iter().filter_map(|t| t.class).collect();
        assert_eq!(classes.len(), 3, "all three classes present");
        let premium = stream
            .iter()
            .filter(|t| t.class == Some(ClientClass::Premium))
            .count();
        let expected = (0..stream.len()).filter(|i| i % 10 < 2).count();
        assert_eq!(premium, expected, "2-in-10 premium cycle");
    }

    #[test]
    fn extreme_skew_co_locates_its_hot_set_on_one_reference_shard() {
        let params = ScenarioParams {
            transactions: 400,
            table_rows: 2_048,
            seed: 9,
        };
        let hot = ExtremeSkew::hot_keys(params.table_rows);
        assert_eq!(hot.len(), EXTREME_SKEW_HOT_KEYS);
        for &key in &hot {
            assert_eq!(
                declsched::shard_of(key, EXTREME_SKEW_REFERENCE_SHARDS),
                0,
                "hot key {key} must hash to the reference shard"
            );
        }
        let stream = ExtremeSkew.generate(&params);
        let hot_writes = stream
            .iter()
            .flat_map(|t| t.statements.iter())
            .filter(|s| s.object().is_some_and(|o| hot.contains(&o.0)))
            .count();
        let data = stream
            .iter()
            .flat_map(|t| t.statements.iter())
            .filter(|s| s.object().is_some())
            .count();
        let fraction = hot_writes as f64 / data as f64;
        assert!(
            fraction > 0.85,
            "hot set must dominate the traffic: {fraction:.2}"
        );
    }

    #[test]
    fn tiered_overload_is_mostly_sheddable() {
        let scenario = TieredOverload;
        assert!(scenario.sla_aware());
        assert!(scenario.arrival().is_open_loop());
        let stream = scenario.generate(&ScenarioParams::small());
        let premium = stream
            .iter()
            .filter(|t| t.class == Some(ClientClass::Premium))
            .count();
        let sheddable = stream
            .iter()
            .filter(|t| {
                matches!(
                    t.class,
                    Some(ClientClass::Standard) | Some(ClientClass::Free)
                )
            })
            .count();
        assert_eq!(premium + sheddable, stream.len(), "every txn is classed");
        assert!(
            sheddable as f64 / stream.len() as f64 > 0.7,
            "the bulk of the load must be sheddable"
        );
    }

    #[test]
    fn drifting_hotspot_moves_between_disjoint_phase_hot_sets() {
        let params = ScenarioParams {
            transactions: 400,
            table_rows: 2_048,
            seed: 13,
        };
        // Phase hot sets are pairwise disjoint.
        let sets: Vec<HashSet<i64>> = (0..DRIFT_PHASES)
            .map(|p| {
                DriftingHotspot::hot_keys(p, params.table_rows)
                    .into_iter()
                    .collect()
            })
            .collect();
        for a in 0..sets.len() {
            assert_eq!(sets[a].len(), DRIFT_HOT_KEYS);
            for b in (a + 1)..sets.len() {
                assert!(
                    sets[a].is_disjoint(&sets[b]),
                    "phase {a} and {b} hot sets overlap"
                );
            }
        }
        // Each phase's traffic concentrates on its own hot set, not the
        // previous phase's.
        let stream = DriftingHotspot.generate(&params);
        for (phase, hot_set) in sets.iter().enumerate().take(DRIFT_PHASES) {
            let txns: Vec<&ScenarioTxn> = stream
                .iter()
                .enumerate()
                .filter(|(i, _)| DriftingHotspot::phase_of(*i, params.transactions) == phase)
                .map(|(_, t)| t)
                .collect();
            let on_own = txns
                .iter()
                .filter(|t| {
                    t.statements[0]
                        .object()
                        .is_some_and(|o| hot_set.contains(&o.0))
                })
                .count();
            let fraction = on_own as f64 / txns.len() as f64;
            assert!(
                fraction > 0.6,
                "phase {phase} hot fraction {fraction:.2} too cold"
            );
        }
    }

    #[test]
    fn deadlock_storm_is_single_key_upgrades_on_a_tiny_hot_set() {
        let params = ScenarioParams {
            transactions: 300,
            table_rows: 1_024,
            seed: 17,
        };
        let stream = DeadlockStorm.generate(&params);
        let mut hot_hits = 0usize;
        for txn in &stream {
            // Shape: read k, write k, commit — the upgrade pattern.
            assert_eq!(txn.statements.len(), 3);
            let read_key = txn.statements[0].object().expect("read has an object");
            let write_key = txn.statements[1].object().expect("write has an object");
            assert!(matches!(
                txn.statements[0].kind,
                StatementKind::Select { .. }
            ));
            assert!(matches!(
                txn.statements[1].kind,
                StatementKind::Update { .. }
            ));
            assert_eq!(read_key, write_key, "the write must upgrade the read");
            if (read_key.0 as usize) < DEADLOCK_STORM_HOT_KEYS {
                hot_hits += 1;
            }
        }
        assert!(
            hot_hits as f64 / stream.len() as f64 > 0.8,
            "storm must concentrate on the hot set: {hot_hits}/{}",
            stream.len()
        );
    }

    #[test]
    fn oltp_analytical_mix_interleaves_sorted_scans() {
        let params = ScenarioParams {
            transactions: 160,
            table_rows: 1_024,
            seed: 19,
        };
        let stream = OltpAnalyticalMix.generate(&params);
        for (index, txn) in stream.iter().enumerate() {
            if index % ANALYTICAL_EVERY == 0 {
                assert_eq!(txn.statements.len(), ANALYTICAL_READS + 1);
                let keys: Vec<i64> = txn
                    .statements
                    .iter()
                    .filter_map(|s| s.object())
                    .map(|o| o.0)
                    .collect();
                assert!(
                    txn.statements[..ANALYTICAL_READS]
                        .iter()
                        .all(|s| matches!(s.kind, StatementKind::Select { .. })),
                    "analytical transactions only read"
                );
                assert!(
                    keys.windows(2).all(|w| w[0] < w[1]),
                    "scan keys must be strictly ascending: {keys:?}"
                );
            } else {
                assert_eq!(txn.statements.len(), 3, "point txns are rmw+commit");
            }
        }
    }

    #[test]
    fn tenant_quota_cycles_tenants_with_a_thin_premium_slice() {
        let scenario = TenantQuota;
        assert!(scenario.sla_aware());
        assert!(scenario.arrival().is_open_loop());
        let stream = scenario.generate(&ScenarioParams::small());
        let classes: HashSet<ClientClass> = stream.iter().filter_map(|t| t.class).collect();
        assert_eq!(classes.len(), 3, "all three tenant tiers present");
        let premium = stream
            .iter()
            .filter(|t| t.class == Some(ClientClass::Premium))
            .count();
        let free = stream
            .iter()
            .filter(|t| t.class == Some(ClientClass::Free))
            .count();
        let expected_premium = (0..stream.len()).filter(|i| i % 10 == 0).count();
        assert_eq!(premium, expected_premium, "1-in-10 premium cycle");
        assert!(
            free as f64 / stream.len() as f64 > 0.6,
            "the free bulk carries the quota pressure"
        );
    }

    #[test]
    fn arrival_spec_scaling_multiplies_rates_only() {
        let closed = ArrivalSpec::Closed { depth: 8 }.scaled(3.0);
        assert_eq!(closed, ArrivalSpec::Closed { depth: 8 });
        assert!(!closed.is_open_loop());
        match (ArrivalSpec::Poisson { rate_tps: 100.0 }).scaled(2.5) {
            ArrivalSpec::Poisson { rate_tps } => assert!((rate_tps - 250.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        match (ArrivalSpec::Bursty {
            base_tps: 10.0,
            burst_tps: 100.0,
            period_ms: 50,
            burst_ms: 10,
        })
        .scaled(2.0)
        {
            ArrivalSpec::Bursty {
                base_tps,
                burst_tps,
                period_ms,
                burst_ms,
            } => {
                assert!((base_tps - 20.0).abs() < 1e-9);
                assert!((burst_tps - 200.0).abs() < 1e-9);
                assert_eq!((period_ms, burst_ms), (50, 10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn weighted_pick_handles_empty_and_degenerate_mixes() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [(f64, u8); 0] = [];
        assert!(pick_weighted(&mut rng, &empty).is_none());

        // All-zero weights fall back to uniform over the items.
        let zeros = [(0.0, 'a'), (0.0, 'b')];
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(*pick_weighted(&mut rng, &zeros).unwrap());
        }
        assert_eq!(seen.len(), 2, "uniform fallback must reach every item");

        // Negative weights are treated as zero.
        let mixed = [(-5.0, 'x'), (1.0, 'y')];
        for _ in 0..100 {
            assert_eq!(*pick_weighted(&mut rng, &mixed).unwrap(), 'y');
        }

        // Weights bias the choice.
        let biased = [(0.9, 'h'), (0.1, 't')];
        let heads = (0..1_000)
            .filter(|_| *pick_weighted(&mut rng, &biased).unwrap() == 'h')
            .count();
        assert!((800..=980).contains(&heads), "heads {heads}");
    }
}
