//! Key distributions: which row a statement touches.

use rand::Rng;

/// Distribution of row keys accessed by statements.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyDistribution {
    /// Every row is equally likely (the paper's setting: "a uniform
    /// probability for each row").
    Uniform,
    /// Zipfian distribution with the given skew parameter `s > 0`;
    /// higher values concentrate accesses on fewer rows, which is how the
    /// ablation benches raise contention without changing the client count.
    Zipfian {
        /// Skew exponent (typical OLTP skew is 0.8–1.2).
        s: f64,
    },
    /// A fixed fraction of statements hits a small hot set of rows, the rest
    /// is uniform over the remainder.
    HotSpot {
        /// Fraction of accesses that go to the hot set (0.0–1.0).
        hot_fraction: f64,
        /// Number of rows in the hot set.
        hot_rows: usize,
    },
}

impl KeyDistribution {
    /// Sample a key in `0..table_rows`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, table_rows: usize) -> i64 {
        assert!(table_rows > 0, "cannot sample from an empty table");
        match self {
            KeyDistribution::Uniform => rng.gen_range(0..table_rows as i64),
            KeyDistribution::Zipfian { s } => sample_zipf(rng, table_rows, *s),
            KeyDistribution::HotSpot {
                hot_fraction,
                hot_rows,
            } => {
                let hot_rows = (*hot_rows).clamp(1, table_rows);
                if rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot_rows as i64)
                } else if table_rows > hot_rows {
                    rng.gen_range(hot_rows as i64..table_rows as i64)
                } else {
                    rng.gen_range(0..table_rows as i64)
                }
            }
        }
    }
}

/// Zipfian sampling by inverting an approximation of the generalized
/// harmonic CDF (Gray et al.'s method, as used by YCSB).  Accurate enough
/// for workload generation and allocation-free per sample.
///
/// Edge behaviour: a skew of `s <= 0` (no skew at all) degrades gracefully
/// to the uniform distribution instead of evaluating the harmonic inverse
/// outside its domain, and very large `s` concentrates essentially all
/// mass on key 0 without overflowing (the `n^(1-s)` term underflows to 0).
fn sample_zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> i64 {
    if s <= f64::EPSILON {
        return rng.gen_range(0..n as i64);
    }
    let n_f = n as f64;
    // zeta(n, s) approximated by the integral for large n; exact small-n
    // behaviour matters little for 100 000-row tables.
    let zeta = if (s - 1.0).abs() < 1e-9 {
        n_f.ln() + 0.5772156649
    } else {
        (n_f.powf(1.0 - s) - 1.0) / (1.0 - s) + 1.0
    };
    let u: f64 = rng.gen_range(0.0..1.0);
    let target = u * zeta;
    let rank = if (s - 1.0).abs() < 1e-9 {
        target.exp()
    } else {
        ((target - 1.0) * (1.0 - s) + 1.0).powf(1.0 / (1.0 - s))
    };
    (rank.floor() as i64).clamp(0, n as i64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = KeyDistribution::Uniform;
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let k = d.sample(&mut rng, 1000);
            assert!((0..1000).contains(&k));
            if k < 100 {
                seen_low = true;
            }
            if k >= 900 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn zipfian_is_skewed_towards_low_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = KeyDistribution::Zipfian { s: 1.1 };
        let n = 10_000usize;
        let samples = 50_000;
        let mut low = 0usize;
        for _ in 0..samples {
            let k = d.sample(&mut rng, n);
            assert!((0..n as i64).contains(&k));
            if k < (n / 100) as i64 {
                low += 1;
            }
        }
        // Under uniform, ~1% of samples would hit the lowest 1% of keys;
        // Zipfian with s=1.1 concentrates far more there.
        assert!(
            low as f64 / samples as f64 > 0.20,
            "zipf skew too weak: {low}/{samples}"
        );
    }

    #[test]
    fn hotspot_respects_fraction() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = KeyDistribution::HotSpot {
            hot_fraction: 0.8,
            hot_rows: 10,
        };
        let mut hot = 0usize;
        let samples = 20_000;
        for _ in 0..samples {
            if d.sample(&mut rng, 1000) < 10 {
                hot += 1;
            }
        }
        let frac = hot as f64 / samples as f64;
        assert!((0.75..0.85).contains(&frac), "hot fraction was {frac}");
    }

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let d = KeyDistribution::Zipfian { s: 0.9 };
        let a: Vec<i64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut rng, 500)).collect()
        };
        let b: Vec<i64> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..100).map(|_| d.sample(&mut rng, 500)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn zipfian_with_vanishing_skew_degrades_to_uniform() {
        // s → 0 must not evaluate the harmonic inverse outside its domain;
        // it degrades to the uniform distribution, so the whole key range
        // stays reachable and no key dominates.
        for s in [0.0, -1.0, f64::EPSILON / 2.0] {
            let mut rng = StdRng::seed_from_u64(8);
            let d = KeyDistribution::Zipfian { s };
            let n = 1_000usize;
            let samples = 20_000;
            let mut low = 0usize;
            let mut seen_high = false;
            for _ in 0..samples {
                let k = d.sample(&mut rng, n);
                assert!((0..n as i64).contains(&k), "s={s}: {k} out of range");
                if k < (n / 100) as i64 {
                    low += 1;
                }
                if k >= (n * 9 / 10) as i64 {
                    seen_high = true;
                }
            }
            let low_fraction = low as f64 / samples as f64;
            assert!(
                (0.002..0.05).contains(&low_fraction),
                "s={s}: lowest 1% of keys drew {low_fraction} of samples"
            );
            assert!(seen_high, "s={s}: the top decile must stay reachable");
        }
    }

    #[test]
    fn zipfian_with_extreme_skew_pins_the_hottest_key_without_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for s in [10.0, 50.0, 1_000.0] {
            let d = KeyDistribution::Zipfian { s };
            let mut zero = 0usize;
            let mut hot = 0usize;
            let samples = 5_000;
            for _ in 0..samples {
                let k = d.sample(&mut rng, 1_000_000);
                assert!((0..1_000_000).contains(&k), "s={s}: {k} out of range");
                if k == 0 {
                    zero += 1;
                }
                if k < 10 {
                    hot += 1;
                }
            }
            assert!(
                zero as f64 / samples as f64 > 0.8,
                "s={s}: key 0 drew only {zero}/{samples}"
            );
            assert!(
                hot as f64 / samples as f64 > 0.99,
                "s={s}: hottest 10 keys drew only {hot}/{samples}"
            );
        }
    }

    #[test]
    fn zipfian_near_one_uses_the_harmonic_branch_consistently() {
        // The s ≈ 1 branch (logarithmic zeta) must sample the same range and
        // stay deterministic, with no discontinuity blow-up next to it.
        for s in [1.0 - 1e-10, 1.0, 1.0 + 1e-10] {
            let d = KeyDistribution::Zipfian { s };
            let mut a = StdRng::seed_from_u64(10);
            let mut b = StdRng::seed_from_u64(10);
            for _ in 0..500 {
                let x = d.sample(&mut a, 10_000);
                let y = d.sample(&mut b, 10_000);
                assert_eq!(x, y);
                assert!((0..10_000).contains(&x));
            }
        }
    }

    #[test]
    fn single_row_table_always_returns_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        for d in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipfian { s: 1.0 },
            KeyDistribution::HotSpot {
                hot_fraction: 0.5,
                hot_rows: 5,
            },
        ] {
            assert_eq!(d.sample(&mut rng, 1), 0);
        }
    }
}
