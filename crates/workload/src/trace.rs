//! Execution traces: recording the statement order produced by a multi-user
//! run so it can be replayed in single-user mode.
//!
//! This is the heart of the paper's lower-bound methodology (Section 4.1):
//! "In a separate run, we also logged the produced schedule.  We then reran
//! this schedule with a single concurrent transaction, and locking disabled."

use txnstore::{Statement, StatementKind, TxnId};

/// An ordered record of executed statements.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    statements: Vec<Statement>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append a statement in execution order.
    pub fn record(&mut self, stmt: Statement) {
        self.statements.push(stmt);
    }

    /// Number of recorded statements (including commits/aborts).
    pub fn len(&self) -> usize {
        self.statements.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// All recorded statements in order.
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// Number of data statements (SELECT/UPDATE) recorded.
    pub fn data_statement_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| !s.kind.is_terminal())
            .count()
    }

    /// Ids of transactions that committed within the trace.
    pub fn committed_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .statements
            .iter()
            .filter(|s| matches!(s.kind, StatementKind::Commit))
            .map(|s| s.txn)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Keep only the statements of the *final, committed attempt* of every
    /// transaction — the replay sequence must not contain work that the
    /// multi-user run rolled back (client aborts or deadlock-victim
    /// restarts), otherwise the single-user rerun would do more work than
    /// the schedule it is meant to lower-bound.
    ///
    /// Concretely: transactions without a commit record are dropped
    /// entirely, and for committed transactions every statement recorded
    /// before that transaction's last abort record (a rolled-back attempt)
    /// is dropped along with the abort records themselves.
    pub fn committed_only(&self) -> Trace {
        use std::collections::HashMap;
        let committed: std::collections::HashSet<TxnId> =
            self.committed_txns().into_iter().collect();
        // Index of the last abort record per transaction.
        let mut last_abort: HashMap<TxnId, usize> = HashMap::new();
        for (i, s) in self.statements.iter().enumerate() {
            if matches!(s.kind, StatementKind::Abort) {
                last_abort.insert(s.txn, i);
            }
        }
        Trace {
            statements: self
                .statements
                .iter()
                .enumerate()
                .filter(|(i, s)| {
                    committed.contains(&s.txn)
                        && !matches!(s.kind, StatementKind::Abort)
                        && last_abort.get(&s.txn).is_none_or(|&a| *i > a)
                })
                .map(|(_, s)| s.clone())
                .collect(),
        }
    }

    /// Consume the trace into its statements.
    pub fn into_statements(self) -> Vec<Statement> {
        self.statements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        // T1 commits, T2 aborts, T3 commits.
        t.record(Statement::select(TxnId(1), 0, "bench", 1));
        t.record(Statement::update(TxnId(2), 0, "bench", 2, 1));
        t.record(Statement::update(TxnId(1), 1, "bench", 3, 1));
        t.record(Statement::commit(TxnId(1), 2, "bench"));
        t.record(Statement::abort(TxnId(2), 1, "bench"));
        t.record(Statement::select(TxnId(3), 0, "bench", 4));
        t.record(Statement::commit(TxnId(3), 1, "bench"));
        t
    }

    #[test]
    fn counts_and_committed_txns() {
        let t = sample_trace();
        assert_eq!(t.len(), 7);
        assert_eq!(t.data_statement_count(), 4);
        assert_eq!(t.committed_txns(), vec![TxnId(1), TxnId(3)]);
        assert!(!t.is_empty());
        assert!(Trace::new().is_empty());
    }

    #[test]
    fn committed_only_drops_aborted_work_but_keeps_order() {
        let t = sample_trace().committed_only();
        assert_eq!(t.data_statement_count(), 3);
        assert!(t.statements().iter().all(|s| s.txn != TxnId(2)));
        // Order of the surviving statements is unchanged.
        let intras: Vec<u32> = t
            .statements()
            .iter()
            .filter(|s| s.txn == TxnId(1))
            .map(|s| s.intra)
            .collect();
        assert_eq!(intras, vec![0, 1, 2]);
    }

    #[test]
    fn into_statements_round_trips() {
        let t = sample_trace();
        let n = t.len();
        assert_eq!(t.into_statements().len(), n);
    }

    #[test]
    fn committed_only_keeps_only_the_final_attempt_of_restarted_txns() {
        // T1 executes two statements, is rolled back (deadlock victim),
        // restarts, executes again and commits.  Only the second attempt
        // must survive.
        let mut t = Trace::new();
        t.record(Statement::update(TxnId(1), 0, "bench", 1, 1)); // attempt 1
        t.record(Statement::update(TxnId(1), 1, "bench", 2, 1)); // attempt 1
        t.record(Statement::abort(TxnId(1), 1, "bench")); // rollback marker
        t.record(Statement::update(TxnId(1), 0, "bench", 1, 1)); // attempt 2
        t.record(Statement::update(TxnId(1), 1, "bench", 2, 1)); // attempt 2
        t.record(Statement::commit(TxnId(1), 2, "bench"));
        let c = t.committed_only();
        assert_eq!(c.data_statement_count(), 2);
        assert_eq!(c.committed_txns(), vec![TxnId(1)]);
        // No abort markers remain.
        assert!(c
            .statements()
            .iter()
            .all(|s| !matches!(s.kind, StatementKind::Abort)));
    }
}
