//! # workload — workload generation for the scheduling experiments
//!
//! The paper's evaluation workload (Section 4.2.1) is: *N* concurrently
//! active clients, each running OLTP-style transactions of 20 SELECT and 20
//! UPDATE statements against a single table of 100 000 rows, every statement
//! touching exactly one uniformly random row.  This crate generates that
//! workload deterministically (seeded), plus the variants used by the
//! examples and ablation benches:
//!
//! * [`oltp::OltpSpec`] — the paper's workload, with configurable statement
//!   counts, table size and key distribution ([`dist::KeyDistribution`]
//!   uniform or Zipfian),
//! * [`sla::SlaSpec`] — premium/free client classes with per-class deadlines,
//!   the SLA scenario the paper motivates ("premium vs. free customers in
//!   Web applications"),
//! * [`mix::MixSpec`] — read-heavy / write-heavy / BI-batch mixes,
//! * [`trace::Trace`] — recording of executed statement sequences so the
//!   multi-user schedule can be replayed in single-user mode, exactly as the
//!   paper's lower-bound measurement does,
//! * [`scenario`] — the **scenario library**: a [`scenario::Scenario`] trait
//!   plus a [`scenario::registry`] of named traffic shapes (Zipfian hotspot,
//!   read-mostly, TPC-C-lite order pipeline, bursty open-loop arrivals,
//!   mixed SLA tiers) that every benchmark and test iterates over.
//!
//! Scenario generation is deterministic — the same seed always yields the
//! identical transaction stream, whatever backend it is replayed against:
//!
//! ```
//! use workload::scenario::{registry, ScenarioParams};
//!
//! let params = ScenarioParams::small();
//! for scenario in registry() {
//!     let a = scenario.generate(&params);
//!     let b = scenario.generate(&params);
//!     assert_eq!(a.len(), params.transactions);
//!     let render = |stream: &[workload::scenario::ScenarioTxn]| -> Vec<String> {
//!         stream.iter().flat_map(|t| &t.statements).map(|s| s.to_string()).collect()
//!     };
//!     assert_eq!(render(&a), render(&b), "{} must be deterministic", scenario.name());
//! }
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dist;
pub mod mix;
pub mod oltp;
pub mod scenario;
pub mod sharded;
pub mod sla;
pub mod trace;

pub use dist::KeyDistribution;
pub use mix::{MixSpec, OperationMix};
pub use oltp::{ClientWorkload, OltpSpec, TransactionSpec};
pub use scenario::{ArrivalSpec, Scenario, ScenarioParams, ScenarioTxn};
pub use sharded::ShardedSpec;
pub use sla::{ClientClass, SlaRequestMeta, SlaSpec};
pub use trace::Trace;

/// Convenient glob import.
pub mod prelude {
    pub use crate::dist::KeyDistribution;
    pub use crate::mix::{MixSpec, OperationMix};
    pub use crate::oltp::{ClientWorkload, OltpSpec, TransactionSpec};
    pub use crate::scenario::{ArrivalSpec, Scenario, ScenarioParams, ScenarioTxn};
    pub use crate::sharded::ShardedSpec;
    pub use crate::sla::{ClientClass, SlaRequestMeta, SlaSpec};
    pub use crate::trace::Trace;
}
