//! Workload generation for the sharded scheduler: the `cross_shard_fraction`
//! knob.
//!
//! The shard subsystem's scaling hinges on one workload property: what
//! fraction of transactions touch objects on more than one shard (and
//! therefore take the serialized escalation lane instead of a parallel
//! fast path).  This generator produces transactions with an exact,
//! configurable cross-shard fraction so the scaling bench can sweep it and
//! find the crossover point.
//!
//! The generator does not hard-code the placement function — it takes it as
//! a parameter — so it stays decoupled from the shard crate while still
//! agreeing with the router bit for bit (pass `declsched::shard_of`).

use crate::oltp::TransactionSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use txnstore::{Statement, TxnId};

/// Specification of a shard-aware workload.
#[derive(Debug, Clone)]
pub struct ShardedSpec {
    /// Shard count the placement function partitions into.
    pub shards: usize,
    /// Fraction of transactions whose footprint spans two shards
    /// (deterministically rounded: `floor(fraction * transactions)`
    /// transactions are cross-shard, evenly interleaved).
    pub cross_shard_fraction: f64,
    /// Total transactions to generate.
    pub transactions: usize,
    /// Data statements per transaction (a terminal commit is appended).
    pub statements_per_txn: usize,
    /// Fraction of data statements that are updates (the rest are selects).
    pub update_fraction: f64,
    /// Rows in the target table.
    pub table_rows: usize,
    /// Name of the target table.
    pub table: String,
    /// RNG seed.
    pub seed: u64,
}

impl ShardedSpec {
    /// A uniform single-object workload: every transaction updates one
    /// uniformly random object and commits — the scaling bench's base case.
    pub fn single_object(shards: usize, transactions: usize, table_rows: usize) -> Self {
        ShardedSpec {
            shards,
            cross_shard_fraction: 0.0,
            transactions,
            statements_per_txn: 1,
            update_fraction: 1.0,
            table_rows,
            table: "bench".to_string(),
            seed: 42,
        }
    }

    /// Set the cross-shard fraction.
    pub fn with_cross_shard_fraction(mut self, fraction: f64) -> Self {
        self.cross_shard_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Number of cross-shard transactions this spec will generate.
    pub fn cross_shard_transactions(&self) -> usize {
        (self.cross_shard_fraction * self.transactions as f64).floor() as usize
    }

    /// Generate the workload.  `shard_of` maps an object to its home shard
    /// and must be the same function the router uses
    /// (`declsched::shard_of(object, self.shards)`).
    ///
    /// Single-shard transactions draw every key from one (uniformly chosen)
    /// shard's slice of the table; cross-shard transactions split their keys
    /// over two distinct shards, guaranteeing escalation.  With
    /// `cross_shard_fraction = 0` every transaction is confined to one
    /// shard, which is what the shard-equivalence property test relies on.
    pub fn generate(&self, shard_of: impl Fn(i64) -> usize) -> Vec<TransactionSpec> {
        assert!(self.shards > 0, "shard count must be positive");
        assert!(
            self.table_rows >= self.shards.max(2),
            "table must be large enough to populate every shard"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cross_target = self.cross_shard_transactions();
        let mut generated_cross = 0usize;
        let mut transactions = Vec::with_capacity(self.transactions);

        for index in 0..self.transactions {
            let txn = TxnId(index as u64 + 1);
            // Interleave cross-shard transactions evenly through the stream.
            let want_cross = self.shards > 1
                && generated_cross < cross_target
                && (index + 1) * cross_target / self.transactions.max(1) > generated_cross;
            let spec = if want_cross {
                generated_cross += 1;
                self.generate_cross(txn, &mut rng, &shard_of)
            } else {
                self.generate_local(txn, &mut rng, &shard_of)
            };
            transactions.push(spec);
        }
        transactions
    }

    /// Draw a key homed on `shard` by rejection sampling (cheap: the
    /// placement hash is balanced, so the expected number of draws is the
    /// shard count).
    fn key_on_shard(
        &self,
        rng: &mut StdRng,
        shard: usize,
        shard_of: &impl Fn(i64) -> usize,
    ) -> i64 {
        loop {
            let key = rng.gen_range(0..self.table_rows as i64);
            if shard_of(key) == shard {
                return key;
            }
        }
    }

    fn statement(&self, txn: TxnId, intra: u32, key: i64, rng: &mut StdRng) -> Statement {
        if rng.gen_bool(self.update_fraction) {
            Statement::update(txn, intra, self.table.clone(), key, key)
        } else {
            Statement::select(txn, intra, self.table.clone(), key)
        }
    }

    fn generate_local(
        &self,
        txn: TxnId,
        rng: &mut StdRng,
        shard_of: &impl Fn(i64) -> usize,
    ) -> TransactionSpec {
        // Uniform object ⇒ uniform home shard (the hash is balanced), so the
        // fleet is loaded evenly.
        let home = shard_of(rng.gen_range(0..self.table_rows as i64));
        let mut statements = Vec::with_capacity(self.statements_per_txn + 1);
        for intra in 0..self.statements_per_txn {
            let key = self.key_on_shard(rng, home, shard_of);
            statements.push(self.statement(txn, intra as u32, key, rng));
        }
        statements.push(Statement::commit(
            txn,
            self.statements_per_txn as u32,
            self.table.clone(),
        ));
        TransactionSpec { txn, statements }
    }

    fn generate_cross(
        &self,
        txn: TxnId,
        rng: &mut StdRng,
        shard_of: &impl Fn(i64) -> usize,
    ) -> TransactionSpec {
        let first = shard_of(rng.gen_range(0..self.table_rows as i64));
        let mut second = first;
        while second == first {
            second = shard_of(rng.gen_range(0..self.table_rows as i64));
        }
        // At least two data statements so both shards are actually touched.
        let data = self.statements_per_txn.max(2);
        let mut statements = Vec::with_capacity(data + 1);
        for intra in 0..data {
            let shard = if intra % 2 == 0 { first } else { second };
            let key = self.key_on_shard(rng, shard, shard_of);
            statements.push(self.statement(txn, intra as u32, key, rng));
        }
        statements.push(Statement::commit(txn, data as u32, self.table.clone()));
        TransactionSpec { txn, statements }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// A stand-in placement hash with the same shape as the router's.
    fn place(object: i64, shards: usize) -> usize {
        (object as u64 % shards as u64) as usize
    }

    fn spec(shards: usize, fraction: f64) -> ShardedSpec {
        ShardedSpec {
            shards,
            cross_shard_fraction: fraction,
            transactions: 100,
            statements_per_txn: 3,
            update_fraction: 0.5,
            table_rows: 1_000,
            table: "bench".to_string(),
            seed: 11,
        }
    }

    fn footprint_shards(t: &TransactionSpec, shards: usize) -> HashSet<usize> {
        t.statements
            .iter()
            .filter_map(|s| s.object())
            .map(|o| place(o.0, shards))
            .collect()
    }

    #[test]
    fn zero_fraction_confines_every_transaction_to_one_shard() {
        let s = spec(4, 0.0);
        let txns = s.generate(|o| place(o, 4));
        assert_eq!(txns.len(), 100);
        for t in &txns {
            assert_eq!(footprint_shards(t, 4).len(), 1, "txn {:?}", t.txn);
        }
    }

    #[test]
    fn fraction_is_exact_and_cross_txns_span_two_shards() {
        let s = spec(4, 0.25);
        let txns = s.generate(|o| place(o, 4));
        let cross: Vec<_> = txns
            .iter()
            .filter(|t| footprint_shards(t, 4).len() > 1)
            .collect();
        assert_eq!(cross.len(), 25);
        assert_eq!(cross.len(), s.cross_shard_transactions());
        for t in cross {
            assert_eq!(footprint_shards(t, 4).len(), 2);
        }
    }

    #[test]
    fn single_object_base_case_and_determinism() {
        let s = ShardedSpec::single_object(4, 50, 400);
        let a = s.generate(|o| place(o, 4));
        let b = s.generate(|o| place(o, 4));
        assert_eq!(a.len(), 50);
        for t in &a {
            assert_eq!(t.statements.len(), 2); // one update + commit
        }
        let render = |ts: &[TransactionSpec]| {
            ts.iter()
                .flat_map(|t| t.statements.iter())
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn one_shard_never_generates_cross_traffic() {
        let s = spec(1, 0.9);
        let txns = s.generate(|_| 0);
        for t in &txns {
            assert_eq!(footprint_shards(t, 1).len(), 1);
        }
    }
}
