//! The placement layer: where an object lives in a sharded deployment.
//!
//! The shard router originally partitioned purely by [`crate::shard_of`] —
//! a fixed multiplicative hash.  That is perfect for uniform traffic and
//! terrible for skew: a handful of hot objects that happen to hash to the
//! same shard turn an N-shard fleet into a single hot worker.  [`Placement`]
//! keeps the hash as the *default* and layers a small **overlay map** of
//! re-homed objects on top, so a control plane can migrate hot objects onto
//! underloaded shards without touching the placement of the other millions.
//!
//! Every placement change bumps an **epoch**.  Epochs fence migrations
//! against routing: the router resolves an object's home and records it for
//! the transaction's lifetime under the same lock the control plane holds
//! while it flips an overlay entry, so an in-flight transaction keeps the
//! homes it was routed with and a transaction routed after the flip sees
//! the new home — there is no window in which the two interleave.
//!
//! [`FreqSketch`] is the companion detector: a space-saving top-k sketch of
//! object access frequencies the router feeds on every submission, cheap
//! enough for the hot path and precise enough to name the objects worth
//! migrating.

use crate::request::shard_of;
use std::collections::HashMap;
use std::sync::RwLock;

/// Object-to-shard placement: hash default plus an overlay of re-homed
/// objects, guarded by an epoch counter.
#[derive(Debug)]
pub struct Placement {
    shards: usize,
    state: RwLock<Overlay>,
}

#[derive(Debug, Default)]
struct Overlay {
    map: HashMap<i64, usize>,
    epoch: u64,
}

impl Placement {
    /// A fresh placement: every object at its hash home, epoch 0.
    pub fn new(shards: usize) -> Self {
        Placement {
            shards: shards.max(1),
            state: RwLock::new(Overlay::default()),
        }
    }

    /// Number of shards placed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard of `object`: the overlay entry if one exists, the
    /// [`shard_of`] hash otherwise.
    pub fn shard_of(&self, object: i64) -> usize {
        self.read()
            .map
            .get(&object)
            .copied()
            .unwrap_or_else(|| shard_of(object, self.shards))
    }

    /// The current placement epoch (bumped by every effective change).
    pub fn epoch(&self) -> u64 {
        self.read().epoch
    }

    /// Number of objects currently living away from their hash home.
    pub fn rehomed(&self) -> usize {
        self.read().map.len()
    }

    /// Snapshot of the overlay: every `(object, shard)` pair placed away
    /// from its hash home, in ascending object order.
    pub fn overlay(&self) -> Vec<(i64, usize)> {
        let mut pairs: Vec<(i64, usize)> = self.read().map.iter().map(|(&o, &s)| (o, s)).collect();
        pairs.sort_unstable();
        pairs
    }

    /// Move `object` to `shard`, returning the new epoch.  Moving an object
    /// back to its hash home drops the overlay entry.  The *caller* is
    /// responsible for the migration fence (quiescing the object and
    /// copying its row) — this only flips the routing entry.
    pub fn rehome(&self, object: i64, shard: usize) -> u64 {
        assert!(shard < self.shards, "shard {shard} out of range");
        let mut state = self
            .state
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard == shard_of(object, self.shards) {
            state.map.remove(&object);
        } else {
            state.map.insert(object, shard);
        }
        state.epoch += 1;
        state.epoch
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Overlay> {
        // An overlay write is a single map entry plus an epoch bump; a
        // panicking writer cannot leave the map half-updated, so reading
        // through poison is sound and keeps the hot routing path infallible.
        self.state
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A space-saving top-k frequency sketch over object ids.
///
/// Bounded memory (`capacity` counters): an unseen object arriving at a
/// full sketch evicts the minimum counter and inherits its count plus one —
/// the classical space-saving guarantee that any object with true frequency
/// above `total / capacity` is present.  The router feeds it on every
/// routed submission; the control plane drains it once per sampling cycle.
#[derive(Debug)]
pub struct FreqSketch {
    capacity: usize,
    counts: HashMap<i64, u64>,
    /// Misses since the last eviction (the eviction-sampling clock).
    misses: u64,
}

/// Evict (an O(capacity) min-scan) only on every Nth miss at a full
/// sketch.  Tracked objects always count in O(1), so heavy hitters are
/// unaffected; a long uniform cold tail — where every observation is a
/// miss and there is nothing worth tracking anyway — costs a scan only
/// once per `EVICT_SAMPLE` submissions instead of on each one.  The price
/// is that a *newly* hot object entering a full sketch needs up to
/// `EVICT_SAMPLE` extra observations to be admitted, which is noise at
/// the control plane's sampling timescale.
const EVICT_SAMPLE: u64 = 4;

impl FreqSketch {
    /// An empty sketch holding at most `capacity` counters.
    pub fn new(capacity: usize) -> Self {
        FreqSketch {
            capacity: capacity.max(1),
            counts: HashMap::with_capacity(capacity.max(1)),
            misses: 0,
        }
    }

    /// Record one access to `object`.
    pub fn observe(&mut self, object: i64) {
        if let Some(count) = self.counts.get_mut(&object) {
            *count += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(object, 1);
            return;
        }
        self.misses += 1;
        if !self.misses.is_multiple_of(EVICT_SAMPLE) {
            return;
        }
        // Space-saving eviction: replace the minimum counter.
        let (&victim, &floor) = self
            .counts
            .iter()
            .min_by_key(|(_, &count)| count)
            .expect("a full sketch is non-empty");
        self.counts.remove(&victim);
        self.counts.insert(object, floor + 1);
    }

    /// Number of tracked objects.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether nothing has been observed since the last drain.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Take the current counters, hottest first, and reset the sketch.
    pub fn drain_top(&mut self) -> Vec<(i64, u64)> {
        let mut top: Vec<(i64, u64)> = self.counts.drain().collect();
        top.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_defaults_to_the_hash_and_overlay_wins() {
        let p = Placement::new(4);
        assert_eq!(p.shards(), 4);
        assert_eq!(p.epoch(), 0);
        for object in 0..100 {
            assert_eq!(p.shard_of(object), shard_of(object, 4));
        }
        let home = p.shard_of(7);
        let target = (home + 1) % 4;
        let epoch = p.rehome(7, target);
        assert_eq!(epoch, 1);
        assert_eq!(p.shard_of(7), target);
        assert_eq!(p.rehomed(), 1);
        assert_eq!(p.overlay(), vec![(7, target)]);
        // Everything else is untouched.
        assert_eq!(p.shard_of(8), shard_of(8, 4));
    }

    #[test]
    fn rehoming_back_to_the_hash_home_drops_the_entry() {
        let p = Placement::new(2);
        let home = p.shard_of(42);
        p.rehome(42, 1 - home);
        assert_eq!(p.rehomed(), 1);
        let epoch = p.rehome(42, home);
        assert_eq!(p.rehomed(), 0);
        assert_eq!(epoch, 2, "moving home still bumps the epoch");
        assert_eq!(p.shard_of(42), home);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rehoming_to_a_nonexistent_shard_panics() {
        Placement::new(2).rehome(1, 5);
    }

    #[test]
    fn sketch_tracks_the_heaviest_objects_in_bounded_space() {
        let mut sketch = FreqSketch::new(4);
        for _ in 0..50 {
            sketch.observe(1);
        }
        for _ in 0..30 {
            sketch.observe(2);
        }
        // A long tail of singletons churns the low counters but cannot
        // displace the heavy hitters.
        for object in 100..160 {
            sketch.observe(object);
        }
        assert!(sketch.len() <= 4);
        let top = sketch.drain_top();
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert!(top[0].1 >= 50);
        // Draining resets.
        assert!(sketch.is_empty());
        assert!(sketch.drain_top().is_empty());
    }

    #[test]
    fn sketch_orders_ties_deterministically() {
        let mut sketch = FreqSketch::new(8);
        for object in [5, 3, 9] {
            sketch.observe(object);
        }
        assert_eq!(sketch.drain_top(), vec![(3, 1), (5, 1), (9, 1)]);
    }
}
