//! Declarative rule sets: the heart of the paper's proposal.
//!
//! A scheduling protocol is not code — it is a [`RuleSet`]: a declarative
//! qualification rule (which pending requests may execute now, given the
//! history) plus an [`OrderingSpec`] (in which order the qualified requests
//! are dispatched).  Two rule back-ends are supported, answering the paper's
//! first research question ("to what extent can existing query languages be
//! used"):
//!
//! * [`RuleBackend::Algebra`] — a `relalg` plan, the direct analogue of the
//!   paper's SQL formulation (Listing 1),
//! * [`RuleBackend::Datalog`] — a stratified Datalog program whose designated
//!   output predicate lists the qualified `(ta, intrata)` pairs.
//!
//! Both back-ends must produce the same qualified sets for the same input —
//! an invariant the integration tests check protocol by protocol.

use crate::error::{SchedError, SchedResult};
use crate::request::{Request, RequestKey};
use datalog::{Database, Program};
use relalg::{Catalog, Plan};
use std::fmt;

/// How qualified requests are ordered before dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingSpec {
    /// By ascending request id — arrival order (FIFO), the paper's default.
    FifoById,
    /// By transaction id, then intra-transaction position (groups a
    /// transaction's requests together, preserving their internal order).
    ByTransaction,
    /// By descending SLA priority, then request id; requests without SLA
    /// metadata sort last.
    PriorityThenId,
    /// By ascending SLA deadline (earliest deadline first), then request id;
    /// requests without SLA metadata sort last.
    DeadlineThenId,
}

impl OrderingSpec {
    /// Sort the given requests in place according to this spec.
    pub fn sort(&self, requests: &mut [Request]) {
        match self {
            OrderingSpec::FifoById => requests.sort_by_key(|r| r.id),
            OrderingSpec::ByTransaction => requests.sort_by_key(|r| (r.ta, r.intra, r.id)),
            OrderingSpec::PriorityThenId => requests.sort_by_key(|r| {
                (
                    std::cmp::Reverse(r.sla.map(|s| s.priority).unwrap_or(i64::MIN)),
                    r.id,
                )
            }),
            OrderingSpec::DeadlineThenId => {
                requests.sort_by_key(|r| (r.sla.map(|s| s.deadline_ms).unwrap_or(u64::MAX), r.id))
            }
        }
    }

    /// Label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            OrderingSpec::FifoById => "fifo",
            OrderingSpec::ByTransaction => "by-transaction",
            OrderingSpec::PriorityThenId => "priority",
            OrderingSpec::DeadlineThenId => "edf",
        }
    }
}

/// The declarative qualification rule of a protocol.
#[derive(Debug, Clone)]
pub enum RuleBackend {
    /// A relational-algebra plan over the scheduler catalog (`requests`,
    /// `history`, plus auxiliary relations).  Its output must contain
    /// columns named `ta` and `intrata`.
    Algebra {
        /// The plan.
        plan: Plan,
    },
    /// A Datalog program over the same relations (as predicates of the same
    /// names).  The `output` predicate must have `(ta, intrata)` as its
    /// first two arguments.
    Datalog {
        /// The program.
        program: Program,
        /// Name of the output predicate listing qualified requests.
        output: String,
    },
}

impl RuleBackend {
    /// Short label used in experiment output and ablation benches.
    pub fn label(&self) -> &'static str {
        match self {
            RuleBackend::Algebra { .. } => "algebra",
            RuleBackend::Datalog { .. } => "datalog",
        }
    }

    /// Evaluate the rule against the scheduler catalog, returning the keys of
    /// qualified pending requests.
    pub fn evaluate(&self, catalog: &Catalog) -> SchedResult<Vec<RequestKey>> {
        match self {
            RuleBackend::Algebra { plan } => {
                let result = relalg::execute(plan, catalog)?;
                let ta_idx = result.schema().index_of("ta").ok_or_else(|| {
                    SchedError::MalformedRuleOutput {
                        protocol: "<algebra>".into(),
                        detail: "output has no `ta` column".into(),
                    }
                })?;
                let intra_idx = result.schema().index_of("intrata").ok_or_else(|| {
                    SchedError::MalformedRuleOutput {
                        protocol: "<algebra>".into(),
                        detail: "output has no `intrata` column".into(),
                    }
                })?;
                let mut keys = Vec::with_capacity(result.len());
                for row in result.rows() {
                    let ta = row.get(ta_idx).as_int().ok_or_else(|| {
                        SchedError::MalformedRuleOutput {
                            protocol: "<algebra>".into(),
                            detail: format!("non-integer ta value `{}`", row.get(ta_idx)),
                        }
                    })?;
                    let intra = row.get(intra_idx).as_int().ok_or_else(|| {
                        SchedError::MalformedRuleOutput {
                            protocol: "<algebra>".into(),
                            detail: format!("non-integer intrata value `{}`", row.get(intra_idx)),
                        }
                    })?;
                    keys.push(RequestKey {
                        ta: ta as u64,
                        intra: intra as u32,
                    });
                }
                keys.sort_unstable();
                keys.dedup();
                Ok(keys)
            }
            RuleBackend::Datalog { program, output } => {
                let mut db = Database::new();
                for name in catalog.relation_names() {
                    let table = catalog.get(name)?;
                    db.load_table(name, table);
                }
                let out_db = datalog::evaluate(program, db)?;
                datalog_output_keys(&out_db.relation_or_empty(output), output)
            }
        }
    }
}

/// Extract the qualified `(ta, intrata)` keys from a Datalog output
/// relation — shared by the one-shot backend above and the scheduler's
/// persistent-evaluation path for custom Datalog protocols.
pub(crate) fn datalog_output_keys(
    relation: &datalog::Relation,
    output: &str,
) -> SchedResult<Vec<RequestKey>> {
    let mut keys = Vec::with_capacity(relation.len());
    for row in relation.rows() {
        if row.len() < 2 {
            return Err(SchedError::MalformedRuleOutput {
                protocol: "<datalog>".into(),
                detail: format!(
                    "output predicate `{output}` has arity {} (need at least 2)",
                    row.len()
                ),
            });
        }
        let ta = row[0]
            .as_int()
            .ok_or_else(|| SchedError::MalformedRuleOutput {
                protocol: "<datalog>".into(),
                detail: format!("non-integer ta value `{}`", row[0]),
            })?;
        let intra = row[1]
            .as_int()
            .ok_or_else(|| SchedError::MalformedRuleOutput {
                protocol: "<datalog>".into(),
                detail: format!("non-integer intrata value `{}`", row[1]),
            })?;
        keys.push(RequestKey {
            ta: ta as u64,
            intra: intra as u32,
        });
    }
    keys.sort_unstable();
    keys.dedup();
    Ok(keys)
}

/// A complete declarative protocol definition: its name, its qualification
/// rule and its dispatch ordering.
#[derive(Debug, Clone)]
pub struct RuleSet {
    /// Protocol name (e.g. `ss2pl`).
    pub name: String,
    /// The qualification rule.
    pub backend: RuleBackend,
    /// The dispatch ordering.
    pub ordering: OrderingSpec,
}

impl RuleSet {
    /// Construct a rule set.
    pub fn new(name: impl Into<String>, backend: RuleBackend, ordering: OrderingSpec) -> Self {
        RuleSet {
            name: name.into(),
            backend,
            ordering,
        }
    }

    /// Evaluate the qualification rule.
    pub fn qualify(&self, catalog: &Catalog) -> SchedResult<Vec<RequestKey>> {
        self.backend.evaluate(catalog).map_err(|e| match e {
            SchedError::RuleEvaluation { message, .. } => SchedError::RuleEvaluation {
                protocol: self.name.clone(),
                message,
            },
            SchedError::MalformedRuleOutput { detail, .. } => SchedError::MalformedRuleOutput {
                protocol: self.name.clone(),
                detail,
            },
            other => other,
        })
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} backend, {} ordering]",
            self.name,
            self.backend.label(),
            self.ordering.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::SlaMeta;
    use relalg::{Expr, PlanBuilder};

    fn catalog_with_requests() -> Catalog {
        let mut catalog = Catalog::new();
        let mut table = relalg::Table::new("requests", Request::schema());
        for r in [
            Request::read(1, 10, 0, 5),
            Request::write(2, 11, 0, 6),
            Request::write(3, 11, 1, 7),
        ] {
            table.push(r.to_tuple()).unwrap();
        }
        catalog.register(table);
        catalog.register(relalg::Table::new("history", Request::schema()));
        catalog
    }

    #[test]
    fn algebra_backend_extracts_keys() {
        let plan = PlanBuilder::scan("requests")
            .filter(Expr::col("operation").eq(Expr::lit("w")))
            .project(vec![Expr::col("ta"), Expr::col("intrata")])
            .build();
        let backend = RuleBackend::Algebra { plan };
        let keys = backend.evaluate(&catalog_with_requests()).unwrap();
        assert_eq!(
            keys,
            vec![
                RequestKey { ta: 11, intra: 0 },
                RequestKey { ta: 11, intra: 1 }
            ]
        );
        assert_eq!(backend.label(), "algebra");
    }

    #[test]
    fn algebra_backend_requires_ta_and_intrata_columns() {
        let plan = PlanBuilder::scan("requests")
            .project(vec![Expr::col("ta")])
            .build();
        let backend = RuleBackend::Algebra { plan };
        let err = backend.evaluate(&catalog_with_requests()).unwrap_err();
        assert!(matches!(err, SchedError::MalformedRuleOutput { .. }));
    }

    #[test]
    fn datalog_backend_extracts_keys() {
        let program = datalog::parse_program(
            r#"
            qualified(T, I) :- requests(Id, T, I, "w", O).
            "#,
        )
        .unwrap();
        let backend = RuleBackend::Datalog {
            program,
            output: "qualified".into(),
        };
        let keys = backend.evaluate(&catalog_with_requests()).unwrap();
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0].ta, 11);
        assert_eq!(backend.label(), "datalog");
    }

    #[test]
    fn datalog_missing_output_predicate_is_empty_not_error() {
        let program = datalog::parse_program("other(T, I) :- requests(Id, T, I, Op, O).").unwrap();
        let backend = RuleBackend::Datalog {
            program,
            output: "qualified".into(),
        };
        assert!(backend
            .evaluate(&catalog_with_requests())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn ordering_specs() {
        let sla = |p: i64, d: u64| SlaMeta {
            priority: p,
            class: "premium",
            arrival_ms: 0,
            deadline_ms: d,
        };
        let mut requests = vec![
            Request::read(3, 1, 0, 5).with_sla(sla(1, 300)),
            Request::read(1, 2, 0, 6).with_sla(sla(3, 100)),
            Request::read(2, 3, 0, 7),
        ];
        OrderingSpec::FifoById.sort(&mut requests);
        assert_eq!(
            requests.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        OrderingSpec::PriorityThenId.sort(&mut requests);
        assert_eq!(requests[0].id, 1); // priority 3 first
        assert_eq!(requests[2].id, 2); // no SLA last
        OrderingSpec::DeadlineThenId.sort(&mut requests);
        assert_eq!(requests[0].id, 1); // deadline 100
        assert_eq!(requests[2].id, 2); // no SLA last
        OrderingSpec::ByTransaction.sort(&mut requests);
        assert_eq!(
            requests.iter().map(|r| r.ta).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(OrderingSpec::DeadlineThenId.label(), "edf");
    }

    #[test]
    fn rule_set_wraps_errors_with_protocol_name() {
        let plan = PlanBuilder::scan("missing_relation").build();
        let rs = RuleSet::new(
            "broken",
            RuleBackend::Algebra { plan },
            OrderingSpec::FifoById,
        );
        let err = rs.qualify(&catalog_with_requests()).unwrap_err();
        match err {
            SchedError::RuleEvaluation { protocol, .. } => assert_eq!(protocol, "broken"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(rs.to_string().contains("broken"));
    }
}
