//! Scheduler-side metrics: what the declarative scheduling overhead
//! experiment (paper Section 4.3) measures.

/// Counters and timings accumulated by a [`crate::scheduler::DeclarativeScheduler`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SchedulerMetrics {
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Requests submitted to the incoming queue.
    pub requests_submitted: u64,
    /// Requests qualified and dispatched across all rounds.
    pub requests_scheduled: u64,
    /// Distinct requests that stayed pending at least one round because the
    /// rule did not qualify them on first evaluation.  Each request counts
    /// **once**, however many rounds it waited; the cumulative
    /// request-rounds of waiting are in [`deferred_request_rounds`].
    ///
    /// [`deferred_request_rounds`]: SchedulerMetrics::deferred_request_rounds
    pub requests_deferred: u64,
    /// Sum over rounds of the pending count left after the round — i.e. one
    /// request waiting N rounds contributes N.  This is what
    /// `requests_deferred` used to (mis)report.
    pub deferred_request_rounds: u64,
    /// Total wall-clock microseconds spent evaluating the declarative rule.
    pub rule_eval_micros: u64,
    /// Total wall-clock microseconds spent per round end to end (drain,
    /// insert, rule, delete, history insert) — the quantity the paper's
    /// Section 4.3.2 reports per scheduler run.
    pub round_micros: u64,
    /// Total wall-clock microseconds spent assembling the rule-evaluation
    /// catalog (snapshotting `requests`/`history`, deriving `sla`, cloning
    /// aux relations).  Zero-copy snapshots keep this near zero; before
    /// them it was the dominant non-engine cost.
    pub catalog_build_micros: u64,
    /// Rounds answered by the incremental qualification engine instead of a
    /// from-scratch rule evaluation.
    pub incremental_rounds: u64,
    /// Pending requests re-examined by the incremental engine across all
    /// rounds (its unit of work: requests on objects whose pending or lock
    /// state changed since the previous round).
    pub delta_rows: u64,
    /// `tick` calls short-circuited because nothing changed since the last
    /// round (no arrival, no history change, no aux update) — the rule
    /// would provably re-derive the same result, so no round runs.
    pub rounds_skipped: u64,
    /// Largest batch produced by a single round.
    pub max_batch: u64,
    /// Rounds that ran in overload (relaxed) mode under an adaptive policy.
    pub overload_rounds: u64,
}

impl SchedulerMetrics {
    /// Create zeroed metrics.
    pub fn new() -> Self {
        SchedulerMetrics::default()
    }

    /// Average number of requests scheduled per round.
    pub fn avg_batch_size(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.requests_scheduled as f64 / self.rounds as f64
        }
    }

    /// Average rule evaluation time per round in microseconds.
    pub fn avg_rule_eval_micros(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.rule_eval_micros as f64 / self.rounds as f64
        }
    }

    /// Average end-to-end round time in microseconds (the paper's
    /// "total execution time" per scheduler run).
    pub fn avg_round_micros(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.round_micros as f64 / self.rounds as f64
        }
    }

    /// Fold another scheduler's metrics into this one.  Counters and timings
    /// add; `max_batch` takes the maximum.  This is how the sharded
    /// aggregator (`shard::ShardedMetrics`) merges per-shard metrics into a
    /// fleet-wide view.
    pub fn merge(&mut self, other: &SchedulerMetrics) {
        self.rounds += other.rounds;
        self.requests_submitted += other.requests_submitted;
        self.requests_scheduled += other.requests_scheduled;
        self.requests_deferred += other.requests_deferred;
        self.deferred_request_rounds += other.deferred_request_rounds;
        self.rule_eval_micros += other.rule_eval_micros;
        self.round_micros += other.round_micros;
        self.catalog_build_micros += other.catalog_build_micros;
        self.incremental_rounds += other.incremental_rounds;
        self.delta_rows += other.delta_rows;
        self.rounds_skipped += other.rounds_skipped;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.overload_rounds += other.overload_rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_against_zero_rounds() {
        let m = SchedulerMetrics::new();
        assert_eq!(m.avg_batch_size(), 0.0);
        assert_eq!(m.avg_rule_eval_micros(), 0.0);
        assert_eq!(m.avg_round_micros(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_batches() {
        let mut a = SchedulerMetrics {
            rounds: 2,
            requests_scheduled: 10,
            rule_eval_micros: 100,
            round_micros: 200,
            max_batch: 6,
            ..SchedulerMetrics::default()
        };
        let b = SchedulerMetrics {
            rounds: 3,
            requests_scheduled: 5,
            requests_deferred: 2,
            deferred_request_rounds: 7,
            rule_eval_micros: 50,
            round_micros: 80,
            catalog_build_micros: 5,
            incremental_rounds: 2,
            delta_rows: 11,
            rounds_skipped: 4,
            max_batch: 9,
            overload_rounds: 1,
            ..SchedulerMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.requests_scheduled, 15);
        assert_eq!(a.requests_deferred, 2);
        assert_eq!(a.deferred_request_rounds, 7);
        assert_eq!(a.rule_eval_micros, 150);
        assert_eq!(a.round_micros, 280);
        assert_eq!(a.catalog_build_micros, 5);
        assert_eq!(a.incremental_rounds, 2);
        assert_eq!(a.delta_rows, 11);
        assert_eq!(a.rounds_skipped, 4);
        assert_eq!(a.max_batch, 9);
        assert_eq!(a.overload_rounds, 1);
    }

    #[test]
    fn averages_compute() {
        let m = SchedulerMetrics {
            rounds: 4,
            requests_scheduled: 100,
            rule_eval_micros: 2_000,
            round_micros: 4_000,
            ..SchedulerMetrics::default()
        };
        assert_eq!(m.avg_batch_size(), 25.0);
        assert_eq!(m.avg_rule_eval_micros(), 500.0);
        assert_eq!(m.avg_round_micros(), 1_000.0);
    }
}
