//! Scheduler-side metrics: what the declarative scheduling overhead
//! experiment (paper Section 4.3) measures.

/// Counters and timings accumulated by a [`crate::scheduler::DeclarativeScheduler`].
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct SchedulerMetrics {
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Requests submitted to the incoming queue.
    pub requests_submitted: u64,
    /// Requests qualified and dispatched across all rounds.
    pub requests_scheduled: u64,
    /// Requests that stayed pending at least one extra round because the
    /// rule did not qualify them.
    pub requests_deferred: u64,
    /// Total wall-clock microseconds spent evaluating the declarative rule.
    pub rule_eval_micros: u64,
    /// Total wall-clock microseconds spent per round end to end (drain,
    /// insert, rule, delete, history insert) — the quantity the paper's
    /// Section 4.3.2 reports per scheduler run.
    pub round_micros: u64,
    /// Largest batch produced by a single round.
    pub max_batch: u64,
    /// Rounds that ran in overload (relaxed) mode under an adaptive policy.
    pub overload_rounds: u64,
}

impl SchedulerMetrics {
    /// Create zeroed metrics.
    pub fn new() -> Self {
        SchedulerMetrics::default()
    }

    /// Average number of requests scheduled per round.
    pub fn avg_batch_size(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.requests_scheduled as f64 / self.rounds as f64
        }
    }

    /// Average rule evaluation time per round in microseconds.
    pub fn avg_rule_eval_micros(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.rule_eval_micros as f64 / self.rounds as f64
        }
    }

    /// Average end-to-end round time in microseconds (the paper's
    /// "total execution time" per scheduler run).
    pub fn avg_round_micros(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.round_micros as f64 / self.rounds as f64
        }
    }

    /// Fold another scheduler's metrics into this one.  Counters and timings
    /// add; `max_batch` takes the maximum.  This is how the sharded
    /// aggregator (`shard::ShardedMetrics`) merges per-shard metrics into a
    /// fleet-wide view.
    pub fn merge(&mut self, other: &SchedulerMetrics) {
        self.rounds += other.rounds;
        self.requests_submitted += other.requests_submitted;
        self.requests_scheduled += other.requests_scheduled;
        self.requests_deferred += other.requests_deferred;
        self.rule_eval_micros += other.rule_eval_micros;
        self.round_micros += other.round_micros;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.overload_rounds += other.overload_rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_against_zero_rounds() {
        let m = SchedulerMetrics::new();
        assert_eq!(m.avg_batch_size(), 0.0);
        assert_eq!(m.avg_rule_eval_micros(), 0.0);
        assert_eq!(m.avg_round_micros(), 0.0);
    }

    #[test]
    fn merge_adds_counters_and_maxes_batches() {
        let mut a = SchedulerMetrics {
            rounds: 2,
            requests_scheduled: 10,
            rule_eval_micros: 100,
            round_micros: 200,
            max_batch: 6,
            ..SchedulerMetrics::default()
        };
        let b = SchedulerMetrics {
            rounds: 3,
            requests_scheduled: 5,
            rule_eval_micros: 50,
            round_micros: 80,
            max_batch: 9,
            overload_rounds: 1,
            ..SchedulerMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.requests_scheduled, 15);
        assert_eq!(a.rule_eval_micros, 150);
        assert_eq!(a.round_micros, 280);
        assert_eq!(a.max_batch, 9);
        assert_eq!(a.overload_rounds, 1);
    }

    #[test]
    fn averages_compute() {
        let m = SchedulerMetrics {
            rounds: 4,
            requests_scheduled: 100,
            rule_eval_micros: 2_000,
            round_micros: 4_000,
            ..SchedulerMetrics::default()
        };
        assert_eq!(m.avg_batch_size(), 25.0);
        assert_eq!(m.avg_rule_eval_micros(), 500.0);
        assert_eq!(m.avg_round_micros(), 1_000.0);
    }
}
