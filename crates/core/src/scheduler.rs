//! The declarative scheduler core loop (the paper's Section 3.3).
//!
//! One scheduling round performs, in order:
//!
//! 1. drain the incoming queue into the pending-request database,
//! 2. evaluate the configured protocol's declarative rule over
//!    `requests` ∪ `history` (∪ auxiliary relations),
//! 3. enforce intra-transaction ordering on the qualified set,
//! 4. order the qualified requests per the protocol's [`crate::rules::OrderingSpec`],
//! 5. delete them from the pending database and insert them into the
//!    history database,
//! 6. hand the ordered batch to the caller (who dispatches it to the server).
//!
//! Steps 1–5 are exactly what the paper times in Section 4.3.2; the
//! per-round wall-clock cost is recorded in [`SchedulerMetrics`].

use crate::error::SchedResult;
use crate::history::HistoryStore;
use crate::metrics::SchedulerMetrics;
use crate::pending::PendingStore;
use crate::protocol::{Protocol, SchedulingPolicy};
use crate::qualify::IncrementalQualifier;
use crate::queue::IncomingQueue;
use crate::request::{Request, RequestKey};
use crate::rules::{datalog_output_keys, RuleBackend};
use crate::trigger::TriggerPolicy;
use relalg::{Catalog, Symbol, Table};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use txnstore::Statement;

/// Configuration of a [`DeclarativeScheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// When to start a scheduling round.
    pub trigger: TriggerPolicy,
    /// Drop history rows of finished transactions after every round.  Keeps
    /// rule-evaluation cost proportional to the number of *active*
    /// transactions; disable to mimic the paper's unbounded history table.
    pub prune_history: bool,
    /// Only dispatch a qualified request if every earlier request of the
    /// same transaction (smaller `INTRATA`) is already scheduled or part of
    /// the same batch.  The paper's example assumes one pending request per
    /// transaction, where this is a no-op; with batched submissions it is
    /// required for correct execution order.
    pub enforce_intra_order: bool,
    /// Evaluate qualification incrementally: built-in protocols go through
    /// the O(delta) [`crate::qualify::IncrementalQualifier`] (driven by the
    /// history store's per-object conflict index and cross-round dirty
    /// tracking), and custom Datalog protocols through the engine-level
    /// [`datalog::IncrementalEvaluation`], instead of re-evaluating the
    /// declarative rule over the full `requests` ∪ `history` state every
    /// round.  Both paths produce exactly the sets the from-scratch rule
    /// does (enforced by the property suite); disable only to measure the
    /// from-scratch baseline, as the `rule_scaling` bench does.
    pub incremental: bool,
    /// Latency bound, in microseconds, on the sharded router's submission
    /// batching: the router accumulates per-shard batches and flushes them
    /// when a batch fills, when the fleet goes idle, or at this interval —
    /// whichever comes first.  `0` disables batching entirely (every
    /// submission is its own channel send, the pre-batching behaviour).
    /// Unsharded backends ignore the knob.
    pub batch_flush_micros: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            trigger: TriggerPolicy::default(),
            prune_history: true,
            enforce_intra_order: true,
            incremental: true,
            batch_flush_micros: 100,
        }
    }
}

/// The result of one scheduling round: the ordered, qualified batch.
#[derive(Debug, Clone)]
pub struct ScheduleBatch {
    /// Round number (1-based).
    pub round: u64,
    /// Qualified requests in dispatch order.
    pub requests: Vec<Request>,
    /// Pending requests before the round (after draining the queue).
    pub pending_before: usize,
    /// Pending requests left after the round.
    pub pending_after: usize,
    /// Wall-clock microseconds spent evaluating the declarative rule.
    pub rule_eval_micros: u64,
    /// Wall-clock microseconds for the whole round.
    pub round_micros: u64,
    /// Name of the protocol that was applied (relevant for adaptive
    /// policies).  Built-in protocol names are static; custom protocol
    /// names are interned once, so no round allocates for this field.
    pub protocol: &'static str,
}

impl ScheduleBatch {
    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Reusable per-round buffers.  Every allocation the round loop used to
/// make per call — the drain buffer, the changed-object lists, the
/// qualified-key vector, the intra-order scratch sets and the dispatched
/// batch itself — lives here instead and is cleared, not freed, between
/// rounds.  Batch buffers handed out in [`ScheduleBatch::requests`] come
/// back through [`DeclarativeScheduler::recycle_batch`].
#[derive(Debug, Default)]
struct RoundScratch {
    /// Requests drained from the incoming queue this round.
    drained: Vec<Request>,
    /// Keys of this round's drained requests — the only candidates for a
    /// first deferral, so bookkeeping touches the arrival delta instead of
    /// rescanning the whole pending backlog every round.
    drained_keys: Vec<RequestKey>,
    /// Objects whose pending/history rows changed (two uses per round).
    changed: Vec<i64>,
    /// Qualified keys produced by rule evaluation.
    keys: Vec<RequestKey>,
    /// Intra-order filter: the qualified set, for O(1) membership.
    qualified_set: HashSet<RequestKey>,
    /// Recycled dispatch-batch buffers (fed by `recycle_batch`).
    batch_pool: Vec<Vec<Request>>,
}

/// How many spare batch buffers the scheduler keeps.  The middleware loop
/// recycles one batch per round, so a tiny pool suffices; the cap only
/// guards against a caller recycling buffers it never got from us.
const BATCH_POOL_CAP: usize = 8;

/// The persistent Datalog evaluation for a custom protocol, plus the input
/// watermarks describing what it has already been fed.
#[derive(Debug)]
struct DatalogCache {
    /// Protocol name the program belongs to (an adaptive policy may swap
    /// custom protocols; a name change rebuilds the cache).
    protocol: String,
    eval: datalog::IncrementalEvaluation,
    pending_generation: u64,
    history_rows_seen: usize,
    history_prune_epoch: u64,
    sla_generation: u64,
    aux_generation: u64,
}

/// The declarative middleware scheduler.
#[derive(Debug)]
pub struct DeclarativeScheduler {
    policy: SchedulingPolicy,
    config: SchedulerConfig,
    queue: IncomingQueue,
    pending: PendingStore,
    history: HistoryStore,
    aux: Vec<Table>,
    metrics: SchedulerMetrics,
    sla_rows: HashMap<u64, Request>,
    /// The derived `sla` relation, maintained incrementally: appended on
    /// first sight of a transaction's SLA, fully rebuilt only when existing
    /// metadata is overwritten.
    sla_table: Table,
    sla_rebuild: bool,
    /// Generation counters for the relations that are not stores of their
    /// own (bumped on every effective change).
    sla_generation: u64,
    aux_generation: u64,
    /// The incremental qualification engine for built-in protocols.
    qualifier: IncrementalQualifier,
    /// The persistent Datalog evaluation for custom Datalog protocols.
    datalog_cache: Option<DatalogCache>,
    /// State fingerprint `[pending, history, aux, sla]` recorded after a
    /// round that changed nothing (empty batch, no prune) — while it still
    /// matches, `tick` skips re-deriving the provably identical result.
    noop_fingerprint: Option<[u64; 4]>,
    /// Pending keys already counted in `requests_deferred` (bounded by the
    /// pending set: entries leave when their request is scheduled).
    deferred_seen: HashSet<RequestKey>,
    /// Reusable round buffers (see [`RoundScratch`]).
    scratch: RoundScratch,
    next_request_id: u64,
    round: u64,
}

impl DeclarativeScheduler {
    /// Create a scheduler with the given policy and configuration.
    pub fn new(policy: impl Into<SchedulingPolicy>, config: SchedulerConfig) -> Self {
        DeclarativeScheduler {
            policy: policy.into(),
            config,
            queue: IncomingQueue::new(),
            pending: PendingStore::new(),
            history: HistoryStore::new(),
            aux: Vec::new(),
            metrics: SchedulerMetrics::new(),
            sla_rows: HashMap::new(),
            sla_table: Table::new("sla", Request::sla_schema()),
            sla_rebuild: false,
            sla_generation: 0,
            aux_generation: 0,
            qualifier: IncrementalQualifier::new(),
            datalog_cache: None,
            noop_fingerprint: None,
            deferred_seen: HashSet::new(),
            scratch: RoundScratch::default(),
            next_request_id: 0,
            round: 0,
        }
    }

    /// Register an auxiliary relation (e.g. `object_class`) that protocol
    /// rules may join against.
    pub fn register_aux_relation(&mut self, table: Table) {
        self.aux.push(table);
        self.aux_generation += 1;
        self.qualifier.note_aux_changed();
    }

    /// Submit a fully formed request (the id is assigned by the scheduler).
    pub fn submit(&mut self, mut request: Request, now_ms: u64) -> u64 {
        self.next_request_id += 1;
        request.id = self.next_request_id;
        if request.sla.is_some() {
            match self.sla_rows.insert(request.ta, request) {
                None => {
                    if let Some(tuple) = request.to_sla_tuple() {
                        self.sla_table
                            .push(tuple)
                            .expect("sla tuples always match the sla schema");
                    }
                    self.sla_generation += 1;
                }
                Some(old) => {
                    if old.sla != request.sla {
                        self.sla_rebuild = true;
                        self.sla_generation += 1;
                    }
                }
            }
        }
        self.queue.push(request, now_ms);
        self.metrics.requests_submitted += 1;
        self.next_request_id
    }

    /// Submit a [`txnstore::Statement`] as a request.
    pub fn submit_statement(&mut self, stmt: &Statement, now_ms: u64) -> u64 {
        self.next_request_id += 1;
        let request = Request::from_statement(self.next_request_id, stmt);
        self.queue.push(request, now_ms);
        self.metrics.requests_submitted += 1;
        self.next_request_id
    }

    /// Number of requests waiting in the incoming queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of requests in the pending-request database.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Number of rows currently in the history database.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// The current `history` relation (rows of unpruned scheduled requests).
    /// The shard layer's escalation lane snapshots this from every touched
    /// shard and evaluates the protocol rule over the union.
    pub fn history_table(&self) -> &Table {
        self.history.table()
    }

    /// The current `requests` (pending) relation.
    pub fn pending_table(&self) -> &Table {
        self.pending.table()
    }

    /// Requests buffered in the incoming queue (submitted but not yet
    /// drained into the pending relation), in arrival order.
    pub fn queued_requests(&self) -> Vec<&Request> {
        self.queue.requests().collect()
    }

    /// Whether transaction `ta` still has un-admitted requests on this
    /// scheduler — buffered in the incoming queue or sitting in the pending
    /// relation.  The escalation lane's prepare phase uses this to defer a
    /// cross-shard transaction until its own earlier fast-path submissions
    /// have been admitted, preserving intra-transaction order.
    pub fn transaction_pending(&self, ta: u64) -> bool {
        self.pending.keys().any(|k| k.ta == ta) || self.queue.requests().any(|r| r.ta == ta)
    }

    /// Qualify an escalated request slice against this scheduler's *live*
    /// history state, without mutating anything.
    ///
    /// The slice is loaded into a temporary pending store (ids renumbered
    /// locally) and the built-in protocol rule is evaluated over
    /// `slice` ∪ `history` (∪ aux) via the same per-object incremental
    /// machinery a regular round uses.  Because every built-in rule
    /// evaluates per object and each object lives on exactly one shard,
    /// the conjunction of these shard-local verdicts equals the old
    /// union-snapshot evaluation — that equivalence is what lets the
    /// two-phase escalation handshake freeze only the touched shards.
    pub fn qualify_escalated_slice(
        &self,
        kind: crate::protocol::ProtocolKind,
        slice: &[Request],
    ) -> SchedResult<Vec<RequestKey>> {
        let mut tmp = PendingStore::new();
        let renumbered: Vec<Request> = slice
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let mut r = *r;
                r.id = i as u64 + 1;
                r
            })
            .collect();
        tmp.insert_batch(renumbered)?;
        Ok(crate::qualify::qualify_once(
            kind,
            &tmp,
            &self.history,
            &self.aux,
        ))
    }

    /// Whether `object` is completely idle on this scheduler: no queued
    /// request targets it, no pending request targets it, and no unfinished
    /// transaction holds a lock on it.  This is the quiescence condition a
    /// placement migration requires before an object may leave this shard —
    /// answered from the incremental indexes, not a relation scan.
    pub fn object_idle(&self, object: i64) -> bool {
        self.pending.rows_on_object(object).is_empty()
            && !self.history.lock_index().locked(object)
            && !self
                .queue
                .requests()
                .any(|r| r.op.is_data() && r.object == object)
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> SchedulerMetrics {
        self.metrics
    }

    /// The label of the configured scheduling policy.
    pub fn policy_label(&self) -> String {
        self.policy.label()
    }

    /// Insert requests straight into the history database, bypassing
    /// qualification.  This models requests that were already executed before
    /// the scheduler took over — the paper's Section 4.3 experiment pre-fills
    /// the history table with half of the workload's requests exactly this
    /// way.
    pub fn preload_history(&mut self, requests: &[Request]) -> SchedResult<()> {
        let mut changed = std::mem::take(&mut self.scratch.changed);
        for request in requests {
            self.next_request_id += 1;
            let mut r = *request;
            r.id = self.next_request_id;
            changed.clear();
            self.history.insert_into(&r, &mut changed)?;
            self.qualifier.note_history_changed(&changed);
        }
        changed.clear();
        self.scratch.changed = changed;
        Ok(())
    }

    /// The generation fingerprint of everything qualification depends on.
    fn state_fingerprint(&self) -> [u64; 4] {
        [
            self.pending.generation(),
            self.history.generation(),
            self.aux_generation,
            self.sla_generation,
        ]
    }

    /// Run a round if the trigger condition holds at `now_ms`.
    ///
    /// While `pending` is non-empty a poll used to run a full round — rule
    /// re-evaluation included — even when nothing changed since the last
    /// round, so a blocked request made every idle poll O(state).  A round
    /// that produced an empty batch records the state fingerprint it
    /// evaluated; as long as no arrival, history change, SLA or aux update
    /// has moved the fingerprint, the rule would provably re-derive the
    /// same empty result and the poll is skipped
    /// ([`SchedulerMetrics::rounds_skipped`] counts these).
    pub fn tick(&mut self, now_ms: u64) -> SchedResult<Option<ScheduleBatch>> {
        if !self.config.trigger.should_fire(&self.queue, now_ms) && self.pending.is_empty() {
            return Ok(None);
        }
        if self.queue.is_empty() && self.pending.is_empty() {
            return Ok(None);
        }
        if self.queue.is_empty() && self.noop_fingerprint == Some(self.state_fingerprint()) {
            self.metrics.rounds_skipped += 1;
            return Ok(None);
        }
        self.run_round(now_ms).map(Some)
    }

    /// Run one scheduling round unconditionally.
    pub fn run_round(&mut self, now_ms: u64) -> SchedResult<ScheduleBatch> {
        let round_start = Instant::now();
        self.round += 1;

        // 1. Drain the incoming queue into the pending database.  Both
        //    buffers are round scratch: cleared, never freed.
        let mut drained = std::mem::take(&mut self.scratch.drained);
        let mut changed = std::mem::take(&mut self.scratch.changed);
        let mut drained_keys = std::mem::take(&mut self.scratch.drained_keys);
        drained.clear();
        changed.clear();
        drained_keys.clear();
        self.queue.drain_into(now_ms, &mut drained);
        self.pending.insert_batch_into(&drained, &mut changed)?;
        drained_keys.extend(drained.iter().map(Request::key));
        drained.clear();
        self.scratch.drained = drained;
        self.qualifier.note_pending_changed(&changed);
        let pending_before = self.pending.len();

        // 2. Evaluate the declarative rule.  The hot (built-in incremental)
        //    path extracts the `Copy` facts it needs — kind, ordering, the
        //    interned name — instead of cloning the whole protocol; only the
        //    cold paths (custom rules, from-scratch evaluation) still clone.
        let selected = self.policy.select(pending_before);
        let kind = selected.kind;
        let ordering = selected.rules.ordering;
        let protocol_name: &'static str = if selected.name() == kind.name() {
            kind.name()
        } else {
            Symbol::intern(selected.name()).as_str()
        };
        let hot_path = self.config.incremental && IncrementalQualifier::supports(kind);
        let cold_protocol = if hot_path {
            None
        } else {
            Some(selected.clone())
        };
        if let SchedulingPolicy::Adaptive(a) = &self.policy {
            if a.is_overloaded(pending_before) {
                self.metrics.overload_rounds += 1;
            }
        }
        let mut keys = std::mem::take(&mut self.scratch.keys);
        keys.clear();
        let rule_eval_micros = if hot_path {
            let rule_start = Instant::now();
            self.qualifier
                .qualify_into(kind, &self.pending, &self.history, &self.aux, &mut keys);
            let micros = rule_start.elapsed().as_micros() as u64;
            self.metrics.incremental_rounds += 1;
            self.metrics.delta_rows += self.qualifier.last_delta_rows();
            micros
        } else {
            let protocol = cold_protocol.expect("cold paths cloned the protocol above");
            let (cold_keys, micros) = self.qualify_cold(&protocol)?;
            keys.extend(cold_keys);
            micros
        };

        // 3. Enforce intra-transaction ordering.
        if self.config.enforce_intra_order {
            self.filter_intra_order(&mut keys);
        }

        // 4. Recover the full requests and order them.  The batch buffer is
        //    pooled: it leaves with the `ScheduleBatch` and comes back via
        //    `recycle_batch`.
        let mut batch = self.scratch.batch_pool.pop().unwrap_or_default();
        batch.clear();
        self.pending.take_into(&keys, &mut batch);
        keys.clear();
        self.scratch.keys = keys;
        self.qualifier.note_taken(&batch);
        ordering.sort(&mut batch);

        // 5. Record them in the history database.
        changed.clear();
        self.history.insert_batch_into(batch.iter(), &mut changed)?;
        self.qualifier.note_history_changed(&changed);
        changed.clear();
        self.scratch.changed = changed;
        let pruned = if self.config.prune_history {
            self.history.prune_finished()
        } else {
            0
        };

        let pending_after = self.pending.len();
        let round_micros = round_start.elapsed().as_micros() as u64;

        // Bookkeeping.  Deferral is counted two ways: `requests_deferred`
        // counts each request once, the first time it survives a round
        // unqualified; `deferred_request_rounds` accumulates the waiting
        // request-rounds (the quantity the old `requests_deferred`
        // conflated with a deferral count).  Only this round's arrivals can
        // be *newly* deferred — everything older is already in
        // `deferred_seen` from its own arrival round — so the scan covers
        // the drained keys, not the whole pending backlog.
        for request in &batch {
            self.deferred_seen.remove(&request.key());
        }
        let mut newly_deferred = 0u64;
        for &key in &drained_keys {
            if self.pending.get(key).is_some() && self.deferred_seen.insert(key) {
                newly_deferred += 1;
            }
        }
        drained_keys.clear();
        self.scratch.drained_keys = drained_keys;
        self.metrics.rounds += 1;
        self.metrics.requests_scheduled += batch.len() as u64;
        self.metrics.requests_deferred += newly_deferred;
        self.metrics.deferred_request_rounds += pending_after as u64;
        self.metrics.rule_eval_micros += rule_eval_micros;
        self.metrics.round_micros += round_micros;
        self.metrics.max_batch = self.metrics.max_batch.max(batch.len() as u64);

        // An empty batch with no pruning changed nothing: until the
        // fingerprint moves, `tick` may skip re-evaluating this state.
        self.noop_fingerprint = if batch.is_empty() && pruned == 0 {
            Some(self.state_fingerprint())
        } else {
            None
        };

        Ok(ScheduleBatch {
            round: self.round,
            requests: batch,
            pending_before,
            pending_after,
            rule_eval_micros,
            round_micros,
            protocol: protocol_name,
        })
    }

    /// Return a dispatched batch's buffer to the round pool.  Dispatch
    /// loops call this after executing a [`ScheduleBatch`] so the next
    /// round reuses the allocation instead of growing a fresh `Vec`.
    /// Contents are cleared here; excess buffers beyond the pool cap are
    /// simply dropped.
    pub fn recycle_batch(&mut self, mut requests: Vec<Request>) {
        requests.clear();
        if self.scratch.batch_pool.len() < BATCH_POOL_CAP {
            self.scratch.batch_pool.push(requests);
        }
    }

    /// Discard every request that has not been scheduled yet — the queued
    /// *and* the pending set — without executing anything.  Returns how
    /// many requests were dropped.
    ///
    /// This is the state-side half of a worker kill (the chaos engine's
    /// `Fault::Kill`): the owning loop has already failed its waiting
    /// clients, so the un-admitted requests must never qualify later.
    /// History is left untouched — locks held by already-admitted
    /// transactions stay visible to post-mortem inspection, and a killed
    /// worker schedules nothing afterwards anyway.
    pub fn purge_unscheduled(&mut self, now_ms: u64) -> usize {
        let drained = self.queue.drain(now_ms).len();
        let keys: Vec<RequestKey> = self.pending.keys().collect();
        let taken = self.pending.take(&keys);
        self.qualifier.note_taken(&taken);
        self.deferred_seen.clear();
        self.noop_fingerprint = None;
        drained + taken.len()
    }

    /// Evaluate the qualification rule of `protocol` over the current
    /// state on the *cold* paths: the persistent Datalog evaluation for
    /// custom Datalog rules, or a from-scratch evaluation over a freshly
    /// built catalog.  (The hot built-in incremental path lives inline in
    /// [`DeclarativeScheduler::run_round`], which writes straight into the
    /// round scratch without cloning the protocol.)  Returns the keys plus
    /// the microseconds spent on rule evaluation proper — catalog assembly
    /// is accounted separately in [`SchedulerMetrics::catalog_build_micros`],
    /// never in `rule_eval_micros`, preserving the paper's Section 4.3
    /// metric.
    fn qualify_cold(&mut self, protocol: &Protocol) -> SchedResult<(Vec<RequestKey>, u64)> {
        if self.config.incremental {
            if let RuleBackend::Datalog { program, output } = &protocol.rules.backend {
                let rule_start = Instant::now();
                let keys =
                    self.qualify_custom_datalog(protocol.name(), program, output.as_str())?;
                let micros = rule_start.elapsed().as_micros() as u64;
                self.metrics.incremental_rounds += 1;
                return Ok((keys, micros));
            }
        }
        let catalog_start = Instant::now();
        let catalog = self.build_catalog();
        self.metrics.catalog_build_micros += catalog_start.elapsed().as_micros() as u64;
        let rule_start = Instant::now();
        let keys = protocol.rules.qualify(&catalog)?;
        Ok((keys, rule_start.elapsed().as_micros() as u64))
        // `catalog` drops here, before the stores are mutated, so their
        // copy-on-write snapshots are released and mutation stays in place.
    }

    /// Qualification for custom Datalog protocols via the engine-level
    /// persistent evaluation: the program is stratified once, the fixpoint
    /// survives across rounds, and inputs are fed as deltas — the history
    /// relation append-only while unpruned, the pending relation replaced
    /// only when its generation moved.
    fn qualify_custom_datalog(
        &mut self,
        name: &str,
        program: &datalog::Program,
        output: &str,
    ) -> SchedResult<Vec<RequestKey>> {
        self.refresh_sla_table();
        let stale = self
            .datalog_cache
            .as_ref()
            .is_none_or(|cache| cache.protocol != name);
        if stale {
            self.datalog_cache = Some(DatalogCache {
                protocol: name.to_string(),
                eval: datalog::IncrementalEvaluation::new(program.clone())?,
                pending_generation: u64::MAX,
                history_rows_seen: 0,
                history_prune_epoch: self.history.prune_epoch(),
                sla_generation: u64::MAX,
                aux_generation: u64::MAX,
            });
        }
        let cache = self
            .datalog_cache
            .as_mut()
            .expect("cache was just ensured above");
        let rows_of = |table: &Table| {
            table
                .rows()
                .iter()
                .map(|row| row.values().to_vec())
                .collect::<Vec<_>>()
        };
        if cache.pending_generation != self.pending.generation() {
            cache
                .eval
                .replace_input("requests", rows_of(self.pending.table()))?;
            cache.pending_generation = self.pending.generation();
        }
        let history_table = self.history.table();
        if cache.history_prune_epoch != self.history.prune_epoch()
            || cache.history_rows_seen > history_table.len()
        {
            cache
                .eval
                .replace_input("history", rows_of(history_table))?;
        } else if cache.history_rows_seen < history_table.len() {
            let new_rows = history_table.rows()[cache.history_rows_seen..]
                .iter()
                .map(|row| row.values().to_vec())
                .collect::<Vec<_>>();
            cache.eval.extend_input("history", new_rows)?;
        }
        cache.history_rows_seen = history_table.len();
        cache.history_prune_epoch = self.history.prune_epoch();
        if cache.sla_generation != self.sla_generation {
            cache.eval.replace_input("sla", rows_of(&self.sla_table))?;
            cache.sla_generation = self.sla_generation;
        }
        if cache.aux_generation != self.aux_generation {
            for table in &self.aux {
                cache.eval.replace_input(table.name(), rows_of(table))?;
            }
            cache.aux_generation = self.aux_generation;
        }
        let db = cache.eval.evaluate()?;
        datalog_output_keys(&db.relation_or_empty(output), output)
    }

    /// Rebuild the cached `sla` relation if overwritten metadata made the
    /// append-only copy stale.
    fn refresh_sla_table(&mut self) {
        if !self.sla_rebuild {
            return;
        }
        let mut sla = Table::new("sla", Request::sla_schema());
        for request in self.sla_rows.values() {
            if let Some(tuple) = request.to_sla_tuple() {
                sla.push(tuple)
                    .expect("sla tuples always match the sla schema");
            }
        }
        self.sla_table = sla;
        self.sla_rebuild = false;
    }

    /// Build the relational catalog the rule is evaluated against:
    /// `requests`, `history`, the `sla` relation derived from request
    /// metadata, and any registered auxiliary relations.  Every entry is a
    /// zero-copy snapshot ([`Table`] clones share row storage), and the
    /// `sla` relation is maintained across rounds rather than re-derived.
    fn build_catalog(&mut self) -> Catalog {
        self.refresh_sla_table();
        let mut catalog = Catalog::new();
        catalog.register(self.pending.table().clone());
        catalog.register(self.history.table().clone());
        catalog.register(self.sla_table.clone());
        for table in &self.aux {
            catalog.replace(table.clone());
        }
        catalog
    }

    /// Keep only qualified keys whose earlier same-transaction requests are
    /// either no longer pending or also qualified.  Filters in place using
    /// the round scratch set, asking the pending store for each qualified
    /// transaction's earliest pending step — O(qualified keys), independent
    /// of how large the deferred backlog has grown.
    fn filter_intra_order(&mut self, keys: &mut Vec<RequestKey>) {
        self.scratch.qualified_set.clear();
        self.scratch.qualified_set.extend(keys.iter().copied());
        let qualified = &self.scratch.qualified_set;
        let pending = &self.pending;
        keys.retain(|key| {
            let Some(first) = pending.min_pending_intra(key.ta) else {
                return false;
            };
            // Every pending request of this transaction between the first
            // pending one and this one must be qualified too.
            (first..key.intra).all(|intra| {
                let probe = RequestKey { ta: key.ta, intra };
                pending.get(probe).is_none() || qualified.contains(&probe)
            })
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Backend, Protocol, ProtocolKind};

    fn scheduler(kind: ProtocolKind) -> DeclarativeScheduler {
        DeclarativeScheduler::new(
            Protocol::new(kind, Backend::Algebra),
            SchedulerConfig {
                trigger: TriggerPolicy::Always,
                ..SchedulerConfig::default()
            },
        )
    }

    #[test]
    fn round_moves_qualified_requests_to_history() {
        let mut s = scheduler(ProtocolKind::Ss2pl);
        s.submit(Request::read(0, 1, 0, 10), 0);
        s.submit(Request::write(0, 2, 0, 11), 0);
        let batch = s.run_round(1).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.pending_before, 2);
        assert_eq!(batch.pending_after, 0);
        assert_eq!(s.history_len(), 2);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.metrics().rounds, 1);
        assert_eq!(s.metrics().requests_scheduled, 2);
        assert_eq!(batch.protocol, "ss2pl");
    }

    #[test]
    fn conflicting_request_stays_pending_until_lock_released() {
        let mut s = scheduler(ProtocolKind::Ss2pl);
        // Round 1: T1 writes object 5.
        s.submit(Request::write(0, 1, 0, 5), 0);
        let b1 = s.run_round(0).unwrap();
        assert_eq!(b1.len(), 1);
        // Round 2: T2 wants the same object — deferred.
        s.submit(Request::read(0, 2, 0, 5), 1);
        let b2 = s.run_round(1).unwrap();
        assert!(b2.is_empty());
        assert_eq!(s.pending(), 1);
        // Round 3: T1 commits, which releases the lock …
        s.submit(Request::commit(0, 1, 1), 2);
        let b3 = s.run_round(2).unwrap();
        // The commit qualifies; T2 may or may not qualify in the same round
        // depending on pruning, so run one more round.
        assert!(b3.requests.iter().any(|r| r.ta == 1));
        let b4 = s.run_round(3).unwrap();
        let scheduled: Vec<u64> = b3
            .requests
            .iter()
            .chain(b4.requests.iter())
            .map(|r| r.ta)
            .collect();
        assert!(scheduled.contains(&2), "T2 must eventually be scheduled");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn intra_order_is_enforced_for_batched_submissions() {
        let mut s = scheduler(ProtocolKind::Ss2pl);
        // T1 submits a write on a free object plus its commit in one batch;
        // T2 submits a conflicting write first so T1's write is deferred.
        s.submit(Request::write(0, 1, 0, 7), 0);
        s.run_round(0).unwrap();
        // Now T2's write conflicts, but its commit would trivially qualify.
        s.submit(Request::write(0, 2, 0, 7), 1);
        s.submit(Request::commit(0, 2, 1), 1);
        let batch = s.run_round(1).unwrap();
        // Neither of T2's requests may run: the write is blocked and the
        // commit must wait for the write.
        assert!(batch.is_empty(), "got {:?}", batch.requests);
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn fcfs_schedules_everything_in_submission_order() {
        let mut s = scheduler(ProtocolKind::Fcfs);
        for i in 0..5u64 {
            s.submit(Request::write(0, i + 1, 0, 3), 0);
        }
        let batch = s.run_round(0).unwrap();
        assert_eq!(batch.len(), 5);
        let ids: Vec<u64> = batch.requests.iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn tick_respects_the_trigger() {
        let mut s = DeclarativeScheduler::new(
            Protocol::algebra(ProtocolKind::Ss2pl),
            SchedulerConfig {
                trigger: TriggerPolicy::FillLevel { threshold: 3 },
                ..SchedulerConfig::default()
            },
        );
        s.submit(Request::read(0, 1, 0, 1), 0);
        assert!(s.tick(0).unwrap().is_none());
        s.submit(Request::read(0, 2, 0, 2), 0);
        assert!(s.tick(0).unwrap().is_none());
        s.submit(Request::read(0, 3, 0, 3), 0);
        let batch = s.tick(0).unwrap().expect("fill level reached");
        assert_eq!(batch.len(), 3);
        // Nothing left: tick is a no-op again.
        assert!(s.tick(100).unwrap().is_none());
    }

    #[test]
    fn adaptive_policy_switches_and_counts_overload_rounds() {
        use crate::protocol::AdaptiveProtocol;
        let mut s = DeclarativeScheduler::new(
            AdaptiveProtocol::ss2pl_with_relaxed_overflow(Backend::Algebra, 3),
            SchedulerConfig {
                trigger: TriggerPolicy::Always,
                ..SchedulerConfig::default()
            },
        );
        // Low load: strict protocol blocks the conflicting read.
        s.submit(Request::write(0, 1, 0, 5), 0);
        s.run_round(0).unwrap();
        s.submit(Request::read(0, 2, 0, 5), 1);
        let low = s.run_round(1).unwrap();
        assert_eq!(low.protocol, "ss2pl");
        assert!(low.is_empty());
        // High load (>= 3 pending): relaxed protocol admits reads despite the
        // write lock.
        s.submit(Request::read(0, 3, 0, 5), 2);
        s.submit(Request::read(0, 4, 0, 5), 2);
        let high = s.run_round(2).unwrap();
        assert_eq!(high.protocol, "relaxed-reads");
        assert_eq!(high.len(), 3);
        assert_eq!(s.metrics().overload_rounds, 1);
        assert!(s.policy_label().contains("adaptive"));
    }

    #[test]
    fn metrics_track_round_costs() {
        let mut s = scheduler(ProtocolKind::Ss2pl);
        for i in 0..20u64 {
            s.submit(Request::write(0, i + 1, 0, i as i64), 0);
        }
        s.run_round(0).unwrap();
        let m = s.metrics();
        assert_eq!(m.rounds, 1);
        assert_eq!(m.requests_scheduled, 20);
        assert_eq!(m.max_batch, 20);
        assert!(m.avg_batch_size() > 0.0);
        // Timings are measured (they may legitimately be zero microseconds on
        // a fast machine, so only check they are consistent).
        assert!(m.round_micros >= m.rule_eval_micros);
    }

    #[test]
    fn tick_skips_rounds_while_nothing_changed() {
        let mut s = scheduler(ProtocolKind::Ss2pl);
        // T1 write-locks object 5; T2's read then stays blocked.
        s.submit(Request::write(0, 1, 0, 5), 0);
        s.run_round(0).unwrap();
        s.submit(Request::read(0, 2, 0, 5), 1);
        let blocked_round = s.run_round(1).unwrap();
        assert!(blocked_round.is_empty());
        assert_eq!(s.pending(), 1);

        // Polling with no arrivals used to re-run the rule every time.
        for now in 2..10 {
            assert!(s.tick(now).unwrap().is_none());
        }
        assert_eq!(s.metrics().rounds_skipped, 8);
        assert_eq!(s.metrics().rounds, 2, "no extra rounds ran");

        // A new arrival moves the fingerprint: the next tick really runs,
        // and T1's commit releases the lock for T2 on the following round.
        s.submit(Request::commit(0, 1, 1), 10);
        let commit_round = s.tick(10).unwrap().expect("arrival must run a round");
        assert_eq!(commit_round.len(), 1);
        let release_round = s.tick(11).unwrap().expect("history changed");
        assert_eq!(release_round.requests[0].ta, 2);
        assert!(s.tick(12).unwrap().is_none());
    }

    #[test]
    fn deferral_metrics_count_requests_once_and_rounds_cumulatively() {
        let mut s = scheduler(ProtocolKind::Ss2pl);
        s.submit(Request::write(0, 1, 0, 5), 0);
        s.run_round(0).unwrap();
        // T2 waits three rounds for the lock.
        s.submit(Request::read(0, 2, 0, 5), 1);
        s.run_round(1).unwrap();
        s.run_round(2).unwrap();
        s.run_round(3).unwrap();
        let m = s.metrics();
        assert_eq!(
            m.requests_deferred, 1,
            "one request deferred, however long it waited"
        );
        assert_eq!(m.deferred_request_rounds, 3, "it waited three rounds");
        // Once scheduled, it is not re-counted.
        s.submit(Request::commit(0, 1, 1), 4);
        s.run_round(4).unwrap();
        s.run_round(5).unwrap();
        let m = s.metrics();
        assert_eq!(m.requests_deferred, 1);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn incremental_rounds_and_delta_rows_are_recorded() {
        let mut s = scheduler(ProtocolKind::Ss2pl);
        s.submit(Request::write(0, 1, 0, 5), 0);
        s.run_round(0).unwrap();
        let m = s.metrics();
        assert_eq!(m.incremental_rounds, 1);
        assert_eq!(m.delta_rows, 1);
        assert_eq!(m.catalog_build_micros, 0, "no catalog was assembled");

        // The from-scratch configuration records catalog assembly instead.
        let mut scratch = DeclarativeScheduler::new(
            Protocol::algebra(ProtocolKind::Ss2pl),
            SchedulerConfig {
                trigger: TriggerPolicy::Always,
                incremental: false,
                ..SchedulerConfig::default()
            },
        );
        scratch.submit(Request::write(0, 1, 0, 5), 0);
        scratch.run_round(0).unwrap();
        assert_eq!(scratch.metrics().incremental_rounds, 0);
    }

    #[test]
    fn sla_metadata_flows_into_the_sla_relation() {
        use crate::request::SlaMeta;
        let mut s = scheduler(ProtocolKind::SlaPriority);
        let premium = Request::read(0, 1, 0, 9).with_sla(SlaMeta {
            priority: 3,
            class: "premium",
            arrival_ms: 0,
            deadline_ms: 50,
        });
        s.submit(premium, 0);
        let catalog = s.build_catalog();
        assert_eq!(catalog.get("sla").unwrap().len(), 1);
        let batch = s.run_round(0).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.requests[0].sla.unwrap().priority, 3);
    }
}
