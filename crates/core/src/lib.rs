//! # declsched — the declarative middleware scheduler
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Declarative Scheduling in Highly Scalable Systems*, EDBT 2010 workshops):
//! a scheduler component that sits between clients and a server and is
//! **programmed with declarative rules** instead of hand-coded scheduling
//! algorithms.
//!
//! The architecture follows the paper's Figure 1:
//!
//! ```text
//!  clients ──► incoming queue ──► pending-request DB ──┐
//!                   ▲                                  │ declarative rule
//!                   │ trigger (time / fill level)      ▼ (SQL-style plan or Datalog)
//!                   └──────────────────  history DB ◄── qualified, ordered batch ──► server
//! ```
//!
//! * Requests are **data**: [`request::Request`] mirrors the paper's Table 2
//!   (`ID`, `TA`, `INTRATA`, `Operation`, `Object`) plus optional SLA
//!   metadata.
//! * Scheduling protocols are **declarative rules** ([`rules::RuleSet`])
//!   evaluated over the `requests` (pending) and `history` relations each
//!   round, through either the relational-algebra back-end (`relalg`, the
//!   paper's SQL formulation of Listing 1) or the Datalog back-end.
//! * The [`scheduler::DeclarativeScheduler`] implements the paper's loop:
//!   drain the incoming queue, insert into the pending DB, evaluate the rule,
//!   move qualified requests to the history DB and hand the ordered batch to
//!   the [`dispatch::Dispatcher`], which executes it on the `txnstore` server
//!   with the server's own locking disabled.
//! * A [`passthrough`] mode forwards requests without scheduling, which is
//!   how the paper measures the pure scheduling overhead.
//! * [`middleware`] adds the client-worker / control-instance threading
//!   described in Section 3.3, built on crossbeam channels.
//!
//! ## Sharded topology
//!
//! The paper evaluates one declarative rule over a single global
//! pending-request relation per round — a hard ceiling once the pending set
//! grows.  The `shard` crate lifts that ceiling by partitioning Figure 1
//! horizontally: the `requests` and `history` relations are hash-partitioned
//! by object ([`request::shard_of`]) into N shards, and each shard owns a
//! full private copy of the Figure 1 pipeline (incoming queue → pending DB →
//! rule → history DB → dispatcher) on its own worker thread:
//!
//! ```text
//!             ┌── shard 0: queue → pending₀/history₀ → rule → dispatcher₀
//!  clients ─► router (hash of object footprint)
//!             ├── shard 1: queue → pending₁/history₁ → rule → dispatcher₁
//!             ├── …
//!             └── escalation lane: freeze touched shards → evaluate the rule
//!                 over the UNION of their history relations → execute → release
//! ```
//!
//! Transactions whose [`request::footprint`] maps to one shard never
//! synchronize with any other shard; spanning transactions are escalated to
//! a serialized coordinator lane that freezes the touched shards at a round
//! boundary (a batch-epoch barrier) so SS2PL/C2PL semantics survive the
//! partitioning.  This crate contributes the building blocks the shard layer
//! composes: [`request::footprint`] / [`request::shard_of`] extraction,
//! [`SchedulerMetrics::merge`] for fleet-wide aggregation, and
//! transaction-granularity submission on the middleware client handle.
//!
//! Protocols shipped (all expressed declaratively, see [`protocol`]):
//! SS2PL (the paper's example), conservative 2PL, FCFS, SLA priority,
//! earliest-deadline-first, relaxed reads, consistency rationing and an
//! adaptive protocol that switches consistency levels under load — the
//! paper's stated long-term goal ("reduced consistency criteria may be used
//! during times of high load").

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dispatch;
pub mod error;
pub mod history;
pub mod metrics;
pub mod middleware;
pub mod passthrough;
pub mod pending;
pub mod placement;
pub mod protocol;
pub mod qualify;
pub mod queue;
pub mod request;
pub mod rules;
pub mod scheduler;
pub mod trigger;

pub use dispatch::{DispatchReport, Dispatcher};
pub use error::{SchedError, SchedResult};
// Re-exported so layers above the scheduler (workload generation, session
// façade) can pre-intern their string literals at construction time without
// depending on `relalg` directly.
pub use history::HistoryStore;
pub use metrics::SchedulerMetrics;
pub use middleware::{ClientHandle, Middleware, MiddlewareReport, TxnTicket};
pub use pending::PendingStore;
pub use placement::{FreqSketch, Placement};
pub use protocol::{
    AdaptiveProtocol, Backend, Protocol, ProtocolFeatures, ProtocolKind, SchedulingPolicy,
};
pub use qualify::{qualify_once, IncrementalQualifier};
pub use queue::IncomingQueue;
pub use relalg::Symbol;
pub use request::{footprint, shard_of, Operation, Request, RequestKey, SlaMeta};
pub use rules::{OrderingSpec, RuleBackend, RuleSet};
pub use scheduler::{DeclarativeScheduler, ScheduleBatch, SchedulerConfig};
pub use trigger::TriggerPolicy;

/// Convenient glob import.
pub mod prelude {
    pub use crate::dispatch::{DispatchReport, Dispatcher};
    pub use crate::error::{SchedError, SchedResult};
    pub use crate::history::HistoryStore;
    pub use crate::metrics::SchedulerMetrics;
    pub use crate::passthrough::PassthroughScheduler;
    pub use crate::pending::PendingStore;
    pub use crate::protocol::{
        AdaptiveProtocol, Backend, Protocol, ProtocolFeatures, ProtocolKind, SchedulingPolicy,
    };
    pub use crate::queue::IncomingQueue;
    pub use crate::request::{footprint, shard_of, Operation, Request, RequestKey, SlaMeta};
    pub use crate::rules::{OrderingSpec, RuleBackend, RuleSet};
    pub use crate::scheduler::{DeclarativeScheduler, ScheduleBatch, SchedulerConfig};
    pub use crate::trigger::TriggerPolicy;
}
