//! Scheduler trigger policies.
//!
//! The paper (Section 3.3): "Periodically, the scheduler gets triggered …
//! The trigger condition can be configured (dynamically).  The best condition
//! has to be evaluated experimentally.  Possible conditions are, e.g. a lapse
//! of time, a certain fill level of the incoming queue or a hybrid version."
//! All three are implemented here; the ablation bench A2 compares them.

use crate::queue::IncomingQueue;

/// When should a scheduling round start?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerPolicy {
    /// Fire when at least `interval_ms` virtual milliseconds have passed
    /// since the last drain.
    TimeElapsed {
        /// Interval between rounds.
        interval_ms: u64,
    },
    /// Fire when the incoming queue holds at least `threshold` requests.
    FillLevel {
        /// Queue length threshold.
        threshold: usize,
    },
    /// Fire when either condition holds (the paper's "hybrid version") —
    /// bounded latency *and* bounded batch size.
    Hybrid {
        /// Interval between rounds.
        interval_ms: u64,
        /// Queue length threshold.
        threshold: usize,
    },
    /// Fire on every tick (schedule each request as it arrives); the
    /// degenerate case useful as a baseline in the trigger ablation.
    Always,
}

impl TriggerPolicy {
    /// Decide whether a scheduling round should run at `now_ms` given the
    /// current queue state.  An empty queue never fires.
    pub fn should_fire(&self, queue: &IncomingQueue, now_ms: u64) -> bool {
        if queue.is_empty() {
            return false;
        }
        match *self {
            TriggerPolicy::TimeElapsed { interval_ms } => {
                now_ms.saturating_sub(queue.last_drain_ms()) >= interval_ms
            }
            TriggerPolicy::FillLevel { threshold } => queue.len() >= threshold,
            TriggerPolicy::Hybrid {
                interval_ms,
                threshold,
            } => {
                queue.len() >= threshold
                    || now_ms.saturating_sub(queue.last_drain_ms()) >= interval_ms
            }
            TriggerPolicy::Always => true,
        }
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> String {
        match *self {
            TriggerPolicy::TimeElapsed { interval_ms } => format!("time({interval_ms}ms)"),
            TriggerPolicy::FillLevel { threshold } => format!("fill({threshold})"),
            TriggerPolicy::Hybrid {
                interval_ms,
                threshold,
            } => format!("hybrid({interval_ms}ms,{threshold})"),
            TriggerPolicy::Always => "always".to_string(),
        }
    }
}

impl Default for TriggerPolicy {
    /// The hybrid policy with conservative defaults; the paper expects the
    /// best setting to be found experimentally (bench A2).
    fn default() -> Self {
        TriggerPolicy::Hybrid {
            interval_ms: 10,
            threshold: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn queue_with(n: usize, arrival_ms: u64) -> IncomingQueue {
        let mut q = IncomingQueue::new();
        for i in 0..n {
            q.push(Request::read(i as u64, 1, i as u32, i as i64), arrival_ms);
        }
        q
    }

    #[test]
    fn empty_queue_never_fires() {
        let q = IncomingQueue::new();
        for policy in [
            TriggerPolicy::Always,
            TriggerPolicy::TimeElapsed { interval_ms: 0 },
            TriggerPolicy::FillLevel { threshold: 0 },
            TriggerPolicy::default(),
        ] {
            assert!(!policy.should_fire(&q, 1_000));
        }
    }

    #[test]
    fn time_trigger_waits_for_interval() {
        let mut q = queue_with(1, 0);
        q.drain(0);
        q.push(Request::read(9, 1, 0, 1), 1);
        let policy = TriggerPolicy::TimeElapsed { interval_ms: 10 };
        assert!(!policy.should_fire(&q, 5));
        assert!(policy.should_fire(&q, 10));
    }

    #[test]
    fn fill_trigger_fires_on_threshold() {
        let q = queue_with(7, 0);
        assert!(!TriggerPolicy::FillLevel { threshold: 8 }.should_fire(&q, 0));
        assert!(TriggerPolicy::FillLevel { threshold: 7 }.should_fire(&q, 0));
    }

    #[test]
    fn hybrid_fires_on_either_condition() {
        let policy = TriggerPolicy::Hybrid {
            interval_ms: 100,
            threshold: 5,
        };
        let q = queue_with(5, 0);
        assert!(policy.should_fire(&q, 1)); // fill level reached
        let q = queue_with(1, 0);
        assert!(!policy.should_fire(&q, 50));
        assert!(policy.should_fire(&q, 100)); // time reached
    }

    #[test]
    fn always_fires_whenever_nonempty() {
        let q = queue_with(1, 0);
        assert!(TriggerPolicy::Always.should_fire(&q, 0));
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(TriggerPolicy::Always.label(), "always");
        assert!(TriggerPolicy::default().label().starts_with("hybrid"));
        assert_eq!(
            TriggerPolicy::TimeElapsed { interval_ms: 5 }.label(),
            "time(5ms)"
        );
        assert_eq!(TriggerPolicy::FillLevel { threshold: 3 }.label(), "fill(3)");
    }
}
