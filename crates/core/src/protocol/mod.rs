//! Scheduling protocols, each defined declaratively as a [`RuleSet`].
//!
//! The paper's goal is a scheduler that can express (a) traditional
//! consistency protocols such as variants of 2PL, (b) service-level
//! agreements, and (c) new application-specific consistency protocols — all
//! as declarative rules instead of hand-written scheduler code.  Every
//! protocol below is therefore *data*: a qualification rule (available in
//! both the relational-algebra and the Datalog back-end) plus an ordering
//! specification.  The only imperative code involved is the generic rule
//! evaluator.

mod adaptive;
mod c2pl;
mod fcfs;
mod rationing;
mod relaxed;
mod sla;
mod ss2pl;

pub use adaptive::{AdaptiveProtocol, SchedulingPolicy};
pub use c2pl::C2PL_DATALOG_SOURCE;
pub use fcfs::FCFS_DATALOG_SOURCE;
pub use rationing::{object_class_table, ObjectClass, RATIONING_DATALOG_SOURCE};
pub use relaxed::RELAXED_DATALOG_SOURCE;
pub use ss2pl::SS2PL_DATALOG_SOURCE;

use crate::rules::RuleSet;
use std::fmt;

/// Which rule back-end a protocol constructor should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Relational-algebra plans (the paper's SQL formulation).
    Algebra,
    /// Stratified Datalog programs.
    Datalog,
}

/// The protocols shipped with the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Strong strict two-phase locking — the paper's running example
    /// (Listing 1); guarantees serialisability.
    Ss2pl,
    /// Conservative 2PL: a transaction's requests qualify only when none of
    /// them conflicts, avoiding mid-transaction blocking.
    Conservative2pl,
    /// First-come-first-served without consistency checks (the relaxed
    /// baseline / passthrough-equivalent protocol).
    Fcfs,
    /// SS2PL qualification with SLA-priority dispatch ordering
    /// (premium before free customers).
    SlaPriority,
    /// SS2PL qualification with earliest-deadline-first dispatch ordering.
    EarliestDeadline,
    /// Reads always qualify (read-committed-style relaxation); writes follow
    /// the SS2PL write rules.
    RelaxedReads,
    /// Consistency rationing: objects classified `A` (critical) keep SS2PL,
    /// objects classified `C` (relaxed) always qualify.
    ConsistencyRationing,
    /// A user-defined protocol, e.g. one compiled from a SchedLang program
    /// or assembled directly from a [`RuleSet`].
    Custom,
}

impl ProtocolKind {
    /// Canonical protocol name used in output and configuration.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Ss2pl => "ss2pl",
            ProtocolKind::Conservative2pl => "c2pl",
            ProtocolKind::Fcfs => "fcfs",
            ProtocolKind::SlaPriority => "sla-priority",
            ProtocolKind::EarliestDeadline => "edf",
            ProtocolKind::RelaxedReads => "relaxed-reads",
            ProtocolKind::ConsistencyRationing => "rationing",
            ProtocolKind::Custom => "custom",
        }
    }

    /// All shipped protocol kinds.
    pub fn all() -> &'static [ProtocolKind] {
        &[
            ProtocolKind::Ss2pl,
            ProtocolKind::Conservative2pl,
            ProtocolKind::Fcfs,
            ProtocolKind::SlaPriority,
            ProtocolKind::EarliestDeadline,
            ProtocolKind::RelaxedReads,
            ProtocolKind::ConsistencyRationing,
        ]
    }
}

/// The qualitative feature axes of the paper's Table 1:
/// performance, quality of service, declarativity, flexibility,
/// high scalability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolFeatures {
    /// Improves/ensures performance (P).
    pub performance: bool,
    /// Supports quality-of-service differentiation (QoS).
    pub qos: bool,
    /// Protocol is defined declaratively (D).
    pub declarative: bool,
    /// Protocol can be exchanged without reimplementation (F).
    pub flexible: bool,
    /// Targets high user scalability (HS).
    pub high_scalability: bool,
}

impl ProtocolFeatures {
    /// Render as the `+`/`-` row format of the paper's Table 1.
    pub fn as_row(&self) -> String {
        let sym = |b: bool| if b { "+" } else { "-" };
        format!(
            "{} {} {} {} {}",
            sym(self.performance),
            sym(self.qos),
            sym(self.declarative),
            sym(self.flexible),
            sym(self.high_scalability)
        )
    }
}

/// A complete protocol: its identity, its declarative rule set and its
/// qualitative features.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Which protocol this is.
    pub kind: ProtocolKind,
    /// The declarative definition.
    pub rules: RuleSet,
    /// Feature axes for the Table 1 reproduction.
    pub features: ProtocolFeatures,
    /// One-line human description.
    pub description: &'static str,
}

impl Protocol {
    /// Construct a protocol of the given kind with the given rule back-end.
    ///
    /// # Panics
    /// Panics if `kind` is [`ProtocolKind::Custom`] — custom protocols carry
    /// their own rules and are built with [`Protocol::custom`] instead.
    pub fn new(kind: ProtocolKind, backend: Backend) -> Protocol {
        match kind {
            ProtocolKind::Ss2pl => ss2pl::build(backend),
            ProtocolKind::Conservative2pl => c2pl::build(backend),
            ProtocolKind::Fcfs => fcfs::build(backend),
            ProtocolKind::SlaPriority => sla::build_priority(backend),
            ProtocolKind::EarliestDeadline => sla::build_edf(backend),
            ProtocolKind::RelaxedReads => relaxed::build(backend),
            ProtocolKind::ConsistencyRationing => rationing::build(backend),
            ProtocolKind::Custom => {
                panic!("custom protocols are built with Protocol::custom(rule_set)")
            }
        }
    }

    /// Wrap a user-defined rule set (e.g. compiled from SchedLang) as a
    /// protocol.  Custom protocols advertise the full feature set of the
    /// declarative approach: they are by construction declarative and
    /// exchangeable.
    pub fn custom(rules: RuleSet, description: &'static str) -> Protocol {
        Protocol {
            kind: ProtocolKind::Custom,
            rules,
            features: ProtocolFeatures {
                performance: true,
                qos: true,
                declarative: true,
                flexible: true,
                high_scalability: true,
            },
            description,
        }
    }

    /// Shorthand for [`Protocol::new`] with [`Backend::Algebra`].
    pub fn algebra(kind: ProtocolKind) -> Protocol {
        Protocol::new(kind, Backend::Algebra)
    }

    /// Shorthand for [`Protocol::new`] with [`Backend::Datalog`].
    pub fn datalog(kind: ProtocolKind) -> Protocol {
        Protocol::new(kind, Backend::Datalog)
    }

    /// The protocol's name: the rule set's name, which for built-in
    /// protocols equals the kind's canonical name.
    pub fn name(&self) -> &str {
        &self.rules.name
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.rules.backend.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_builds_on_both_backends() {
        for &kind in ProtocolKind::all() {
            for backend in [Backend::Algebra, Backend::Datalog] {
                let p = Protocol::new(kind, backend);
                assert_eq!(p.kind, kind);
                assert_eq!(p.rules.name, kind.name());
                // Declarativity and flexibility are the point of the system:
                // every protocol defined here carries them.
                assert!(p.features.declarative);
                assert!(p.features.flexible);
                assert!(!p.description.is_empty());
            }
        }
    }

    #[test]
    fn feature_rows_render_like_table_1() {
        let p = Protocol::algebra(ProtocolKind::Ss2pl);
        let row = p.features.as_row();
        assert_eq!(row.split_whitespace().count(), 5);
        assert!(row.contains('+'));
        let qos = Protocol::algebra(ProtocolKind::SlaPriority);
        assert!(qos.features.qos);
        assert!(!Protocol::algebra(ProtocolKind::Fcfs).features.qos);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ProtocolKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProtocolKind::all().len());
    }

    #[test]
    fn display_mentions_backend() {
        let p = Protocol::datalog(ProtocolKind::Ss2pl);
        assert_eq!(p.to_string(), "ss2pl (datalog)");
    }
}
