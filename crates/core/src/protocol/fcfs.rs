//! First-come-first-served: every pending request qualifies.
//!
//! This protocol performs no consistency checking at all — it is the
//! declarative equivalent of the non-scheduling passthrough mode and the
//! lower bound of rule-evaluation cost in the back-end ablation.  It is also
//! the building block the relaxed-consistency protocols start from: "for
//! most parts of modern highly scalable web applications … relaxed
//! consistency is sufficient."

use super::{Backend, Protocol, ProtocolFeatures, ProtocolKind};
use crate::rules::{OrderingSpec, RuleBackend, RuleSet};
use relalg::{Expr, Plan, PlanBuilder};

/// The FCFS qualification plan: all pending `(ta, intrata)` pairs.
pub fn fcfs_algebra_plan() -> Plan {
    PlanBuilder::scan("requests")
        .project(vec![Expr::col("ta"), Expr::col("intrata")])
        .build()
}

/// The Datalog source of the FCFS protocol — a single rule.
pub const FCFS_DATALOG_SOURCE: &str = "qualified(T, I) :- requests(Id, T, I, Op, O).\n";

/// Build the FCFS protocol on the requested back-end.
pub(crate) fn build(backend: Backend) -> Protocol {
    let rule_backend = match backend {
        Backend::Algebra => RuleBackend::Algebra {
            plan: fcfs_algebra_plan(),
        },
        Backend::Datalog => RuleBackend::Datalog {
            program: datalog::parse_program(FCFS_DATALOG_SOURCE)
                .expect("embedded FCFS program parses"),
            output: "qualified".to_string(),
        },
    };
    Protocol {
        kind: ProtocolKind::Fcfs,
        rules: RuleSet::new(
            ProtocolKind::Fcfs.name(),
            rule_backend,
            OrderingSpec::FifoById,
        ),
        features: ProtocolFeatures {
            performance: true,
            qos: false,
            declarative: true,
            flexible: true,
            high_scalability: true,
        },
        description: "First-come-first-served: no consistency checks, arrival-order dispatch",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use relalg::{Catalog, Table};

    #[test]
    fn everything_qualifies_on_both_backends() {
        let mut c = Catalog::new();
        let mut requests = Table::new("requests", Request::schema());
        let pending = [
            Request::write(1, 1, 0, 5),
            Request::write(2, 2, 0, 5), // conflicting object — FCFS does not care
            Request::commit(3, 3, 0),
        ];
        for r in &pending {
            requests.push(r.to_tuple()).unwrap();
        }
        c.register(requests);
        c.register(Table::new("history", Request::schema()));

        for backend in [Backend::Algebra, Backend::Datalog] {
            let qualified = build(backend).rules.qualify(&c).unwrap();
            assert_eq!(qualified.len(), 3);
        }
    }
}
