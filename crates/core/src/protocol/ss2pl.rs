//! Strong strict two-phase locking (SS2PL), formulated declaratively.
//!
//! This is the paper's running example (Section 4, Listing 1).  The SQL of
//! Listing 1 maps onto the relational-algebra plan built by
//! [`ss2pl_algebra_plan`] CTE by CTE:
//!
//! | Listing 1 CTE | here |
//! |---|---|
//! | `RLockedObjects` | [`rlocked_objects_plan`] |
//! | `WLockedObjects` | [`wlocked_objects_plan`] |
//! | `OperationsOnWLockedObjects` | first branch of [`blocked_keys_plan`] |
//! | `OperationsOnRLockedObjects` | second branch of [`blocked_keys_plan`] |
//! | `OpsOnSameObjAsPriorSelectOps` | third branch of [`blocked_keys_plan`] |
//! | `QualifiedSS2PLOps` | the final `EXCEPT` in [`ss2pl_algebra_plan`] |
//!
//! The Datalog formulation ([`ss2pl_datalog_program`]) derives the same
//! relations as predicates; both back-ends must qualify exactly the same
//! requests (checked by integration tests and property tests).
//!
//! Like the paper, the rule assumes each transaction accesses an object at
//! most once per pending batch ("we assume that each transaction accesses an
//! object only once").

use super::{Backend, Protocol, ProtocolFeatures, ProtocolKind};
use crate::rules::{OrderingSpec, RuleBackend, RuleSet};
use datalog::Program;
use relalg::{Expr, JoinKind, Plan, PlanBuilder, Value};

/// Column names of the history relation after renaming for joins.
pub(crate) const H_COLS: [&str; 5] = ["h_id", "h_ta", "h_intrata", "h_operation", "h_object"];

/// A scan of the `history` relation with its columns renamed so joins with
/// `requests` stay unambiguous.
pub(crate) fn history_renamed() -> PlanBuilder {
    PlanBuilder::scan("history").rename(H_COLS.to_vec())
}

/// `WLockedObjects`: objects write-locked by transactions that have neither
/// committed nor aborted.  Output columns: `(h_object, h_ta)`.
pub(crate) fn wlocked_objects_plan() -> PlanBuilder {
    let finished = PlanBuilder::scan("history")
        .filter(Expr::col("operation").in_list(vec![Value::str("a"), Value::str("c")]))
        .project(vec![Expr::col("ta")])
        .rename(vec!["f_ta"]);
    history_renamed()
        .filter(Expr::col("h_operation").eq(Expr::lit("w")))
        .join(
            finished,
            JoinKind::Anti,
            Some(Expr::col("h_ta").eq(Expr::col("f_ta"))),
        )
        .project(vec![Expr::col("h_object"), Expr::col("h_ta")])
        .distinct()
}

/// `RLockedObjects`: objects read-locked by transactions that have not
/// finished and have not also written the same object.  Output columns:
/// `(h_object, h_ta)`.
///
/// Listing 1 expresses this with a single `NOT EXISTS` whose predicate is a
/// disjunction; here the disjunction is split into two separate anti-joins
/// (one per disjunct), which is semantically identical but lets the executor
/// use hash joins instead of a nested loop — the kind of rewrite the paper
/// expects the query optimiser to perform on the scheduler's behalf.
pub(crate) fn rlocked_objects_plan() -> PlanBuilder {
    let finished = PlanBuilder::scan("history")
        .filter(Expr::col("operation").in_list(vec![Value::str("a"), Value::str("c")]))
        .project(vec![Expr::col("ta")])
        .rename(vec!["f_ta"]);
    let writes = PlanBuilder::scan("history")
        .filter(Expr::col("operation").eq(Expr::lit("w")))
        .project(vec![Expr::col("ta"), Expr::col("object")])
        .rename(vec!["w_ta", "w_object"]);
    history_renamed()
        .filter(Expr::col("h_operation").eq(Expr::lit("r")))
        .join(
            finished,
            JoinKind::Anti,
            Some(Expr::col("h_ta").eq(Expr::col("f_ta"))),
        )
        .join(
            writes,
            JoinKind::Anti,
            Some(
                Expr::col("h_ta")
                    .eq(Expr::col("w_ta"))
                    .and(Expr::col("h_object").eq(Expr::col("w_object"))),
            ),
        )
        .project(vec![Expr::col("h_object"), Expr::col("h_ta")])
        .distinct()
}

/// The union of the three exclusion sets of Listing 1, projected to
/// `(ta, intrata)` of the pending requests that may **not** run yet.
pub(crate) fn blocked_keys_plan() -> PlanBuilder {
    // Pending requests touching an object write-locked by another txn.
    let on_wlocked = PlanBuilder::scan("requests")
        .join(
            wlocked_objects_plan().rename(vec!["lock_object", "lock_ta"]),
            JoinKind::Inner,
            Some(
                Expr::col("object")
                    .eq(Expr::col("lock_object"))
                    .and(Expr::col("ta").neq(Expr::col("lock_ta"))),
            ),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")]);

    // Pending *write* requests touching an object read-locked by another txn.
    let on_rlocked = PlanBuilder::scan("requests")
        .filter(Expr::col("operation").eq(Expr::lit("w")))
        .join(
            rlocked_objects_plan().rename(vec!["lock_object", "lock_ta"]),
            JoinKind::Inner,
            Some(
                Expr::col("object")
                    .eq(Expr::col("lock_object"))
                    .and(Expr::col("ta").neq(Expr::col("lock_ta"))),
            ),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")]);

    // Conflicts inside the pending batch itself: a request loses against an
    // earlier (lower TA) pending request on the same object when either of
    // the two is a write.
    let prior = PlanBuilder::scan("requests").rename(vec![
        "p_id",
        "p_ta",
        "p_intrata",
        "p_operation",
        "p_object",
    ]);
    let on_prior = PlanBuilder::scan("requests")
        .join(
            prior,
            JoinKind::Inner,
            Some(
                Expr::col("object")
                    .eq(Expr::col("p_object"))
                    .and(Expr::col("ta").gt(Expr::col("p_ta")))
                    .and(
                        Expr::col("p_operation")
                            .eq(Expr::lit("w"))
                            .or(Expr::col("operation").eq(Expr::lit("w"))),
                    ),
            ),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")]);

    on_wlocked.union_all(on_rlocked).union_all(on_prior)
}

/// The full SS2PL qualification plan: all pending `(ta, intrata)` pairs
/// except the blocked ones (Listing 1's `QualifiedSS2PLOps`).
pub fn ss2pl_algebra_plan() -> Plan {
    PlanBuilder::scan("requests")
        .project(vec![Expr::col("ta"), Expr::col("intrata")])
        .except(blocked_keys_plan())
        .build()
}

/// The SS2PL rule as a Datalog program.  The output predicate is
/// `qualified(Ta, Intra)`.
pub fn ss2pl_datalog_program() -> Program {
    datalog::parse_program(SS2PL_DATALOG_SOURCE).expect("embedded SS2PL program parses")
}

/// The Datalog source of the SS2PL protocol — kept as text so examples can
/// print it and so it can serve as documentation of how compact the
/// declarative definition is compared to an imperative lock manager.
pub const SS2PL_DATALOG_SOURCE: &str = r#"
% --- lock bookkeeping derived from the history relation -------------------
finished(T)   :- history(Id, T, I, "c", O).
finished(T)   :- history(Id, T, I, "a", O).
wrote(T, O)   :- history(Id, T, I, "w", O).
wlocked(O, T) :- history(Id, T, I, "w", O), !finished(T).
rlocked(O, T) :- history(Id, T, I, "r", O), !finished(T), !wrote(T, O).

% --- pending requests that must wait ---------------------------------------
blocked(T, I) :- requests(Id, T, I, Op, O), wlocked(O, T2), T != T2.
blocked(T, I) :- requests(Id, T, I, "w", O), rlocked(O, T2), T != T2.
blocked(T2, I2) :- requests(Id2, T2, I2, Op2, O), requests(Id1, T1, I1, "w", O), T2 > T1.
blocked(T2, I2) :- requests(Id2, T2, I2, "w", O), requests(Id1, T1, I1, Op1, O), T2 > T1.

% --- everything else may execute now ---------------------------------------
qualified(T, I) :- requests(Id, T, I, Op, O), !blocked(T, I).
"#;

/// Build the SS2PL protocol on the requested back-end.
pub(crate) fn build(backend: Backend) -> Protocol {
    let rule_backend = match backend {
        Backend::Algebra => RuleBackend::Algebra {
            plan: ss2pl_algebra_plan(),
        },
        Backend::Datalog => RuleBackend::Datalog {
            program: ss2pl_datalog_program(),
            output: "qualified".to_string(),
        },
    };
    Protocol {
        kind: ProtocolKind::Ss2pl,
        rules: RuleSet::new(
            ProtocolKind::Ss2pl.name(),
            rule_backend,
            OrderingSpec::FifoById,
        ),
        features: ProtocolFeatures {
            performance: true,
            qos: false,
            declarative: true,
            flexible: true,
            high_scalability: true,
        },
        description:
            "Strong strict 2PL: serialisable schedules via declarative lock rules (paper Listing 1)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use relalg::{Catalog, Table};

    /// Build a catalog from pending and history request lists.
    fn catalog(pending: &[Request], history: &[Request]) -> Catalog {
        let mut c = Catalog::new();
        let mut requests = Table::new("requests", Request::schema());
        for r in pending {
            requests.push(r.to_tuple()).unwrap();
        }
        let mut hist = Table::new("history", Request::schema());
        for r in history {
            hist.push(r.to_tuple()).unwrap();
        }
        c.register(requests);
        c.register(hist);
        c
    }

    fn qualify_both(pending: &[Request], history: &[Request]) -> Vec<(u64, u32)> {
        let c = catalog(pending, history);
        let algebra = build(Backend::Algebra).rules.qualify(&c).unwrap();
        let datalog = build(Backend::Datalog).rules.qualify(&c).unwrap();
        assert_eq!(
            algebra, datalog,
            "algebra and datalog SS2PL rules disagree\npending: {pending:?}\nhistory: {history:?}"
        );
        algebra.into_iter().map(|k| (k.ta, k.intra)).collect()
    }

    #[test]
    fn empty_history_qualifies_non_conflicting_requests() {
        // Two requests on different objects: both qualify.
        let qualified = qualify_both(
            &[Request::read(1, 10, 0, 100), Request::write(2, 11, 0, 101)],
            &[],
        );
        assert_eq!(qualified, vec![(10, 0), (11, 0)]);
    }

    #[test]
    fn write_lock_in_history_blocks_other_transactions() {
        // T20 holds a write lock on object 7 (wrote it, not finished).
        let history = [Request::write(1, 20, 0, 7)];
        let pending = [
            Request::read(2, 21, 0, 7),  // blocked: object write-locked by T20
            Request::write(3, 22, 0, 8), // free object: qualifies
            Request::read(4, 20, 1, 7),  // T20's own request: qualifies
        ];
        let qualified = qualify_both(&pending, &history);
        assert_eq!(qualified, vec![(20, 1), (22, 0)]);
    }

    #[test]
    fn committed_write_lock_is_released() {
        // T20 wrote object 7 but committed: the lock is gone.
        let history = [Request::write(1, 20, 0, 7), Request::commit(2, 20, 1)];
        let pending = [Request::read(3, 21, 0, 7)];
        assert_eq!(qualify_both(&pending, &history), vec![(21, 0)]);
    }

    #[test]
    fn read_lock_blocks_writers_but_not_readers() {
        // T30 read object 9 and is still active.
        let history = [Request::read(1, 30, 0, 9)];
        let pending = [
            Request::write(2, 31, 0, 9), // blocked by the read lock
            Request::read(3, 32, 0, 9),  // shared with the read lock: qualifies
        ];
        // NOTE: request (32,0) also conflicts with pending (31,0) through the
        // prior-ops rule only if the earlier pending request is a write and
        // has a smaller TA — 31 < 32 and is a write, so (32,0) is blocked as
        // well.  Verify exactly that.
        assert_eq!(qualify_both(&pending, &history), vec![]);
        // Without the pending writer, the reader qualifies.
        let pending = [Request::read(3, 32, 0, 9)];
        assert_eq!(qualify_both(&pending, &history), vec![(32, 0)]);
    }

    #[test]
    fn read_write_by_same_transaction_counts_as_write_lock() {
        // T40 read then wrote object 5 → write lock, and its read must not
        // additionally appear as a read lock (Listing 1's NOT EXISTS).
        let history = [Request::read(1, 40, 0, 5), Request::write(2, 40, 1, 5)];
        let pending = [
            Request::read(3, 41, 0, 5),  // blocked by T40's write lock
            Request::write(4, 40, 2, 5), // T40 itself: qualifies
        ];
        assert_eq!(qualify_both(&pending, &history), vec![(40, 2)]);
    }

    #[test]
    fn conflicts_within_the_pending_batch_prefer_lower_ta() {
        let pending = [
            Request::write(1, 50, 0, 3),
            Request::write(2, 51, 0, 3), // loses against T50 on the same object
            Request::read(3, 52, 0, 3),  // also loses (write earlier in batch)
        ];
        assert_eq!(qualify_both(&pending, &[]), vec![(50, 0)]);
    }

    #[test]
    fn reads_in_batch_do_not_conflict_with_each_other() {
        let pending = [
            Request::read(1, 60, 0, 4),
            Request::read(2, 61, 0, 4),
            Request::read(3, 62, 0, 4),
        ];
        assert_eq!(qualify_both(&pending, &[]), vec![(60, 0), (61, 0), (62, 0)]);
    }

    #[test]
    fn commit_requests_always_qualify() {
        let history = [Request::write(1, 70, 0, 2)];
        let pending = [Request::commit(2, 70, 1), Request::commit(3, 71, 0)];
        assert_eq!(qualify_both(&pending, &history), vec![(70, 1), (71, 0)]);
    }

    #[test]
    fn qualified_count_is_roughly_half_under_pairwise_conflicts() {
        // Mirror the paper's observation that the rule returns roughly half
        // of the pending requests when every object is contended by two
        // transactions.
        let mut pending = Vec::new();
        for i in 0..50u64 {
            // Two transactions per object; the lower TA wins.
            pending.push(Request::write(2 * i, 100 + 2 * i, 0, i as i64));
            pending.push(Request::write(2 * i + 1, 100 + 2 * i + 1, 0, i as i64));
        }
        let qualified = qualify_both(&pending, &[]);
        assert_eq!(qualified.len(), 50);
    }

    #[test]
    fn datalog_source_is_printable_and_compact() {
        // The declarative definition the paper argues for: a handful of rules.
        let rule_lines = SS2PL_DATALOG_SOURCE
            .lines()
            .filter(|l| l.contains(":-"))
            .count();
        assert!(
            rule_lines <= 12,
            "SS2PL should stay compact, got {rule_lines} rules"
        );
        // And it actually parses.
        let _ = ss2pl_datalog_program();
    }
}
