//! Conservative two-phase locking, declaratively.
//!
//! Under conservative (static) 2PL a transaction only proceeds when *all* of
//! its pending requests are conflict-free — it never blocks mid-transaction,
//! which rules out deadlocks at the cost of admitting fewer requests per
//! round.  Declaratively this is a one-line change over SS2PL: instead of
//! excluding blocked *requests*, exclude every request of a *transaction*
//! that has at least one blocked request.  The ease of this change is
//! precisely the flexibility argument of the paper.

use super::ss2pl::blocked_keys_plan;
use super::{Backend, Protocol, ProtocolFeatures, ProtocolKind};
use crate::rules::{OrderingSpec, RuleBackend, RuleSet};
use relalg::{Expr, JoinKind, Plan, PlanBuilder};

/// The conservative-2PL qualification plan: pending `(ta, intrata)` pairs of
/// transactions none of whose requests is blocked.
pub fn c2pl_algebra_plan() -> Plan {
    let blocked_tas = blocked_keys_plan()
        .project(vec![Expr::col("ta")])
        .distinct()
        .rename(vec!["blocked_ta"]);
    PlanBuilder::scan("requests")
        .join(
            blocked_tas,
            JoinKind::Anti,
            Some(Expr::col("ta").eq(Expr::col("blocked_ta"))),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")])
        .build()
}

/// The Datalog source of the conservative-2PL protocol.
pub const C2PL_DATALOG_SOURCE: &str = r#"
finished(T)   :- history(Id, T, I, "c", O).
finished(T)   :- history(Id, T, I, "a", O).
wrote(T, O)   :- history(Id, T, I, "w", O).
wlocked(O, T) :- history(Id, T, I, "w", O), !finished(T).
rlocked(O, T) :- history(Id, T, I, "r", O), !finished(T), !wrote(T, O).

blocked(T, I) :- requests(Id, T, I, Op, O), wlocked(O, T2), T != T2.
blocked(T, I) :- requests(Id, T, I, "w", O), rlocked(O, T2), T != T2.
blocked(T2, I2) :- requests(Id2, T2, I2, Op2, O), requests(Id1, T1, I1, "w", O), T2 > T1.
blocked(T2, I2) :- requests(Id2, T2, I2, "w", O), requests(Id1, T1, I1, Op1, O), T2 > T1.

% The conservative twist: one blocked request blocks the whole transaction.
txn_blocked(T)  :- blocked(T, I).
qualified(T, I) :- requests(Id, T, I, Op, O), !txn_blocked(T).
"#;

/// Build the conservative-2PL protocol on the requested back-end.
pub(crate) fn build(backend: Backend) -> Protocol {
    let rule_backend = match backend {
        Backend::Algebra => RuleBackend::Algebra {
            plan: c2pl_algebra_plan(),
        },
        Backend::Datalog => RuleBackend::Datalog {
            program: datalog::parse_program(C2PL_DATALOG_SOURCE)
                .expect("embedded C2PL program parses"),
            output: "qualified".to_string(),
        },
    };
    Protocol {
        kind: ProtocolKind::Conservative2pl,
        rules: RuleSet::new(
            ProtocolKind::Conservative2pl.name(),
            rule_backend,
            OrderingSpec::ByTransaction,
        ),
        features: ProtocolFeatures {
            performance: true,
            qos: false,
            declarative: true,
            flexible: true,
            high_scalability: true,
        },
        description: "Conservative 2PL: a transaction is admitted only when all of its pending requests are conflict-free",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use relalg::{Catalog, Table};

    fn catalog(pending: &[Request], history: &[Request]) -> Catalog {
        let mut c = Catalog::new();
        let mut requests = Table::new("requests", Request::schema());
        for r in pending {
            requests.push(r.to_tuple()).unwrap();
        }
        let mut hist = Table::new("history", Request::schema());
        for r in history {
            hist.push(r.to_tuple()).unwrap();
        }
        c.register(requests);
        c.register(hist);
        c
    }

    fn qualify_both(pending: &[Request], history: &[Request]) -> Vec<(u64, u32)> {
        let c = catalog(pending, history);
        let algebra = build(Backend::Algebra).rules.qualify(&c).unwrap();
        let datalog = build(Backend::Datalog).rules.qualify(&c).unwrap();
        assert_eq!(algebra, datalog, "algebra and datalog C2PL rules disagree");
        algebra.into_iter().map(|k| (k.ta, k.intra)).collect()
    }

    #[test]
    fn one_blocked_request_excludes_the_whole_transaction() {
        // T10 holds a write lock on object 5 (from history).
        let history = [Request::write(1, 10, 0, 5)];
        // T11 has two pending requests, one of which conflicts.
        let pending = [
            Request::read(2, 11, 0, 5), // conflicts
            Request::read(3, 11, 1, 6), // would be fine under SS2PL
            Request::read(4, 12, 0, 7), // independent transaction
        ];
        let qualified = qualify_both(&pending, &history);
        assert_eq!(qualified, vec![(12, 0)]);
    }

    #[test]
    fn conflict_free_transactions_are_admitted_whole() {
        let pending = [
            Request::read(1, 20, 0, 1),
            Request::write(2, 20, 1, 2),
            Request::read(3, 21, 0, 3),
        ];
        let qualified = qualify_both(&pending, &[]);
        assert_eq!(qualified, vec![(20, 0), (20, 1), (21, 0)]);
    }

    #[test]
    fn c2pl_admits_a_subset_of_ss2pl() {
        use super::super::ss2pl;
        let history = [Request::write(1, 30, 0, 9)];
        let pending = [
            Request::read(2, 31, 0, 9),
            Request::read(3, 31, 1, 10),
            Request::write(4, 32, 0, 11),
        ];
        let c = catalog(&pending, &history);
        let c2pl: std::collections::BTreeSet<_> = build(Backend::Algebra)
            .rules
            .qualify(&c)
            .unwrap()
            .into_iter()
            .collect();
        let ss2pl: std::collections::BTreeSet<_> = ss2pl::build(Backend::Algebra)
            .rules
            .qualify(&c)
            .unwrap()
            .into_iter()
            .collect();
        assert!(c2pl.is_subset(&ss2pl));
        assert!(c2pl.len() < ss2pl.len());
    }
}
