//! Relaxed reads: a read-committed-style application-specific consistency
//! protocol.
//!
//! Reads (and transaction terminators) always qualify — they never wait for
//! locks — while writes still follow the SS2PL write-write rules.  This is
//! the kind of "application specific consistency protocol" the paper wants
//! to make declarable: for a hotel-reservation or web-shop read path, stale
//! reads are acceptable, but lost updates are not.

use super::ss2pl::wlocked_objects_plan;
use super::{Backend, Protocol, ProtocolFeatures, ProtocolKind};
use crate::rules::{OrderingSpec, RuleBackend, RuleSet};
use relalg::{Expr, JoinKind, Plan, PlanBuilder, Value};

/// The relaxed-reads qualification plan.
pub fn relaxed_algebra_plan() -> Plan {
    // Reads, commits and aborts always qualify.
    let non_writes = PlanBuilder::scan("requests")
        .filter(Expr::col("operation").in_list(vec![
            Value::str("r"),
            Value::str("c"),
            Value::str("a"),
        ]))
        .project(vec![Expr::col("ta"), Expr::col("intrata")]);

    // Writes blocked by a write lock held by another transaction …
    let writes_on_wlocked = PlanBuilder::scan("requests")
        .filter(Expr::col("operation").eq(Expr::lit("w")))
        .join(
            wlocked_objects_plan().rename(vec!["lock_object", "lock_ta"]),
            JoinKind::Inner,
            Some(
                Expr::col("object")
                    .eq(Expr::col("lock_object"))
                    .and(Expr::col("ta").neq(Expr::col("lock_ta"))),
            ),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")]);

    // … or by an earlier pending write on the same object.
    let prior_writes = PlanBuilder::scan("requests").rename(vec![
        "p_id",
        "p_ta",
        "p_intrata",
        "p_operation",
        "p_object",
    ]);
    let writes_on_prior = PlanBuilder::scan("requests")
        .filter(Expr::col("operation").eq(Expr::lit("w")))
        .join(
            prior_writes,
            JoinKind::Inner,
            Some(
                Expr::col("object")
                    .eq(Expr::col("p_object"))
                    .and(Expr::col("ta").gt(Expr::col("p_ta")))
                    .and(Expr::col("p_operation").eq(Expr::lit("w"))),
            ),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")]);

    let free_writes = PlanBuilder::scan("requests")
        .filter(Expr::col("operation").eq(Expr::lit("w")))
        .project(vec![Expr::col("ta"), Expr::col("intrata")])
        .except(writes_on_wlocked.union_all(writes_on_prior));

    non_writes.union_all(free_writes).distinct().build()
}

/// The Datalog source of the relaxed-reads protocol.
pub const RELAXED_DATALOG_SOURCE: &str = r#"
finished(T)   :- history(Id, T, I, "c", O).
finished(T)   :- history(Id, T, I, "a", O).
wlocked(O, T) :- history(Id, T, I, "w", O), !finished(T).

% Reads and terminators never wait.
qualified(T, I) :- requests(Id, T, I, "r", O).
qualified(T, I) :- requests(Id, T, I, "c", O).
qualified(T, I) :- requests(Id, T, I, "a", O).

% Writes follow the write-write rules of SS2PL.
wblocked(T, I)  :- requests(Id, T, I, "w", O), wlocked(O, T2), T != T2.
wblocked(T2, I2) :- requests(Id2, T2, I2, "w", O), requests(Id1, T1, I1, "w", O), T2 > T1.
qualified(T, I) :- requests(Id, T, I, "w", O), !wblocked(T, I).
"#;

/// Build the relaxed-reads protocol on the requested back-end.
pub(crate) fn build(backend: Backend) -> Protocol {
    let rule_backend = match backend {
        Backend::Algebra => RuleBackend::Algebra {
            plan: relaxed_algebra_plan(),
        },
        Backend::Datalog => RuleBackend::Datalog {
            program: datalog::parse_program(RELAXED_DATALOG_SOURCE)
                .expect("embedded relaxed-reads program parses"),
            output: "qualified".to_string(),
        },
    };
    Protocol {
        kind: ProtocolKind::RelaxedReads,
        rules: RuleSet::new(
            ProtocolKind::RelaxedReads.name(),
            rule_backend,
            OrderingSpec::FifoById,
        ),
        features: ProtocolFeatures {
            performance: true,
            qos: false,
            declarative: true,
            flexible: true,
            high_scalability: true,
        },
        description: "Relaxed reads: reads never wait, writes keep write-write exclusion (read-committed-style)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use relalg::{Catalog, Table};

    fn catalog(pending: &[Request], history: &[Request]) -> Catalog {
        let mut c = Catalog::new();
        let mut requests = Table::new("requests", Request::schema());
        for r in pending {
            requests.push(r.to_tuple()).unwrap();
        }
        let mut hist = Table::new("history", Request::schema());
        for r in history {
            hist.push(r.to_tuple()).unwrap();
        }
        c.register(requests);
        c.register(hist);
        c
    }

    fn qualify_both(pending: &[Request], history: &[Request]) -> Vec<(u64, u32)> {
        let c = catalog(pending, history);
        let algebra = build(Backend::Algebra).rules.qualify(&c).unwrap();
        let datalog = build(Backend::Datalog).rules.qualify(&c).unwrap();
        assert_eq!(
            algebra, datalog,
            "algebra and datalog relaxed rules disagree"
        );
        algebra.into_iter().map(|k| (k.ta, k.intra)).collect()
    }

    #[test]
    fn reads_ignore_write_locks() {
        let history = [Request::write(1, 10, 0, 5)];
        let pending = [
            Request::read(2, 11, 0, 5),  // qualifies despite T10's write lock
            Request::write(3, 12, 0, 5), // still blocked (write-write)
            Request::commit(4, 13, 0),   // terminators always qualify
        ];
        assert_eq!(qualify_both(&pending, &history), vec![(11, 0), (13, 0)]);
    }

    #[test]
    fn writes_still_exclude_each_other_within_a_batch() {
        let pending = [
            Request::write(1, 20, 0, 9),
            Request::write(2, 21, 0, 9),
            Request::read(3, 22, 0, 9),
        ];
        assert_eq!(qualify_both(&pending, &[]), vec![(20, 0), (22, 0)]);
    }

    #[test]
    fn relaxed_admits_a_superset_of_ss2pl() {
        use super::super::ss2pl;
        let history = [Request::write(1, 30, 0, 7), Request::read(2, 31, 0, 8)];
        let pending = [
            Request::read(3, 32, 0, 7),
            Request::write(4, 33, 0, 8),
            Request::write(5, 34, 0, 9),
        ];
        let c = catalog(&pending, &history);
        let relaxed: std::collections::BTreeSet<_> = build(Backend::Algebra)
            .rules
            .qualify(&c)
            .unwrap()
            .into_iter()
            .collect();
        let strict: std::collections::BTreeSet<_> = ss2pl::build(Backend::Algebra)
            .rules
            .qualify(&c)
            .unwrap()
            .into_iter()
            .collect();
        assert!(strict.is_subset(&relaxed));
        assert!(relaxed.len() > strict.len());
    }
}
