//! Adaptive consistency: switch protocols under load.
//!
//! The paper's long-term goal is scheduling for cloud environments where
//! "reduced consistency criteria may be used during times of high load", and
//! its future work names "an adaptive consistency scheduler which varies the
//! applied consistency protocols based on metadata and business application
//! requirements".  [`AdaptiveProtocol`] is that scheduler policy: below a
//! configurable pending-load threshold it uses its *normal* (strict)
//! protocol; at or above the threshold it switches to its *overload*
//! (relaxed) protocol.  Because protocols are data, the switch is just a
//! different rule set being handed to the same evaluator.

use super::{Backend, Protocol, ProtocolKind};

/// A pair of protocols plus the load threshold at which to switch.
#[derive(Debug, Clone)]
pub struct AdaptiveProtocol {
    /// Protocol used under normal load.
    pub normal: Protocol,
    /// Protocol used at or above the overload threshold.
    pub overload: Protocol,
    /// Pending-request count at which the scheduler switches to the
    /// overload protocol.
    pub overload_threshold: usize,
}

impl AdaptiveProtocol {
    /// The configuration the paper sketches: SS2PL normally, relaxed reads
    /// under overload.
    pub fn ss2pl_with_relaxed_overflow(backend: Backend, overload_threshold: usize) -> Self {
        AdaptiveProtocol {
            normal: Protocol::new(ProtocolKind::Ss2pl, backend),
            overload: Protocol::new(ProtocolKind::RelaxedReads, backend),
            overload_threshold,
        }
    }

    /// Select the protocol to apply for a round with `pending` requests
    /// waiting.
    pub fn select(&self, pending: usize) -> &Protocol {
        if pending >= self.overload_threshold {
            &self.overload
        } else {
            &self.normal
        }
    }

    /// Whether the given load would run in overload mode.
    pub fn is_overloaded(&self, pending: usize) -> bool {
        pending >= self.overload_threshold
    }
}

/// The policy a [`crate::scheduler::DeclarativeScheduler`] is configured
/// with: either one fixed protocol or an adaptive pair.
#[derive(Debug, Clone)]
pub enum SchedulingPolicy {
    /// Always apply the same protocol.
    Fixed(Protocol),
    /// Switch between protocols based on pending load.
    Adaptive(AdaptiveProtocol),
}

impl SchedulingPolicy {
    /// The protocol to apply for a round with `pending` requests waiting.
    pub fn select(&self, pending: usize) -> &Protocol {
        match self {
            SchedulingPolicy::Fixed(p) => p,
            SchedulingPolicy::Adaptive(a) => a.select(pending),
        }
    }

    /// A label describing the policy (used in metrics and experiment output).
    pub fn label(&self) -> String {
        match self {
            SchedulingPolicy::Fixed(p) => p.name().to_string(),
            SchedulingPolicy::Adaptive(a) => format!(
                "adaptive({}→{}@{})",
                a.normal.name(),
                a.overload.name(),
                a.overload_threshold
            ),
        }
    }
}

impl From<Protocol> for SchedulingPolicy {
    fn from(p: Protocol) -> Self {
        SchedulingPolicy::Fixed(p)
    }
}

impl From<AdaptiveProtocol> for SchedulingPolicy {
    fn from(a: AdaptiveProtocol) -> Self {
        SchedulingPolicy::Adaptive(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switches_at_the_threshold() {
        let adaptive = AdaptiveProtocol::ss2pl_with_relaxed_overflow(Backend::Algebra, 100);
        assert_eq!(adaptive.select(0).kind, ProtocolKind::Ss2pl);
        assert_eq!(adaptive.select(99).kind, ProtocolKind::Ss2pl);
        assert_eq!(adaptive.select(100).kind, ProtocolKind::RelaxedReads);
        assert_eq!(adaptive.select(5_000).kind, ProtocolKind::RelaxedReads);
        assert!(adaptive.is_overloaded(100));
        assert!(!adaptive.is_overloaded(99));
    }

    #[test]
    fn policy_wrapping_and_labels() {
        let fixed: SchedulingPolicy = Protocol::algebra(ProtocolKind::Ss2pl).into();
        assert_eq!(fixed.label(), "ss2pl");
        assert_eq!(fixed.select(1_000_000).kind, ProtocolKind::Ss2pl);

        let adaptive: SchedulingPolicy =
            AdaptiveProtocol::ss2pl_with_relaxed_overflow(Backend::Datalog, 50).into();
        assert!(adaptive.label().contains("adaptive"));
        assert!(adaptive.label().contains("relaxed-reads"));
        assert_eq!(adaptive.select(49).kind, ProtocolKind::Ss2pl);
        assert_eq!(adaptive.select(51).kind, ProtocolKind::RelaxedReads);
    }
}
