//! SLA-aware protocols: priority dispatch and earliest-deadline-first.
//!
//! The paper's second constraint class is service-level agreements —
//! "e.g. for premium vs. free customers in Web applications".  Both
//! protocols below keep SS2PL as their correctness rule and change only the
//! dispatch *ordering* — priority for class-based SLAs, deadline for
//! response-time SLAs — which demonstrates the separation the declarative
//! design gives between correctness rules and QoS policy.
//!
//! The SLA metadata is carried on the requests themselves (see
//! [`crate::request::SlaMeta`]) and also exposed to rules as the auxiliary
//! `sla(ta, class, priority, arrival_ms, deadline_ms)` relation so future
//! protocols can make *qualification* decisions on it too (e.g. admit only
//! premium traffic under overload, which the adaptive protocol does).

use super::ss2pl::{ss2pl_algebra_plan, ss2pl_datalog_program};
use super::{Backend, Protocol, ProtocolFeatures, ProtocolKind};
use crate::rules::{OrderingSpec, RuleBackend, RuleSet};

fn sla_backend(backend: Backend) -> RuleBackend {
    match backend {
        Backend::Algebra => RuleBackend::Algebra {
            plan: ss2pl_algebra_plan(),
        },
        Backend::Datalog => RuleBackend::Datalog {
            program: ss2pl_datalog_program(),
            output: "qualified".to_string(),
        },
    }
}

/// Build the SLA-priority protocol (SS2PL qualification, priority ordering).
pub(crate) fn build_priority(backend: Backend) -> Protocol {
    Protocol {
        kind: ProtocolKind::SlaPriority,
        rules: RuleSet::new(
            ProtocolKind::SlaPriority.name(),
            sla_backend(backend),
            OrderingSpec::PriorityThenId,
        ),
        features: ProtocolFeatures {
            performance: true,
            qos: true,
            declarative: true,
            flexible: true,
            high_scalability: true,
        },
        description:
            "SS2PL correctness with premium-before-free dispatch ordering (class-based SLA)",
    }
}

/// Build the earliest-deadline-first protocol (SS2PL qualification, EDF
/// ordering).
pub(crate) fn build_edf(backend: Backend) -> Protocol {
    Protocol {
        kind: ProtocolKind::EarliestDeadline,
        rules: RuleSet::new(
            ProtocolKind::EarliestDeadline.name(),
            sla_backend(backend),
            OrderingSpec::DeadlineThenId,
        ),
        features: ProtocolFeatures {
            performance: true,
            qos: true,
            declarative: true,
            flexible: true,
            high_scalability: true,
        },
        description:
            "SS2PL correctness with earliest-deadline-first dispatch ordering (response-time SLA)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, SlaMeta};
    use relalg::{Catalog, Table};

    fn sla(priority: i64, deadline: u64) -> SlaMeta {
        SlaMeta {
            priority,
            class: if priority >= 3 { "premium" } else { "free" },
            arrival_ms: 0,
            deadline_ms: deadline,
        }
    }

    #[test]
    fn qualification_is_ss2pl_but_ordering_differs() {
        let premium = Request::read(10, 2, 0, 101).with_sla(sla(3, 500));
        let free = Request::read(5, 1, 0, 100).with_sla(sla(1, 100));
        let mut catalog = Catalog::new();
        let mut requests = Table::new("requests", Request::schema());
        requests.push(free.to_tuple()).unwrap();
        requests.push(premium.to_tuple()).unwrap();
        catalog.register(requests);
        catalog.register(Table::new("history", Request::schema()));

        let prio = build_priority(Backend::Algebra);
        let edf = build_edf(Backend::Datalog);
        // Both qualify the same set (no conflicts here).
        assert_eq!(
            prio.rules.qualify(&catalog).unwrap(),
            edf.rules.qualify(&catalog).unwrap()
        );

        // Priority ordering puts the premium request first even though its
        // id is larger …
        let mut batch = vec![free, premium];
        prio.rules.ordering.sort(&mut batch);
        assert_eq!(batch[0].id, 10);
        // … while EDF puts the tighter deadline (the free request) first.
        let mut batch = vec![premium, free];
        edf.rules.ordering.sort(&mut batch);
        assert_eq!(batch[0].id, 5);
    }

    #[test]
    fn both_protocols_advertise_qos() {
        assert!(build_priority(Backend::Algebra).features.qos);
        assert!(build_edf(Backend::Algebra).features.qos);
        assert_eq!(build_priority(Backend::Datalog).name(), "sla-priority");
        assert_eq!(build_edf(Backend::Datalog).name(), "edf");
    }
}
