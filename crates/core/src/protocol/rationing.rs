//! Consistency rationing: per-object consistency classes.
//!
//! Following Kraska et al.'s Consistency Rationing (cited by the paper as
//! related work the declarative approach generalises), database objects are
//! classified into an **A** category (critical data — e.g. account balances,
//! stock counters) that keeps full SS2PL treatment and a **C** category
//! (relaxed data — e.g. product descriptions, preferences) whose requests
//! always qualify.  The classification lives in an auxiliary relation
//! `object_class(object, class)` that the rule joins against — changing
//! which data is critical is a data change, not a code change.

use super::ss2pl::blocked_keys_plan;
use super::{Backend, Protocol, ProtocolFeatures, ProtocolKind};
use crate::rules::{OrderingSpec, RuleBackend, RuleSet};
use relalg::{DataType, Expr, Field, JoinKind, Plan, PlanBuilder, Schema, Table, Value};

/// Consistency category of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectClass {
    /// Category A: serialisability required (SS2PL rules apply).
    Critical,
    /// Category C: relaxed consistency is acceptable (always qualifies).
    Relaxed,
}

impl ObjectClass {
    /// The class code stored in the `object_class` relation.
    pub fn code(self) -> &'static str {
        match self {
            ObjectClass::Critical => "a",
            ObjectClass::Relaxed => "c",
        }
    }
}

/// Schema of the auxiliary `object_class` relation.
pub fn object_class_schema() -> Schema {
    Schema::new(vec![
        Field::new("obj", DataType::Int),
        Field::new("class", DataType::Str),
    ])
}

/// Build the `object_class` relation from an explicit classification.
/// Objects not listed are treated as critical by the scheduler's catalog
/// preparation (missing rows never join, and the rule falls back to the
/// SS2PL branch via the anti-join).
pub fn object_class_table(classes: &[(i64, ObjectClass)]) -> Table {
    let mut table = Table::new("object_class", object_class_schema());
    for (object, class) in classes {
        table
            .push(relalg::Tuple::new(vec![
                Value::Int(*object),
                Value::str(class.code()),
            ]))
            .expect("object_class rows always match their schema");
    }
    table
}

/// The consistency-rationing qualification plan.
pub fn rationing_algebra_plan() -> Plan {
    // Requests on relaxed (category C) objects always qualify.
    let relaxed_objects = PlanBuilder::scan("object_class")
        .filter(Expr::col("class").eq(Expr::lit("c")))
        .project(vec![Expr::col("obj")])
        .rename(vec!["relaxed_obj"]);
    let on_relaxed = PlanBuilder::scan("requests")
        .join(
            relaxed_objects.clone(),
            JoinKind::Semi,
            Some(Expr::col("object").eq(Expr::col("relaxed_obj"))),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")]);

    // Everything else (critical objects and terminators) follows SS2PL.
    let on_critical = PlanBuilder::scan("requests")
        .join(
            relaxed_objects,
            JoinKind::Anti,
            Some(Expr::col("object").eq(Expr::col("relaxed_obj"))),
        )
        .project(vec![Expr::col("ta"), Expr::col("intrata")])
        .except(blocked_keys_plan());

    on_relaxed.union_all(on_critical).distinct().build()
}

/// The Datalog source of the consistency-rationing protocol.
pub const RATIONING_DATALOG_SOURCE: &str = r#"
finished(T)   :- history(Id, T, I, "c", O).
finished(T)   :- history(Id, T, I, "a", O).
wrote(T, O)   :- history(Id, T, I, "w", O).
wlocked(O, T) :- history(Id, T, I, "w", O), !finished(T).
rlocked(O, T) :- history(Id, T, I, "r", O), !finished(T), !wrote(T, O).

blocked(T, I) :- requests(Id, T, I, Op, O), wlocked(O, T2), T != T2.
blocked(T, I) :- requests(Id, T, I, "w", O), rlocked(O, T2), T != T2.
blocked(T2, I2) :- requests(Id2, T2, I2, Op2, O), requests(Id1, T1, I1, "w", O), T2 > T1.
blocked(T2, I2) :- requests(Id2, T2, I2, "w", O), requests(Id1, T1, I1, Op1, O), T2 > T1.

% Category C objects never wait.
relaxed_obj(O)  :- object_class(O, "c").
qualified(T, I) :- requests(Id, T, I, Op, O), relaxed_obj(O).

% Everything else keeps SS2PL semantics.
qualified(T, I) :- requests(Id, T, I, Op, O), !relaxed_obj(O), !blocked(T, I).
"#;

/// Build the consistency-rationing protocol on the requested back-end.
pub(crate) fn build(backend: Backend) -> Protocol {
    let rule_backend = match backend {
        Backend::Algebra => RuleBackend::Algebra {
            plan: rationing_algebra_plan(),
        },
        Backend::Datalog => RuleBackend::Datalog {
            program: datalog::parse_program(RATIONING_DATALOG_SOURCE)
                .expect("embedded rationing program parses"),
            output: "qualified".to_string(),
        },
    };
    Protocol {
        kind: ProtocolKind::ConsistencyRationing,
        rules: RuleSet::new(
            ProtocolKind::ConsistencyRationing.name(),
            rule_backend,
            OrderingSpec::FifoById,
        ),
        features: ProtocolFeatures {
            performance: true,
            qos: true,
            declarative: true,
            flexible: true,
            high_scalability: true,
        },
        description: "Consistency rationing: SS2PL for category-A objects, relaxed admission for category-C objects",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use relalg::Catalog;

    fn catalog(
        pending: &[Request],
        history: &[Request],
        classes: &[(i64, ObjectClass)],
    ) -> Catalog {
        let mut c = Catalog::new();
        let mut requests = Table::new("requests", Request::schema());
        for r in pending {
            requests.push(r.to_tuple()).unwrap();
        }
        let mut hist = Table::new("history", Request::schema());
        for r in history {
            hist.push(r.to_tuple()).unwrap();
        }
        c.register(requests);
        c.register(hist);
        c.register(object_class_table(classes));
        c
    }

    fn qualify_both(
        pending: &[Request],
        history: &[Request],
        classes: &[(i64, ObjectClass)],
    ) -> Vec<(u64, u32)> {
        let c = catalog(pending, history, classes);
        let algebra = build(Backend::Algebra).rules.qualify(&c).unwrap();
        let datalog = build(Backend::Datalog).rules.qualify(&c).unwrap();
        assert_eq!(
            algebra, datalog,
            "algebra and datalog rationing rules disagree"
        );
        algebra.into_iter().map(|k| (k.ta, k.intra)).collect()
    }

    #[test]
    fn relaxed_objects_bypass_locks_critical_objects_do_not() {
        // Object 1 is critical (A), object 2 is relaxed (C); both are
        // write-locked by T10 in the history.
        let classes = [(1, ObjectClass::Critical), (2, ObjectClass::Relaxed)];
        let history = [Request::write(1, 10, 0, 1), Request::write(2, 10, 1, 2)];
        let pending = [
            Request::write(3, 11, 0, 1), // critical: blocked
            Request::write(4, 12, 0, 2), // relaxed: qualifies
        ];
        assert_eq!(qualify_both(&pending, &history, &classes), vec![(12, 0)]);
    }

    #[test]
    fn unclassified_objects_default_to_critical() {
        let history = [Request::write(1, 10, 0, 7)];
        let pending = [Request::read(2, 11, 0, 7)];
        // No classification rows at all: object 7 behaves as category A.
        assert_eq!(qualify_both(&pending, &history, &[]), vec![]);
    }

    #[test]
    fn batch_conflicts_ignored_for_relaxed_objects() {
        let classes = [(5, ObjectClass::Relaxed)];
        let pending = [
            Request::write(1, 20, 0, 5),
            Request::write(2, 21, 0, 5), // same relaxed object: both qualify
        ];
        assert_eq!(
            qualify_both(&pending, &[], &classes),
            vec![(20, 0), (21, 0)]
        );
    }

    #[test]
    fn object_class_table_builds() {
        let t = object_class_table(&[(1, ObjectClass::Critical), (2, ObjectClass::Relaxed)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(), "object_class");
        assert_eq!(ObjectClass::Critical.code(), "a");
    }
}
