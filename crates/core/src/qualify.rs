//! Incremental qualification: the declarative rules of the built-in
//! protocols, maintained as a materialized view across scheduling rounds.
//!
//! The from-scratch path re-evaluates a protocol's rule over the *entire*
//! `requests` ∪ `history` state every round — O(pending + history) per
//! round, which the paper accepts and our `rule_scaling` bench shows
//! growing without bound in the paper's unbounded-history mode.  The key
//! observation making an O(delta) path possible is that for every shipped
//! protocol the blocked/qualified status of a pending request depends
//! **only on per-object state**: the lock sets of its object (the
//! [`crate::history::LockIndex`], maintained incrementally by the history
//! store) and the other pending requests on the same object.  Nothing a
//! round changes on object A can affect a decision about object B.
//!
//! [`IncrementalQualifier`] therefore keeps, per object, the cached set of
//! blocked pending keys, re-derives it only for objects whose pending rows
//! or lock state changed since the last round (the *dirty set*), and
//! assembles the qualified set from the caches.  Equivalence with the
//! from-scratch rule — on both the relational-algebra and the Datalog
//! back-end — is enforced per protocol by the property suite in
//! `tests/tests/incremental.rs`.
//!
//! Custom protocols carry arbitrary rules and are not supported here; the
//! scheduler falls back to from-scratch evaluation (or, for custom Datalog
//! rules, to the engine-level [`datalog::IncrementalEvaluation`]).

use crate::history::HistoryStore;
use crate::pending::PendingStore;
use crate::protocol::ProtocolKind;
use crate::request::{Operation, Request, RequestKey};
use relalg::Table;
use std::collections::{HashMap, HashSet};

/// Cross-round incremental evaluation of a built-in protocol's
/// qualification rule.
#[derive(Debug, Default)]
pub struct IncrementalQualifier {
    /// Protocol kind the caches were computed for; a switch (an adaptive
    /// policy crossing its overload threshold) invalidates everything.
    kind: Option<ProtocolKind>,
    /// Objects whose pending rows or lock state changed since the last
    /// `qualify` call.
    dirty: HashSet<i64>,
    /// Recompute every object on the next call (protocol switch, aux
    /// relation change, first round).
    all_dirty: bool,
    /// Blocked pending keys, per object, under `kind`'s per-request rules
    /// (kept for Conservative 2PL's transaction-level assembly).
    blocked_by_object: HashMap<i64, Vec<RequestKey>>,
    /// Qualified (unblocked) pending keys, per object.  The round's result
    /// is assembled by flattening these cached lists, so assembly costs
    /// O(qualified + objects) instead of a membership probe per pending key.
    /// Both lists are rebuilt together from the store's current per-object
    /// rows whenever an object is dirty, so a duplicate-key submission that
    /// moved a request between objects cannot leave a stale verdict behind.
    qualified_by_object: HashMap<i64, Vec<RequestKey>>,
    /// Category-C objects of the consistency-rationing protocol (from the
    /// auxiliary `object_class` relation).
    relaxed_objects: HashSet<i64>,
    relaxed_built: bool,
    /// Pending requests re-examined by the last `qualify` call.
    last_delta_rows: u64,
    /// Reused dirty-object drain buffer (cleared each round, never freed).
    objects_scratch: Vec<i64>,
    /// Pool of key lists recycled through `blocked_by_object`, so objects
    /// oscillating between blocked and free don't allocate a list per
    /// transition.
    key_list_pool: Vec<Vec<RequestKey>>,
    /// Reused blocked-transaction set (Conservative 2PL assembly).
    blocked_tas_scratch: HashSet<u64>,
}

impl IncrementalQualifier {
    /// A fresh qualifier (everything dirty).
    pub fn new() -> Self {
        IncrementalQualifier {
            all_dirty: true,
            ..IncrementalQualifier::default()
        }
    }

    /// Whether the protocol kind has an incremental formulation here.
    pub fn supports(kind: ProtocolKind) -> bool {
        kind != ProtocolKind::Custom
    }

    /// Note objects whose pending rows changed in a queue drain — the
    /// return value of [`PendingStore::insert_batch`], which includes the
    /// *superseded* request's object when a duplicate key replaced an
    /// earlier request on a different object (both objects' cached
    /// verdicts are stale in that case).
    pub fn note_pending_changed(&mut self, objects: &[i64]) {
        self.dirty.extend(objects.iter().copied());
    }

    /// Note pending requests removed because they were scheduled.
    pub fn note_taken(&mut self, requests: &[Request]) {
        for r in requests {
            self.dirty.insert(r.object);
        }
    }

    /// Note objects whose history lock state changed (the return value of
    /// [`HistoryStore::insert_batch`]).
    pub fn note_history_changed(&mut self, objects: &[i64]) {
        self.dirty.extend(objects.iter().copied());
    }

    /// Note a change to the auxiliary relations (e.g. a new `object_class`
    /// classification): every cached decision may be stale.
    pub fn note_aux_changed(&mut self) {
        self.all_dirty = true;
        self.relaxed_built = false;
    }

    /// Pending requests re-examined by the last `qualify` call — the
    /// incremental engine's unit of work, exported as
    /// [`crate::metrics::SchedulerMetrics::delta_rows`].
    pub fn last_delta_rows(&self) -> u64 {
        self.last_delta_rows
    }

    /// Evaluate the qualification rule of `kind` over the current state,
    /// re-deriving only dirty objects.  Returns the qualified keys sorted
    /// and deduplicated, exactly as the declarative back-ends do.
    ///
    /// # Panics
    /// Debug-asserts that `kind` is supported; release builds fall back to
    /// treating it as SS2PL, so callers must check [`Self::supports`].
    pub fn qualify(
        &mut self,
        kind: ProtocolKind,
        pending: &PendingStore,
        history: &HistoryStore,
        aux: &[Table],
    ) -> Vec<RequestKey> {
        let mut qualified = Vec::new();
        self.qualify_into(kind, pending, history, aux, &mut qualified);
        qualified
    }

    /// [`IncrementalQualifier::qualify`] into a caller-owned buffer (which
    /// is cleared first) — the round loop's variant, reusing one qualified
    /// buffer across rounds.
    pub fn qualify_into(
        &mut self,
        kind: ProtocolKind,
        pending: &PendingStore,
        history: &HistoryStore,
        aux: &[Table],
        qualified: &mut Vec<RequestKey>,
    ) {
        debug_assert!(
            Self::supports(kind),
            "custom rules have no incremental form"
        );
        if self.kind != Some(kind) {
            self.kind = Some(kind);
            self.all_dirty = true;
        }
        if kind == ProtocolKind::ConsistencyRationing && !self.relaxed_built {
            self.relaxed_objects = relaxed_objects(aux);
            self.relaxed_built = true;
        }

        self.last_delta_rows = 0;
        let mut objects = std::mem::take(&mut self.objects_scratch);
        objects.clear();
        if self.all_dirty {
            for list in self.blocked_by_object.values_mut() {
                list.clear();
                self.key_list_pool.push(std::mem::take(list));
            }
            self.blocked_by_object.clear();
            for list in self.qualified_by_object.values_mut() {
                list.clear();
                self.key_list_pool.push(std::mem::take(list));
            }
            self.qualified_by_object.clear();
            objects.extend(pending.objects());
            self.all_dirty = false;
            self.dirty.clear();
        } else {
            objects.extend(self.dirty.drain());
        }
        for &object in &objects {
            self.recompute_object(kind, object, pending, history);
        }
        objects.clear();
        self.objects_scratch = objects;

        // Assemble the qualified set from the per-object caches.
        qualified.clear();
        match kind {
            ProtocolKind::Conservative2pl => {
                // One blocked request blocks its whole transaction.
                self.blocked_tas_scratch.clear();
                self.blocked_tas_scratch
                    .extend(self.blocked_by_object.values().flatten().map(|key| key.ta));
                qualified.extend(
                    self.qualified_by_object
                        .values()
                        .flatten()
                        .filter(|key| !self.blocked_tas_scratch.contains(&key.ta))
                        .copied(),
                );
            }
            _ => qualified.extend(self.qualified_by_object.values().flatten().copied()),
        }
        qualified.sort_unstable();
    }

    /// Re-derive the blocked/qualified split of the pending requests on one
    /// object, rebuilding both cached lists from the store's current rows.
    fn recompute_object(
        &mut self,
        kind: ProtocolKind,
        object: i64,
        pending: &PendingStore,
        history: &HistoryStore,
    ) {
        // Drop the stale lists for this object.  Both lists are derived
        // from `rows_on_object` alone, so a request that moved to another
        // dirty object (duplicate-key replacement) simply reappears in the
        // other object's rebuild, whichever order the dirty set drains in.
        if let Some(mut old) = self.blocked_by_object.remove(&object) {
            old.clear();
            self.key_list_pool.push(old);
        }
        if let Some(mut old) = self.qualified_by_object.remove(&object) {
            old.clear();
            self.key_list_pool.push(old);
        }
        let rows = pending.rows_on_object(object);
        if rows.is_empty() {
            return;
        }
        self.last_delta_rows += rows.len() as u64;

        let mut qualified_here = self.key_list_pool.pop().unwrap_or_default();
        // FCFS blocks nothing; rationing admits category-C objects outright.
        if kind == ProtocolKind::Fcfs
            || (kind == ProtocolKind::ConsistencyRationing
                && self.relaxed_objects.contains(&object))
        {
            qualified_here.extend(rows.iter().map(|&(key, _)| key));
            self.qualified_by_object.insert(object, qualified_here);
            return;
        }

        // The batch-conflict minima of the paper's
        // `OpsOnSameObjAsPriorSelectOps` rules: the smallest pending
        // transaction id on the object, and the smallest with a write.
        let locks = history.lock_index();
        let mut min_any_ta = u64::MAX;
        let mut min_write_ta = u64::MAX;
        for &(key, op) in rows {
            min_any_ta = min_any_ta.min(key.ta);
            if op == Operation::Write {
                min_write_ta = min_write_ta.min(key.ta);
            }
        }

        let relaxed_writes_only = kind == ProtocolKind::RelaxedReads;
        let mut blocked_here = self.key_list_pool.pop().unwrap_or_default();
        for &(key, op) in rows {
            let is_write = op == Operation::Write;
            if relaxed_writes_only && !is_write {
                // Reads and terminators never wait under relaxed reads.
                qualified_here.push(key);
                continue;
            }
            // The integer comparisons against the batch minima decide most
            // deferred requests outright, so they run before the lock-index
            // hash probes (a pure disjunction — order only affects cost).
            let blocked = if relaxed_writes_only {
                // Writes keep SS2PL's write-write exclusion only.
                min_write_ta < key.ta || locks.write_locked_by_other(object, key.ta)
            } else {
                // Full SS2PL blocking (also C2PL's per-request core, and the
                // category-A branch of consistency rationing):
                //  1. an earlier pending write on the same object;
                //  2. a write with any earlier pending request on the object;
                //  3. the object is write-locked by another transaction;
                //  4. a write on an object read-locked by another transaction.
                min_write_ta < key.ta
                    || (is_write && min_any_ta < key.ta)
                    || locks.write_locked_by_other(object, key.ta)
                    || (is_write && locks.read_locked_by_other(object, key.ta))
            };
            if blocked {
                blocked_here.push(key);
            } else {
                qualified_here.push(key);
            }
        }
        if blocked_here.is_empty() {
            self.key_list_pool.push(blocked_here);
        } else {
            self.blocked_by_object.insert(object, blocked_here);
        }
        if qualified_here.is_empty() {
            self.key_list_pool.push(qualified_here);
        } else {
            self.qualified_by_object.insert(object, qualified_here);
        }
    }
}

/// One-shot qualification through the incremental engine: build a fresh
/// qualifier, mark everything dirty and evaluate once.  The escalation lane
/// uses this over its merged multi-shard snapshot — same admission decisions
/// as the declarative rule, one linear pass instead of a multi-join plan.
pub fn qualify_once(
    kind: ProtocolKind,
    pending: &PendingStore,
    history: &HistoryStore,
    aux: &[Table],
) -> Vec<RequestKey> {
    IncrementalQualifier::new().qualify(kind, pending, history, aux)
}

/// Category-C ("relaxed") objects from the auxiliary `object_class`
/// relation, as the rationing rule's `relaxed_obj` predicate derives them.
fn relaxed_objects(aux: &[Table]) -> HashSet<i64> {
    let mut relaxed = HashSet::new();
    for table in aux {
        if table.name() != "object_class" {
            continue;
        }
        let Some(obj_col) = table.schema().index_of("obj") else {
            continue;
        };
        let Some(class_col) = table.schema().index_of("class") else {
            continue;
        };
        for row in table.rows() {
            if row.get(class_col).as_str() == Some("c") {
                if let Some(object) = row.get(obj_col).as_int() {
                    relaxed.insert(object);
                }
            }
        }
    }
    relaxed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{object_class_table, Backend, ObjectClass, Protocol};
    use relalg::Catalog;

    /// Evaluate `kind`'s declarative rule from scratch over the same state —
    /// the oracle the incremental path must match.
    fn scratch(
        kind: ProtocolKind,
        pending: &PendingStore,
        history: &HistoryStore,
        aux: &[Table],
    ) -> Vec<RequestKey> {
        let mut catalog = Catalog::new();
        catalog.register(pending.table().clone());
        catalog.register(history.table().clone());
        catalog.register(Table::new("sla", Request::sla_schema()));
        for t in aux {
            catalog.replace(t.clone());
        }
        Protocol::new(kind, Backend::Algebra)
            .rules
            .qualify(&catalog)
            .unwrap()
    }

    fn check_all_kinds(pending: &PendingStore, history: &HistoryStore, aux: &[Table]) {
        // The rationing rule scans `object_class`; a deployment without
        // classifications registers it empty, so the oracle needs it too.
        let mut aux = aux.to_vec();
        if !aux.iter().any(|t| t.name() == "object_class") {
            aux.push(crate::protocol::object_class_table(&[]));
        }
        for &kind in ProtocolKind::all() {
            let incremental = qualify_once(kind, pending, history, &aux);
            let oracle = scratch(kind, pending, history, &aux);
            assert_eq!(
                incremental, oracle,
                "incremental {kind:?} disagrees with the declarative rule"
            );
        }
    }

    #[test]
    fn matches_the_rules_on_a_contended_state() {
        let mut history = HistoryStore::new();
        history.insert(&Request::write(1, 10, 0, 5)).unwrap(); // T10 wlocks 5
        history.insert(&Request::read(2, 11, 0, 6)).unwrap(); // T11 rlocks 6
        history.insert(&Request::write(3, 12, 0, 7)).unwrap();
        history.insert(&Request::commit(4, 12, 1)).unwrap(); // T12 done: 7 free

        let mut pending = PendingStore::new();
        pending
            .insert_batch(vec![
                Request::read(5, 20, 0, 5),  // blocked: wlock by T10
                Request::write(6, 21, 0, 6), // blocked: rlock by T11
                Request::read(7, 22, 0, 6),  // shares the rlock, but loses
                // the batch conflict against T21's earlier pending write
                Request::write(8, 23, 0, 7),  // lock released: qualifies
                Request::write(9, 24, 0, 8),  // free object, but see T25 below
                Request::read(10, 25, 0, 8),  // loses batch conflict vs T24
                Request::commit(11, 26, 0),   // terminals qualify
                Request::write(12, 10, 1, 5), // T10's own lock: qualifies
            ])
            .unwrap();

        check_all_kinds(&pending, &history, &[]);
    }

    #[test]
    fn rationing_consults_the_object_class_relation() {
        let aux = [object_class_table(&[
            (5, ObjectClass::Relaxed),
            (6, ObjectClass::Critical),
        ])];
        let mut history = HistoryStore::new();
        history.insert(&Request::write(1, 10, 0, 5)).unwrap();
        history.insert(&Request::write(2, 10, 1, 6)).unwrap();
        let mut pending = PendingStore::new();
        pending
            .insert_batch(vec![
                Request::write(3, 11, 0, 5), // relaxed object: qualifies
                Request::write(4, 12, 0, 6), // critical object: blocked
            ])
            .unwrap();
        check_all_kinds(&pending, &history, &aux);
    }

    #[test]
    fn incremental_rounds_track_mutations() {
        let mut q = IncrementalQualifier::new();
        let mut pending = PendingStore::new();
        let mut history = HistoryStore::new();

        // Round 1: a write on a free object qualifies.
        let r1 = Request::write(1, 1, 0, 9);
        let arrived = pending.insert_batch(vec![r1]).unwrap();
        q.note_pending_changed(&arrived);
        let k1 = q.qualify(ProtocolKind::Ss2pl, &pending, &history, &[]);
        assert_eq!(k1, vec![RequestKey { ta: 1, intra: 0 }]);

        // It is scheduled: taken from pending, inserted into history.
        let taken = pending.take(&k1);
        q.note_taken(&taken);
        let changed = history.insert_batch(taken.iter()).unwrap();
        q.note_history_changed(&changed);

        // Round 2: a conflicting read is blocked; an unrelated one is not.
        let r2 = Request::read(2, 2, 0, 9);
        let r3 = Request::read(3, 3, 0, 10);
        let arrived = pending.insert_batch(vec![r2, r3]).unwrap();
        q.note_pending_changed(&arrived);
        let k2 = q.qualify(ProtocolKind::Ss2pl, &pending, &history, &[]);
        assert_eq!(k2, vec![RequestKey { ta: 3, intra: 0 }]);
        // Only the two dirty objects' requests were examined.
        assert_eq!(q.last_delta_rows(), 2);

        // Round 3: nothing changed on object 10's side after T3 leaves, and
        // T1 commits — releasing object 9 and unblocking T2.
        let taken = pending.take(&k2);
        q.note_taken(&taken);
        let changed = history.insert_batch(taken.iter()).unwrap();
        q.note_history_changed(&changed);
        let commit = Request::commit(4, 1, 1);
        let arrived = pending.insert_batch(vec![commit]).unwrap();
        q.note_pending_changed(&arrived);
        let k3 = q.qualify(ProtocolKind::Ss2pl, &pending, &history, &[]);
        assert_eq!(
            k3,
            vec![RequestKey { ta: 1, intra: 1 }],
            "commit qualifies; T2 still blocked until the commit lands"
        );
        let taken = pending.take(&k3);
        q.note_taken(&taken);
        let changed = history.insert_batch(taken.iter()).unwrap();
        assert_eq!(changed, vec![9], "the commit released object 9");
        q.note_history_changed(&changed);
        let k4 = q.qualify(ProtocolKind::Ss2pl, &pending, &history, &[]);
        assert_eq!(k4, vec![RequestKey { ta: 2, intra: 0 }]);
    }

    #[test]
    fn duplicate_key_replacement_across_objects_stays_equivalent() {
        let kind = ProtocolKind::Ss2pl;
        let mut q = IncrementalQualifier::new();
        let mut pending = PendingStore::new();
        let mut history = HistoryStore::new();
        // T1 write-locks object 5, T3 write-locks object 6.
        let changed = history.insert(&Request::write(1, 1, 0, 5)).unwrap();
        q.note_history_changed(&changed);
        let changed = history.insert(&Request::write(2, 3, 0, 6)).unwrap();
        q.note_history_changed(&changed);
        // T2's write on object 5 is blocked; the verdict caches under 5.
        let arrived = pending
            .insert_batch(vec![Request::write(3, 2, 0, 5)])
            .unwrap();
        q.note_pending_changed(&arrived);
        assert!(q.qualify(kind, &pending, &history, &[]).is_empty());

        // The same (ta, intra) key resubmits on object 6: the replacement
        // dirties *both* objects, and the verdict moves to object 6.
        let arrived = pending
            .insert_batch(vec![Request::write(4, 2, 0, 6)])
            .unwrap();
        assert_eq!(arrived, vec![5, 6]);
        q.note_pending_changed(&arrived);
        let keys = q.qualify(kind, &pending, &history, &[]);
        assert_eq!(keys, scratch(kind, &pending, &history, &[]));
        assert!(keys.is_empty(), "still blocked, now by T3's lock on 6");

        // T1 commits, releasing object 5.  The stale cache under object 5
        // must not free T2 — it is legitimately blocked on object 6.
        let changed = history.insert(&Request::commit(5, 1, 1)).unwrap();
        q.note_history_changed(&changed);
        let keys = q.qualify(kind, &pending, &history, &[]);
        assert_eq!(keys, scratch(kind, &pending, &history, &[]));
        assert!(keys.is_empty(), "T3 still write-locks object 6");

        // Mirror case: replacing onto a free object must unblock.
        let arrived = pending
            .insert_batch(vec![Request::write(6, 2, 0, 7)])
            .unwrap();
        q.note_pending_changed(&arrived);
        let keys = q.qualify(kind, &pending, &history, &[]);
        assert_eq!(keys, scratch(kind, &pending, &history, &[]));
        assert_eq!(keys, vec![RequestKey { ta: 2, intra: 0 }]);
    }

    #[test]
    fn protocol_switch_invalidates_caches() {
        let mut q = IncrementalQualifier::new();
        let mut pending = PendingStore::new();
        let mut history = HistoryStore::new();
        history.insert(&Request::write(1, 1, 0, 5)).unwrap();
        pending
            .insert_batch(vec![Request::read(2, 2, 0, 5)])
            .unwrap();

        let strict = q.qualify(ProtocolKind::Ss2pl, &pending, &history, &[]);
        assert!(strict.is_empty());
        // The adaptive policy switches to relaxed reads: same state, new rule.
        let relaxed = q.qualify(ProtocolKind::RelaxedReads, &pending, &history, &[]);
        assert_eq!(relaxed, vec![RequestKey { ta: 2, intra: 0 }]);
        // And back.
        let strict = q.qualify(ProtocolKind::Ss2pl, &pending, &history, &[]);
        assert!(strict.is_empty());
    }
}
