//! The history database (Figure 1: "Already executed requests").
//!
//! The paper: "the scheduler accesses a second database, called history
//! database, in which all relevant prior executed requests are stored.  From
//! this history database, all necessary information about the current
//! database state etc. can be obtained."

use crate::error::SchedResult;
use crate::request::{Operation, Request};
use relalg::Table;
use std::collections::HashSet;

/// Stores requests that have been scheduled (and sent to the server), so that
/// protocol rules can reason about held locks, finished transactions and
/// prior conflicting operations.
#[derive(Debug)]
pub struct HistoryStore {
    table: Table,
    finished: HashSet<u64>,
    total_inserted: u64,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore::new()
    }
}

impl HistoryStore {
    /// Create an empty history.  The relation is named `history`, matching
    /// the paper's Listing 1.
    pub fn new() -> Self {
        HistoryStore {
            table: Table::new("history", Request::schema()),
            finished: HashSet::new(),
            total_inserted: 0,
        }
    }

    /// Record a scheduled request.
    pub fn insert(&mut self, request: &Request) -> SchedResult<()> {
        self.table.push(request.to_tuple())?;
        self.total_inserted += 1;
        if request.op.is_terminal() {
            self.finished.insert(request.ta);
        }
        Ok(())
    }

    /// Record a batch of scheduled requests.
    pub fn insert_batch<'a>(
        &mut self,
        requests: impl IntoIterator<Item = &'a Request>,
    ) -> SchedResult<()> {
        for r in requests {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Number of history rows currently retained.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Total rows ever inserted (monotonic, unaffected by pruning).
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// The relational view (`history` relation) for rule evaluation.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Whether a transaction has a commit or abort record in the history.
    pub fn is_finished(&self, ta: u64) -> bool {
        self.finished.contains(&ta)
    }

    /// Transactions with a terminal record.
    pub fn finished_transactions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.finished.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Drop the rows of finished transactions — the "relevant prior executed
    /// requests" the paper keeps are exactly those of transactions that still
    /// hold locks.  Under SS2PL a finished transaction's history rows can no
    /// longer influence any scheduling decision, so pruning them bounds the
    /// history size (and therefore rule-evaluation time) by the number of
    /// *active* transactions.  Returns the number of pruned rows.
    pub fn prune_finished(&mut self) -> usize {
        if self.finished.is_empty() {
            return 0;
        }
        let finished = self.finished.clone();
        let removed = self.table.delete_where(|row| {
            Request::from_tuple(row)
                .map(|r| finished.contains(&r.ta))
                .unwrap_or(false)
        });
        if removed > 0 {
            self.finished.clear();
        }
        removed
    }

    /// Objects write-locked by unfinished transactions, with the owning
    /// transaction — an imperative helper mirroring what the declarative
    /// `WLockedObjects` CTE of Listing 1 computes; used by tests as an
    /// oracle and by imperative baseline comparisons.
    pub fn write_locked_objects(&self) -> Vec<(i64, u64)> {
        let mut out = Vec::new();
        for row in self.table.rows() {
            if let Some(r) = Request::from_tuple(row) {
                if r.op == Operation::Write && !self.is_finished(r.ta) {
                    out.push((r.object, r.ta));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Objects read-locked (and not yet released) by unfinished transactions
    /// that have not also written them — the `RLockedObjects` CTE.
    pub fn read_locked_objects(&self) -> Vec<(i64, u64)> {
        let writes: HashSet<(i64, u64)> = self
            .table
            .rows()
            .iter()
            .filter_map(Request::from_tuple)
            .filter(|r| r.op == Operation::Write)
            .map(|r| (r.object, r.ta))
            .collect();
        let mut out = Vec::new();
        for row in self.table.rows() {
            if let Some(r) = Request::from_tuple(row) {
                if r.op == Operation::Read
                    && !self.is_finished(r.ta)
                    && !writes.contains(&(r.object, r.ta))
                {
                    out.push((r.object, r.ta));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_finished_tracking() {
        let mut h = HistoryStore::new();
        h.insert(&Request::write(1, 10, 0, 100)).unwrap();
        h.insert(&Request::read(2, 11, 0, 101)).unwrap();
        h.insert(&Request::commit(3, 10, 1)).unwrap();
        assert_eq!(h.len(), 3);
        assert!(h.is_finished(10));
        assert!(!h.is_finished(11));
        assert_eq!(h.finished_transactions(), vec![10]);
        assert_eq!(h.total_inserted(), 3);
    }

    #[test]
    fn lock_oracles_match_listing_1_semantics() {
        let mut h = HistoryStore::new();
        // T10 wrote object 100 and is still active -> write lock.
        h.insert(&Request::write(1, 10, 0, 100)).unwrap();
        // T11 read object 101 and is still active -> read lock.
        h.insert(&Request::read(2, 11, 0, 101)).unwrap();
        // T12 wrote object 102 but committed -> no lock.
        h.insert(&Request::write(3, 12, 0, 102)).unwrap();
        h.insert(&Request::commit(4, 12, 1)).unwrap();
        // T13 read and then wrote object 103 -> write lock, not read lock.
        h.insert(&Request::read(5, 13, 0, 103)).unwrap();
        h.insert(&Request::write(6, 13, 1, 103)).unwrap();

        assert_eq!(h.write_locked_objects(), vec![(100, 10), (103, 13)]);
        assert_eq!(h.read_locked_objects(), vec![(101, 11)]);
    }

    #[test]
    fn prune_drops_only_finished_transactions() {
        let mut h = HistoryStore::new();
        h.insert(&Request::write(1, 10, 0, 100)).unwrap();
        h.insert(&Request::commit(2, 10, 1)).unwrap();
        h.insert(&Request::write(3, 11, 0, 101)).unwrap();
        let removed = h.prune_finished();
        assert_eq!(removed, 2);
        assert_eq!(h.len(), 1);
        // Pruning twice is a no-op.
        assert_eq!(h.prune_finished(), 0);
        // The monotone counter keeps the full count.
        assert_eq!(h.total_inserted(), 3);
    }

    #[test]
    fn batch_insert() {
        let mut h = HistoryStore::new();
        let batch = [Request::read(1, 1, 0, 5), Request::commit(2, 1, 1)];
        h.insert_batch(batch.iter()).unwrap();
        assert_eq!(h.len(), 2);
        assert!(h.is_finished(1));
    }
}
