//! The history database (Figure 1: "Already executed requests").
//!
//! The paper: "the scheduler accesses a second database, called history
//! database, in which all relevant prior executed requests are stored.  From
//! this history database, all necessary information about the current
//! database state etc. can be obtained."
//!
//! Besides the relational view the declarative rules evaluate against, the
//! store maintains a **per-object conflict index** ([`LockIndex`])
//! incrementally on every insert: for each object, the set of unfinished
//! transactions holding a write lock and the set holding a (non-upgraded)
//! read lock, exactly the `WLockedObjects` / `RLockedObjects` CTEs of the
//! paper's Listing 1.  Where the lock oracles used to re-scan the whole
//! history relation per call, they now read the index in O(locks) — and the
//! incremental qualification engine ([`crate::qualify`]) uses the same index
//! to decide admission in O(changed objects) per round instead of
//! O(pending + history).

use crate::error::SchedResult;
use crate::request::{Operation, Request};
use relalg::Table;
use std::collections::{HashMap, HashSet};

/// Per-object lock state derived incrementally from the history relation.
///
/// Invariant (matching Listing 1's CTEs over the current history table):
/// `writers[o]` = transactions with a `w` row on `o` and no terminal row;
/// `readers[o]` = transactions with an `r` row on `o`, no terminal row and
/// no `w` row on `o` (a write *upgrades* the read lock).
#[derive(Debug, Default)]
pub struct LockIndex {
    /// object -> write-holding unfinished transactions.
    writers: HashMap<i64, HashSet<u64>>,
    /// object -> read-holding unfinished transactions (that did not also
    /// write the object).
    readers: HashMap<i64, HashSet<u64>>,
    /// transaction -> objects it holds any lock on (for O(held) release).
    held: HashMap<u64, HashSet<i64>>,
}

impl LockIndex {
    /// Transactions (other than `ta`) holding a write lock on `object`.
    pub fn write_locked_by_other(&self, object: i64, ta: u64) -> bool {
        self.writers
            .get(&object)
            .is_some_and(|set| set.len() > 1 || (set.len() == 1 && !set.contains(&ta)))
    }

    /// Transactions (other than `ta`) holding a read lock on `object`.
    pub fn read_locked_by_other(&self, object: i64, ta: u64) -> bool {
        self.readers
            .get(&object)
            .is_some_and(|set| set.len() > 1 || (set.len() == 1 && !set.contains(&ta)))
    }

    /// Whether *any* unfinished transaction holds a lock (read or write) on
    /// `object`.  The migration fence uses this: an object may only change
    /// its home shard while no lock state for it exists anywhere.
    pub fn locked(&self, object: i64) -> bool {
        self.writers.contains_key(&object) || self.readers.contains_key(&object)
    }

    /// Whether `ta` holds a write lock on `object`.
    pub fn holds_write(&self, object: i64, ta: u64) -> bool {
        self.writers
            .get(&object)
            .is_some_and(|set| set.contains(&ta))
    }

    /// Objects on which `ta` currently holds any lock.
    pub fn held_objects(&self, ta: u64) -> impl Iterator<Item = i64> + '_ {
        self.held.get(&ta).into_iter().flatten().copied()
    }

    /// Total number of (object, transaction) lock entries.
    pub fn len(&self) -> usize {
        self.writers.values().map(HashSet::len).sum::<usize>()
            + self.readers.values().map(HashSet::len).sum::<usize>()
    }

    /// Whether no locks are held.
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }

    fn add_write(&mut self, object: i64, ta: u64) {
        self.writers.entry(object).or_default().insert(ta);
        // A write upgrades any read lock the same transaction held.
        if let Some(readers) = self.readers.get_mut(&object) {
            readers.remove(&ta);
            if readers.is_empty() {
                self.readers.remove(&object);
            }
        }
        self.held.entry(ta).or_default().insert(object);
    }

    fn add_read(&mut self, object: i64, ta: u64) {
        if self.holds_write(object, ta) {
            return; // already write-locked: the read does not demote it
        }
        self.readers.entry(object).or_default().insert(ta);
        self.held.entry(ta).or_default().insert(object);
    }

    /// Drop every lock `ta` holds, appending the released objects to `out`
    /// (the appended range is sorted in place).
    fn release_into(&mut self, ta: u64, out: &mut Vec<i64>) {
        let Some(objects) = self.held.remove(&ta) else {
            return;
        };
        let start = out.len();
        out.extend(objects.iter().copied());
        for &object in &out[start..] {
            if let Some(set) = self.writers.get_mut(&object) {
                set.remove(&ta);
                if set.is_empty() {
                    self.writers.remove(&object);
                }
            }
            if let Some(set) = self.readers.get_mut(&object) {
                set.remove(&ta);
                if set.is_empty() {
                    self.readers.remove(&object);
                }
            }
        }
        out[start..].sort_unstable();
    }
}

/// Stores requests that have been scheduled (and sent to the server), so that
/// protocol rules can reason about held locks, finished transactions and
/// prior conflicting operations.
#[derive(Debug)]
pub struct HistoryStore {
    table: Table,
    finished: HashSet<u64>,
    total_inserted: u64,
    locks: LockIndex,
    generation: u64,
    prune_epoch: u64,
}

impl Default for HistoryStore {
    fn default() -> Self {
        HistoryStore::new()
    }
}

impl HistoryStore {
    /// Create an empty history.  The relation is named `history`, matching
    /// the paper's Listing 1.
    pub fn new() -> Self {
        HistoryStore {
            table: Table::new("history", Request::schema()),
            finished: HashSet::new(),
            total_inserted: 0,
            locks: LockIndex::default(),
            generation: 0,
            prune_epoch: 0,
        }
    }

    /// Record a scheduled request, returning the objects whose lock state
    /// changed: the request's own object for data operations, or every
    /// object whose locks a terminal released.
    pub fn insert(&mut self, request: &Request) -> SchedResult<Vec<i64>> {
        let mut changed = Vec::new();
        self.insert_into(request, &mut changed)?;
        Ok(changed)
    }

    /// [`HistoryStore::insert`] appending the changed objects to a
    /// caller-owned buffer — the round loop's variant, reusing one buffer
    /// across rounds instead of allocating a `Vec` per recorded request.
    pub fn insert_into(&mut self, request: &Request, changed: &mut Vec<i64>) -> SchedResult<()> {
        self.table.push(request.to_tuple())?;
        self.total_inserted += 1;
        self.generation += 1;
        match request.op {
            Operation::Commit | Operation::Abort => {
                self.finished.insert(request.ta);
                self.locks.release_into(request.ta, changed);
            }
            Operation::Write => {
                if !self.finished.contains(&request.ta) {
                    self.locks.add_write(request.object, request.ta);
                    changed.push(request.object);
                }
            }
            Operation::Read => {
                if !self.finished.contains(&request.ta) {
                    self.locks.add_read(request.object, request.ta);
                    changed.push(request.object);
                }
            }
        }
        Ok(())
    }

    /// Record a batch of scheduled requests, returning all changed objects
    /// (deduplicated, sorted).
    pub fn insert_batch<'a>(
        &mut self,
        requests: impl IntoIterator<Item = &'a Request>,
    ) -> SchedResult<Vec<i64>> {
        let mut changed = Vec::new();
        self.insert_batch_into(requests, &mut changed)?;
        Ok(changed)
    }

    /// [`HistoryStore::insert_batch`] appending into a caller-owned buffer
    /// (deduplicated and sorted over the whole buffer).
    pub fn insert_batch_into<'a>(
        &mut self,
        requests: impl IntoIterator<Item = &'a Request>,
        changed: &mut Vec<i64>,
    ) -> SchedResult<()> {
        for r in requests {
            self.insert_into(r, changed)?;
        }
        changed.sort_unstable();
        changed.dedup();
        Ok(())
    }

    /// Number of history rows currently retained.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Total rows ever inserted (monotonic, unaffected by pruning).
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// Monotonic counter bumped on every mutation (insert or prune).  The
    /// scheduler compares generations across rounds to skip re-evaluating
    /// an unchanged state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Monotonic counter bumped whenever pruning removed rows.  Consumers
    /// that maintain append-only views of the history (the persistent
    /// Datalog evaluation) use it to detect that rows were *removed*, which
    /// forces them to rebuild rather than extend.
    pub fn prune_epoch(&self) -> u64 {
        self.prune_epoch
    }

    /// The relational view (`history` relation) for rule evaluation.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The incrementally maintained per-object conflict index.
    pub fn lock_index(&self) -> &LockIndex {
        &self.locks
    }

    /// Whether a transaction has a commit or abort record in the history.
    pub fn is_finished(&self, ta: u64) -> bool {
        self.finished.contains(&ta)
    }

    /// Transactions with a terminal record.
    pub fn finished_transactions(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.finished.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Drop the rows of finished transactions — the "relevant prior executed
    /// requests" the paper keeps are exactly those of transactions that still
    /// hold locks.  Under SS2PL a finished transaction's history rows can no
    /// longer influence any scheduling decision, so pruning them bounds the
    /// history size (and therefore rule-evaluation time) by the number of
    /// *active* transactions.  Returns the number of pruned rows.
    ///
    /// Pruning never changes the lock index: finished transactions hold no
    /// locks by definition.
    pub fn prune_finished(&mut self) -> usize {
        if self.finished.is_empty() {
            return 0;
        }
        // Move the set out instead of cloning it: `delete_where` needs
        // `&mut self.table` while the predicate reads the set.
        let finished = std::mem::take(&mut self.finished);
        let removed = self.table.delete_where(|row| {
            Request::from_tuple(row)
                .map(|r| finished.contains(&r.ta))
                .unwrap_or(false)
        });
        if removed > 0 {
            self.generation += 1;
            self.prune_epoch += 1;
        } else {
            // Nothing matched; keep tracking the finished set.
            self.finished = finished;
        }
        removed
    }

    /// Objects write-locked by unfinished transactions, with the owning
    /// transaction — the declarative `WLockedObjects` CTE of Listing 1,
    /// answered from the incrementally maintained [`LockIndex`] instead of a
    /// full history scan.
    pub fn write_locked_objects(&self) -> Vec<(i64, u64)> {
        let mut out: Vec<(i64, u64)> = self
            .locks
            .writers
            .iter()
            .flat_map(|(&object, tas)| tas.iter().map(move |&ta| (object, ta)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Objects read-locked (and not yet released) by unfinished transactions
    /// that have not also written them — the `RLockedObjects` CTE, answered
    /// from the [`LockIndex`].
    pub fn read_locked_objects(&self) -> Vec<(i64, u64)> {
        let mut out: Vec<(i64, u64)> = self
            .locks
            .readers
            .iter()
            .flat_map(|(&object, tas)| tas.iter().map(move |&ta| (object, ta)))
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_finished_tracking() {
        let mut h = HistoryStore::new();
        h.insert(&Request::write(1, 10, 0, 100)).unwrap();
        h.insert(&Request::read(2, 11, 0, 101)).unwrap();
        h.insert(&Request::commit(3, 10, 1)).unwrap();
        assert_eq!(h.len(), 3);
        assert!(h.is_finished(10));
        assert!(!h.is_finished(11));
        assert_eq!(h.finished_transactions(), vec![10]);
        assert_eq!(h.total_inserted(), 3);
        assert!(h.generation() >= 3);
    }

    #[test]
    fn lock_oracles_match_listing_1_semantics() {
        let mut h = HistoryStore::new();
        // T10 wrote object 100 and is still active -> write lock.
        h.insert(&Request::write(1, 10, 0, 100)).unwrap();
        // T11 read object 101 and is still active -> read lock.
        h.insert(&Request::read(2, 11, 0, 101)).unwrap();
        // T12 wrote object 102 but committed -> no lock.
        h.insert(&Request::write(3, 12, 0, 102)).unwrap();
        h.insert(&Request::commit(4, 12, 1)).unwrap();
        // T13 read and then wrote object 103 -> write lock, not read lock.
        h.insert(&Request::read(5, 13, 0, 103)).unwrap();
        h.insert(&Request::write(6, 13, 1, 103)).unwrap();

        assert_eq!(h.write_locked_objects(), vec![(100, 10), (103, 13)]);
        assert_eq!(h.read_locked_objects(), vec![(101, 11)]);
    }

    #[test]
    fn insert_reports_changed_objects_and_releases() {
        let mut h = HistoryStore::new();
        assert_eq!(h.insert(&Request::write(1, 10, 0, 100)).unwrap(), vec![100]);
        assert_eq!(h.insert(&Request::read(2, 10, 1, 101)).unwrap(), vec![101]);
        // The terminal releases both locks.
        let mut released = h.insert(&Request::commit(3, 10, 2)).unwrap();
        released.sort_unstable();
        assert_eq!(released, vec![100, 101]);
        assert!(h.lock_index().is_empty());
        // Inserts for an already-finished transaction change no locks.
        assert!(h.insert(&Request::write(4, 10, 3, 102)).unwrap().is_empty());
    }

    #[test]
    fn read_after_own_write_does_not_create_a_read_lock() {
        let mut h = HistoryStore::new();
        h.insert(&Request::write(1, 20, 0, 5)).unwrap();
        h.insert(&Request::read(2, 20, 1, 5)).unwrap();
        assert_eq!(h.write_locked_objects(), vec![(5, 20)]);
        assert!(h.read_locked_objects().is_empty());
    }

    #[test]
    fn prune_drops_only_finished_transactions() {
        let mut h = HistoryStore::new();
        h.insert(&Request::write(1, 10, 0, 100)).unwrap();
        h.insert(&Request::commit(2, 10, 1)).unwrap();
        h.insert(&Request::write(3, 11, 0, 101)).unwrap();
        let epoch = h.prune_epoch();
        let removed = h.prune_finished();
        assert_eq!(removed, 2);
        assert_eq!(h.len(), 1);
        assert_eq!(h.prune_epoch(), epoch + 1);
        // The surviving active transaction keeps its lock.
        assert_eq!(h.write_locked_objects(), vec![(101, 11)]);
        // Pruning twice is a no-op.
        assert_eq!(h.prune_finished(), 0);
        // The monotone counter keeps the full count.
        assert_eq!(h.total_inserted(), 3);
    }

    #[test]
    fn batch_insert() {
        let mut h = HistoryStore::new();
        let batch = [Request::read(1, 1, 0, 5), Request::commit(2, 1, 1)];
        let changed = h.insert_batch(batch.iter()).unwrap();
        assert_eq!(changed, vec![5]);
        assert_eq!(h.len(), 2);
        assert!(h.is_finished(1));
    }

    #[test]
    fn lock_index_other_holder_queries() {
        let mut h = HistoryStore::new();
        h.insert(&Request::write(1, 10, 0, 7)).unwrap();
        h.insert(&Request::read(2, 11, 0, 8)).unwrap();
        let locks = h.lock_index();
        assert!(locks.write_locked_by_other(7, 99));
        assert!(!locks.write_locked_by_other(7, 10));
        assert!(locks.read_locked_by_other(8, 99));
        assert!(!locks.read_locked_by_other(8, 11));
        assert!(!locks.write_locked_by_other(12345, 1));
        assert_eq!(locks.len(), 2);
        assert_eq!(locks.held_objects(10).collect::<Vec<_>>(), vec![7]);
    }
}
