//! The threaded middleware: client workers, control instance and the
//! scheduler thread (the paper's Section 3.3 architecture).
//!
//! "When clients connect to the external scheduler, a control instance
//! creates a separate client worker for each connected client. … If the
//! client worker receives a request from its client, the request is, in a
//! first step, buffered in an incoming queue. Periodically, the scheduler
//! gets triggered …"
//!
//! In this implementation the control instance is [`Middleware`], client
//! workers are [`ClientHandle`]s (one per connected client, each backed by a
//! crossbeam channel into the scheduler thread), and the scheduler thread
//! runs the drain → rule → dispatch loop, replying to every client once its
//! request has been executed on the server.

use crate::dispatch::Dispatcher;
use crate::error::{SchedError, SchedResult};
use crate::protocol::SchedulingPolicy;
use crate::request::Request;
use crate::scheduler::{DeclarativeScheduler, SchedulerConfig};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use txnstore::Statement;

/// A request travelling from a client worker to the scheduler thread.
struct ClientMessage {
    statement: Statement,
    sla: Option<crate::request::SlaMeta>,
    reply: Sender<SchedResult<()>>,
}

/// Messages understood by the scheduler thread.
enum ControlMessage {
    /// A client request to schedule and execute.
    Request(ClientMessage),
    /// Orderly shutdown: drain what is pending, then stop.
    Shutdown,
}

/// Handle held by one connected client; cheap to clone per client worker.
#[derive(Clone)]
pub struct ClientHandle {
    sender: Sender<ControlMessage>,
}

impl ClientHandle {
    /// Submit a statement and wait until the middleware has scheduled and
    /// executed it on the server.
    pub fn execute(&self, statement: Statement) -> SchedResult<()> {
        self.execute_with_sla(statement, None)
    }

    /// Submit a statement carrying SLA metadata.
    pub fn execute_with_sla(
        &self,
        statement: Statement,
        sla: Option<crate::request::SlaMeta>,
    ) -> SchedResult<()> {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender
            .send(ControlMessage::Request(ClientMessage {
                statement,
                sla,
                reply: reply_tx,
            }))
            .map_err(|_| SchedError::ChannelClosed {
                endpoint: "scheduler thread",
            })?;
        reply_rx.recv().map_err(|_| SchedError::ChannelClosed {
            endpoint: "scheduler thread",
        })?
    }

    /// Submit a whole transaction at once and wait until every statement has
    /// been scheduled and executed.  Submitting at transaction granularity
    /// lets the scheduler batch the statements into one round where the rule
    /// admits them (`enforce_intra_order` keeps the in-transaction order
    /// correct), and is the submission model the sharded middleware requires
    /// — the router must see a transaction's full object footprint up front
    /// to decide between the single-shard fast path and escalation.
    pub fn execute_transaction(&self, statements: Vec<Statement>) -> SchedResult<()> {
        let mut pending_replies = Vec::with_capacity(statements.len());
        for statement in statements {
            let (reply_tx, reply_rx) = bounded(1);
            self.sender
                .send(ControlMessage::Request(ClientMessage {
                    statement,
                    sla: None,
                    reply: reply_tx,
                }))
                .map_err(|_| SchedError::ChannelClosed {
                    endpoint: "scheduler thread",
                })?;
            pending_replies.push(reply_rx);
        }
        for reply_rx in pending_replies {
            reply_rx.recv().map_err(|_| SchedError::ChannelClosed {
                endpoint: "scheduler thread",
            })??;
        }
        Ok(())
    }
}

/// Summary returned when the middleware shuts down.
#[derive(Debug, Clone, Copy)]
pub struct MiddlewareReport {
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Requests scheduled and executed.
    pub requests_scheduled: u64,
    /// Data requests executed on the server.
    pub executed: u64,
    /// Transactions committed on the server.
    pub commits: u64,
    /// Full scheduler-side metrics (what `rounds`/`requests_scheduled`
    /// summarise), so sharded deployments can merge per-shard reports.
    pub scheduler: crate::metrics::SchedulerMetrics,
}

/// The control instance: owns the scheduler thread.
pub struct Middleware {
    sender: Sender<ControlMessage>,
    handle: JoinHandle<MiddlewareReport>,
}

impl Middleware {
    /// Start the middleware: a scheduler thread using `policy`/`config` over
    /// a dispatcher with a fresh `rows`-row benchmark table named `table`.
    pub fn start(
        policy: impl Into<SchedulingPolicy>,
        config: SchedulerConfig,
        table: impl Into<String>,
        rows: usize,
    ) -> SchedResult<Self> {
        let table = table.into();
        let dispatcher = Dispatcher::new(table.clone(), rows)?;
        let scheduler = DeclarativeScheduler::new(policy, config);
        let (sender, receiver) = unbounded::<ControlMessage>();
        let handle = std::thread::Builder::new()
            .name("declsched-scheduler".to_string())
            .spawn(move || scheduler_loop(scheduler, dispatcher, receiver))
            .expect("spawning the scheduler thread cannot fail");
        Ok(Middleware { sender, handle })
    }

    /// Connect a new client (the control instance "creates a separate client
    /// worker for each connected client").
    pub fn connect(&self) -> ClientHandle {
        ClientHandle {
            sender: self.sender.clone(),
        }
    }

    /// Shut down: tell the scheduler thread to drain what is pending, wait
    /// for it to stop and return its report.  Requests submitted through
    /// still-alive [`ClientHandle`]s after this call are not executed.
    pub fn shutdown(self) -> MiddlewareReport {
        let _ = self.sender.send(ControlMessage::Shutdown);
        drop(self.sender);
        self.handle
            .join()
            .expect("scheduler thread never panics during an orderly shutdown")
    }
}

/// The scheduler thread body.
fn scheduler_loop(
    mut scheduler: DeclarativeScheduler,
    mut dispatcher: Dispatcher,
    receiver: Receiver<ControlMessage>,
) -> MiddlewareReport {
    let started = Instant::now();
    // Replies waiting for their request (keyed by (ta, intra)) to execute.
    let mut waiting_replies: Vec<(crate::request::RequestKey, Sender<SchedResult<()>>)> =
        Vec::new();
    let mut disconnected = false;

    loop {
        // Collect what has arrived; block briefly so an idle middleware does
        // not spin.
        match receiver.recv_timeout(Duration::from_millis(1)) {
            Ok(first) => {
                let now_ms = started.elapsed().as_millis() as u64;
                let mut handle = |msg: ControlMessage, disconnected: &mut bool| match msg {
                    ControlMessage::Request(msg) => {
                        enqueue(&mut scheduler, msg, &mut waiting_replies, now_ms)
                    }
                    ControlMessage::Shutdown => *disconnected = true,
                };
                handle(first, &mut disconnected);
                // Drain any further messages that are already queued up.
                while let Ok(msg) = receiver.try_recv() {
                    handle(msg, &mut disconnected);
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                disconnected = true;
            }
        }

        let now_ms = started.elapsed().as_millis() as u64;
        // When shutting down, keep scheduling until everything drained.
        let batch = if disconnected && (scheduler.queued() > 0 || scheduler.pending() > 0) {
            Some(scheduler.run_round(now_ms))
        } else {
            match scheduler.tick(now_ms) {
                Ok(Some(b)) => Some(Ok(b)),
                Ok(None) => None,
                Err(e) => Some(Err(e)),
            }
        };

        if let Some(batch) = batch {
            match batch {
                Ok(batch) => {
                    if disconnected && batch.is_empty() && scheduler.queued() == 0 {
                        // Shutdown fixpoint: no new requests can arrive and
                        // the rule admits nothing more (e.g. a client went
                        // away without committing).  Fail the stragglers
                        // instead of spinning forever.
                        for (key, reply) in waiting_replies.drain(..) {
                            let _ = reply.send(Err(SchedError::TransactionFinished { ta: key.ta }));
                        }
                        break;
                    }
                    for request in &batch.requests {
                        let result = dispatcher.execute_request(request);
                        reply_to(&mut waiting_replies, request, result);
                    }
                }
                Err(e) => {
                    // A rule failure fails every waiting client rather than
                    // hanging them.
                    for (_, reply) in waiting_replies.drain(..) {
                        let _ = reply.send(Err(e.clone()));
                    }
                }
            }
        }

        if disconnected && scheduler.queued() == 0 && scheduler.pending() == 0 {
            break;
        }
    }

    let metrics = scheduler.metrics();
    let totals = dispatcher.totals();
    MiddlewareReport {
        rounds: metrics.rounds,
        requests_scheduled: metrics.requests_scheduled,
        executed: totals.executed,
        commits: totals.commits,
        scheduler: metrics,
    }
}

fn enqueue(
    scheduler: &mut DeclarativeScheduler,
    msg: ClientMessage,
    waiting: &mut Vec<(crate::request::RequestKey, Sender<SchedResult<()>>)>,
    now_ms: u64,
) {
    let mut request = Request::from_statement(0, &msg.statement);
    if let Some(sla) = msg.sla {
        request = request.with_sla(sla);
    }
    let key = request.key();
    scheduler.submit(request, now_ms);
    waiting.push((key, msg.reply));
}

fn reply_to(
    waiting: &mut Vec<(crate::request::RequestKey, Sender<SchedResult<()>>)>,
    request: &Request,
    result: SchedResult<()>,
) {
    if let Some(pos) = waiting.iter().position(|(key, _)| *key == request.key()) {
        let (_, reply) = waiting.swap_remove(pos);
        let _ = reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Protocol, ProtocolKind};
    use crate::trigger::TriggerPolicy;
    use txnstore::TxnId;

    fn config() -> SchedulerConfig {
        SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 4,
            },
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn single_client_round_trip() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        client
            .execute(Statement::select(TxnId(1), 0, "bench", 5))
            .unwrap();
        client
            .execute(Statement::update(TxnId(1), 1, "bench", 5, 42))
            .unwrap();
        client
            .execute(Statement::commit(TxnId(1), 2, "bench"))
            .unwrap();
        let report = mw.shutdown();
        assert_eq!(report.executed, 2);
        assert_eq!(report.commits, 1);
        assert!(report.rounds >= 1);
        assert_eq!(report.requests_scheduled, 3);
    }

    #[test]
    fn concurrent_clients_on_conflicting_rows_all_complete() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            10,
        )
        .unwrap();
        let mut joins = Vec::new();
        for ta in 1..=4u64 {
            let client = mw.connect();
            joins.push(std::thread::spawn(move || {
                // Every client touches the same row 3, forcing the
                // declarative rule to serialise them.
                client
                    .execute(Statement::update(TxnId(ta), 0, "bench", 3, ta as i64))
                    .unwrap();
                client
                    .execute(Statement::commit(TxnId(ta), 1, "bench"))
                    .unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let report = mw.shutdown();
        assert_eq!(report.executed, 4);
        assert_eq!(report.commits, 4);
    }

    #[test]
    fn transaction_granularity_submission_round_trips() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        client
            .execute_transaction(vec![
                Statement::select(TxnId(1), 0, "bench", 5),
                Statement::update(TxnId(1), 1, "bench", 5, 42),
                Statement::commit(TxnId(1), 2, "bench"),
            ])
            .unwrap();
        let report = mw.shutdown();
        assert_eq!(report.executed, 2);
        assert_eq!(report.commits, 1);
        assert_eq!(report.scheduler.requests_scheduled, 3);
        assert_eq!(report.scheduler.requests_submitted, 3);
    }

    #[test]
    fn shutdown_with_no_clients_is_clean() {
        let mw = Middleware::start(Protocol::datalog(ProtocolKind::Fcfs), config(), "bench", 10)
            .unwrap();
        let report = mw.shutdown();
        assert_eq!(report.executed, 0);
        assert_eq!(report.rounds, 0);
    }
}
