//! The threaded middleware: client workers, control instance and the
//! scheduler thread (the paper's Section 3.3 architecture).
//!
//! "When clients connect to the external scheduler, a control instance
//! creates a separate client worker for each connected client. … If the
//! client worker receives a request from its client, the request is, in a
//! first step, buffered in an incoming queue. Periodically, the scheduler
//! gets triggered …"
//!
//! In this implementation the control instance is [`Middleware`], client
//! workers are [`ClientHandle`]s (one per connected client, each backed by a
//! crossbeam channel into the scheduler thread), and the scheduler thread
//! runs the drain → rule → dispatch loop, replying to every client once its
//! transaction has been executed on the server.
//!
//! Submission is **transaction-granular and pipelined**: a client hands over
//! a whole transaction (one or more [`Request`]s, SLA metadata intact) with
//! [`ClientHandle::submit_transaction`] and receives a [`TxnTicket`]
//! immediately, so one client thread can keep dozens of transactions in
//! flight.  The `session` crate's unified `Session` façade builds on exactly
//! this shape (the sharded router fleet offers the same contract).

use crate::dispatch::{DispatchReport, Dispatcher};
use crate::error::{SchedError, SchedResult};
use crate::metrics::SchedulerMetrics;
use crate::protocol::SchedulingPolicy;
use crate::request::{Request, RequestKey};
use crate::scheduler::{DeclarativeScheduler, SchedulerConfig};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use txnstore::Statement;

/// A whole client transaction travelling to the scheduler thread.
struct TxnMessage {
    requests: Vec<Request>,
    reply: Sender<SchedResult<()>>,
}

/// Messages understood by the scheduler thread.
enum ControlMessage {
    /// A client transaction to schedule and execute.
    Txn(TxnMessage),
    /// Orderly shutdown: drain what is pending, then stop.
    Shutdown,
}

/// A pending reply for one submitted transaction: resolves once every
/// request of the transaction has been scheduled and executed on the server.
///
/// Dropping a ticket without waiting is safe — the scheduler thread still
/// executes the transaction and simply discards the undeliverable reply.
pub struct TxnTicket {
    rx: Receiver<SchedResult<()>>,
}

impl TxnTicket {
    /// Block until the transaction has fully executed.
    pub fn wait(self) -> SchedResult<()> {
        self.rx.recv().map_err(|_| SchedError::ChannelClosed {
            endpoint: "scheduler thread",
        })?
    }

    /// The raw completion channel, for callers (like the unified `Session`
    /// façade) that multiplex many tickets.
    pub fn into_receiver(self) -> Receiver<SchedResult<()>> {
        self.rx
    }
}

/// Handle held by one connected client; cheap to clone per client worker.
#[derive(Clone)]
pub struct ClientHandle {
    sender: Sender<ControlMessage>,
}

impl ClientHandle {
    /// Submit a whole transaction — one or more requests in intra order,
    /// SLA metadata intact — without blocking.  The returned [`TxnTicket`]
    /// resolves once every request has been scheduled and executed, so a
    /// client can pipeline many transactions before waiting on any of them.
    pub fn submit_transaction(&self, requests: Vec<Request>) -> SchedResult<TxnTicket> {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender
            .send(ControlMessage::Txn(TxnMessage {
                requests,
                reply: reply_tx,
            }))
            .map_err(|_| SchedError::ChannelClosed {
                endpoint: "scheduler thread",
            })?;
        Ok(TxnTicket { rx: reply_rx })
    }

    /// Submit a statement and wait until the middleware has scheduled and
    /// executed it on the server.
    ///
    /// Deprecated: one blocking round trip per *statement* cannot pipeline
    /// and carries no transaction context.  The exact replacement is
    /// `session::Session::execute` with a single-statement `session::Txn`
    /// (`session::Session::submit` keeps it non-blocking).
    ///
    /// # Migration
    ///
    /// ```ignore
    /// // Before (deprecated, statement-at-a-time):
    /// handle.execute(Statement::update(TxnId(1), 0, "bench", 7, 7))?;
    ///
    /// // After — the statement becomes a typed one-request transaction:
    /// let scheduler = session::Scheduler::builder().table("bench", 100).build()?;
    /// let mut session = scheduler.connect();
    /// session.execute(session::Txn::new(1).write(7, 7))?;
    /// ```
    ///
    /// (The example is `ignore`d because `session` sits above this crate in
    /// the dependency graph; it compiles verbatim from any crate that
    /// depends on `session`.)
    #[deprecated(note = "use `session::Session::submit` (or `submit_transaction`) instead")]
    pub fn execute(&self, statement: Statement) -> SchedResult<()> {
        self.submit_transaction(vec![Request::from_statement(0, &statement)])?
            .wait()
    }

    /// Submit a statement carrying SLA metadata.
    ///
    /// Deprecated: the exact replacement is `session::Txn::with_sla`, which
    /// stamps the metadata on *every* request of the transaction so the SLA
    /// relation sees it end-to-end (this shim tagged one statement at a
    /// time, which is how SLA metadata used to get lost mid-transaction).
    ///
    /// # Migration
    ///
    /// ```ignore
    /// // Before (deprecated):
    /// handle.execute_with_sla(statement, Some(sla))?;
    ///
    /// // After — SLA attached once, carried by every request:
    /// session.execute(session::Txn::new(1).write(7, 7).commit().with_sla(sla))?;
    /// ```
    #[deprecated(note = "use `session::Txn::with_sla` through `session::Session` instead")]
    pub fn execute_with_sla(
        &self,
        statement: Statement,
        sla: Option<crate::request::SlaMeta>,
    ) -> SchedResult<()> {
        let mut request = Request::from_statement(0, &statement);
        if let Some(sla) = sla {
            request = request.with_sla(sla);
        }
        self.submit_transaction(vec![request])?.wait()
    }

    /// Submit a whole transaction at once and wait until every statement has
    /// been scheduled and executed.
    ///
    /// [`txnstore::Statement`]s carry no SLA metadata, so this entry point
    /// cannot either.  The exact replacement is `session::Session::submit`
    /// with `session::Txn::from_statements` — it preserves the statements'
    /// transaction id and intra order, returns an awaitable ticket instead
    /// of blocking, and `session::Txn::with_sla` restores SLA end-to-end.
    ///
    /// # Migration
    ///
    /// ```ignore
    /// // Before (deprecated, blocks until the whole transaction ran):
    /// handle.execute_transaction(statements)?;
    ///
    /// // After — same statements, non-blocking ticket, SLA optional:
    /// let ticket = session.submit(session::Txn::from_statements(&statements))?;
    /// ticket.wait()?;
    /// ```
    #[deprecated(note = "use `session::Session::submit` (or `submit_transaction`) instead")]
    pub fn execute_transaction(&self, statements: Vec<Statement>) -> SchedResult<()> {
        let requests = statements
            .iter()
            .map(|statement| Request::from_statement(0, statement))
            .collect();
        self.submit_transaction(requests)?.wait()
    }
}

/// Summary returned when the middleware shuts down.
#[derive(Debug, Clone)]
pub struct MiddlewareReport {
    /// Full scheduler-side metrics (rounds, requests scheduled, rule
    /// timings), mergeable across sharded deployments.
    pub scheduler: SchedulerMetrics,
    /// The dispatcher's totals (reads/writes/commits/aborts executed).
    pub dispatch: DispatchReport,
    /// Every request executed on the server, in execution order — the
    /// basis for cross-backend admission-order comparisons.
    pub executed_log: Vec<Request>,
    /// Final value of every benchmark-table row (index = row key), so
    /// final-state equivalence can be checked without reaching into the
    /// scheduler thread's engine.
    pub final_rows: Vec<i64>,
    /// Wall-clock duration from start to shutdown.
    pub wall: Duration,
}

/// The control instance: owns the scheduler thread.
pub struct Middleware {
    sender: Sender<ControlMessage>,
    handle: JoinHandle<MiddlewareReport>,
    depth: Arc<AtomicU64>,
}

impl Middleware {
    /// Start the middleware: a scheduler thread using `policy`/`config` over
    /// a dispatcher with a fresh `rows`-row benchmark table named `table`.
    pub fn start(
        policy: impl Into<SchedulingPolicy>,
        config: SchedulerConfig,
        table: impl Into<String>,
        rows: usize,
    ) -> SchedResult<Self> {
        Self::start_with_aux(policy, config, table, rows, Vec::new())
    }

    /// Like [`Middleware::start`], additionally registering auxiliary
    /// relations (e.g. `object_class` for consistency rationing) with the
    /// scheduler so aux-joining protocols work through the middleware.
    pub fn start_with_aux(
        policy: impl Into<SchedulingPolicy>,
        config: SchedulerConfig,
        table: impl Into<String>,
        rows: usize,
        aux_relations: Vec<relalg::Table>,
    ) -> SchedResult<Self> {
        Self::start_observed(
            policy,
            config,
            table,
            rows,
            aux_relations,
            obs::TraceSink::disabled(),
            Arc::new(obs::Registry::new()),
        )
    }

    /// Like [`Middleware::start_with_aux`], with the scheduler thread
    /// wired into an observability sink and metrics registry: the thread
    /// records per-request lifecycle events (`RoundDeferred → Qualified →
    /// Dispatched → Executed`) into a flight recorder obtained from
    /// `sink`, and registers the `core.*` counters (rounds, requests
    /// executed, rule failures, batch-size histogram, live queue-depth
    /// gauge) into `registry`.
    pub fn start_observed(
        policy: impl Into<SchedulingPolicy>,
        config: SchedulerConfig,
        table: impl Into<String>,
        rows: usize,
        aux_relations: Vec<relalg::Table>,
        sink: obs::TraceSink,
        registry: Arc<obs::Registry>,
    ) -> SchedResult<Self> {
        Self::start_chaos_observed(
            policy,
            config,
            table,
            rows,
            aux_relations,
            sink,
            registry,
            Arc::new(chaos::FaultInjector::disabled()),
        )
    }

    /// Like [`Middleware::start_observed`], additionally threading a chaos
    /// [`chaos::FaultInjector`] into the scheduler thread.  The loop fires
    /// [`chaos::Hook::WorkerRound`] (shard 0) once per iteration — `Stall`
    /// sleeps the loop, `Kill` turns the thread into a dead worker that
    /// fails everything in flight, purges its un-admitted state and
    /// refuses later submissions — and [`chaos::Hook::WorkerCommit`]
    /// before each terminal executes (`Stall` there is a lock-hold
    /// extension).
    #[allow(clippy::too_many_arguments)]
    pub fn start_chaos_observed(
        policy: impl Into<SchedulingPolicy>,
        config: SchedulerConfig,
        table: impl Into<String>,
        rows: usize,
        aux_relations: Vec<relalg::Table>,
        sink: obs::TraceSink,
        registry: Arc<obs::Registry>,
        injector: Arc<chaos::FaultInjector>,
    ) -> SchedResult<Self> {
        let table = table.into();
        let dispatcher = Dispatcher::new(table.clone(), rows)?;
        let mut scheduler = DeclarativeScheduler::new(policy, config);
        for aux in aux_relations {
            scheduler.register_aux_relation(aux);
        }
        let (sender, receiver) = unbounded::<ControlMessage>();
        let depth = Arc::new(AtomicU64::new(0));
        let gauge = Arc::clone(&depth);
        registry.adopt_gauge("core.queue_depth", Arc::clone(&depth));
        let handle = std::thread::Builder::new()
            .name("declsched-scheduler".to_string())
            .spawn(move || {
                scheduler_loop(
                    scheduler, dispatcher, receiver, rows, gauge, sink, registry, injector,
                )
            })
            .expect("spawning the scheduler thread cannot fail");
        Ok(Middleware {
            sender,
            handle,
            depth,
        })
    }

    /// A cheap clone of the scheduler's live queue-depth gauge (incoming
    /// queue + pending relation, updated by the scheduler thread once per
    /// loop iteration) that outlives the middleware handle.  The session
    /// layer's overload-shedding policy samples this watermark.
    pub fn depth_gauge(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.depth)
    }

    /// Connect a new client (the control instance "creates a separate client
    /// worker for each connected client").
    pub fn connect(&self) -> ClientHandle {
        ClientHandle {
            sender: self.sender.clone(),
        }
    }

    /// Submit a transaction without connecting a dedicated client handle.
    pub fn submit_transaction(&self, requests: Vec<Request>) -> SchedResult<TxnTicket> {
        self.connect().submit_transaction(requests)
    }

    /// Shut down: tell the scheduler thread to drain what is pending, wait
    /// for it to stop and return its report.  Requests submitted through
    /// still-alive [`ClientHandle`]s after this call are not executed.
    pub fn shutdown(self) -> MiddlewareReport {
        let _ = self.sender.send(ControlMessage::Shutdown);
        drop(self.sender);
        self.handle
            .join()
            .expect("scheduler thread never panics during an orderly shutdown")
    }
}

/// A client transaction waiting for its requests to execute.
struct Ticket {
    /// Request keys of this transaction still registered in `waiting`.
    remaining: usize,
    /// Taken by the first terminal outcome (all-executed or first failure).
    reply: Option<Sender<SchedResult<()>>>,
}

/// Ticket table of the scheduler thread: transactions in flight, keyed by
/// the request keys still owed to them.  Vacated slots are recycled
/// through a free list, so memory stays bounded by in-flight transactions
/// rather than growing with the middleware's lifetime.
#[derive(Default)]
struct Tickets {
    slots: Vec<Option<Ticket>>,
    free: Vec<usize>,
    waiting: HashMap<RequestKey, usize>,
}

impl Tickets {
    /// Accept a transaction: validate duplicate keys, then register every
    /// request against a fresh ticket.  Returns the requests on success, or
    /// replies with the failure and returns `None`.
    fn accept(
        &mut self,
        requests: Vec<Request>,
        reply: Sender<SchedResult<()>>,
    ) -> Option<Vec<Request>> {
        if requests.is_empty() {
            let _ = reply.send(Ok(()));
            return None;
        }
        // Validate the whole batch before touching any state: a duplicate
        // (ta, intra) — within the batch or against an in-flight ticket —
        // would make both submissions unaccountable.
        let mut batch_keys = HashSet::with_capacity(requests.len());
        for request in &requests {
            let key = request.key();
            if self.waiting.contains_key(&key) || !batch_keys.insert(key) {
                let _ = reply.send(Err(SchedError::Dispatch {
                    message: format!(
                        "duplicate request key T{}[{}] submitted to the scheduler",
                        key.ta, key.intra
                    ),
                }));
                return None;
            }
        }
        let ticket = Ticket {
            remaining: requests.len(),
            reply: Some(reply),
        };
        let index = match self.free.pop() {
            Some(index) => {
                self.slots[index] = Some(ticket);
                index
            }
            None => {
                self.slots.push(Some(ticket));
                self.slots.len() - 1
            }
        };
        for request in &requests {
            self.waiting.insert(request.key(), index);
        }
        Some(requests)
    }

    /// Resolve one executed (or failed) request against its ticket.  The
    /// slot is vacated only once *every* key of the transaction has
    /// resolved, so later keys of an already-failed transaction can never
    /// hit a recycled slot.
    fn resolve(&mut self, key: RequestKey, result: SchedResult<()>) {
        let Some(index) = self.waiting.remove(&key) else {
            return;
        };
        let Some(ticket) = self.slots[index].as_mut() else {
            return;
        };
        ticket.remaining -= 1;
        match result {
            Ok(()) => {
                if ticket.remaining == 0 {
                    if let Some(reply) = ticket.reply.take() {
                        let _ = reply.send(Ok(()));
                    }
                }
            }
            Err(e) => {
                if let Some(reply) = ticket.reply.take() {
                    let _ = reply.send(Err(e));
                }
            }
        }
        if ticket.remaining == 0 {
            self.slots[index] = None;
            self.free.push(index);
        }
    }

    /// Fail every transaction still waiting (shutdown fixpoint or rule
    /// failure).
    fn fail_all(&mut self, err: impl Fn(RequestKey) -> SchedError) {
        let waiting: Vec<(RequestKey, usize)> = self.waiting.drain().collect();
        for (key, index) in waiting {
            if let Some(ticket) = self.slots[index].as_mut() {
                if let Some(reply) = ticket.reply.take() {
                    let _ = reply.send(Err(err(key)));
                }
            }
        }
        // Nothing is waiting any more: every slot is vacant.
        self.slots.clear();
        self.free.clear();
    }
}

/// The flight recorder's submission-round map, on the emission hot path
/// twice per sampled request — hence [`obs::FastIdBuildHasher`] rather
/// than SipHash.
type SubmitRoundMap = HashMap<RequestKey, u64, obs::FastIdBuildHasher>;

/// The scheduler thread body.
#[allow(clippy::too_many_arguments)]
fn scheduler_loop(
    mut scheduler: DeclarativeScheduler,
    mut dispatcher: Dispatcher,
    receiver: Receiver<ControlMessage>,
    rows: usize,
    depth: Arc<AtomicU64>,
    sink: obs::TraceSink,
    registry: Arc<obs::Registry>,
    injector: Arc<chaos::FaultInjector>,
) -> MiddlewareReport {
    let started = Instant::now();
    let mut tickets = Tickets::default();
    let mut executed_log: Vec<Request> = Vec::new();
    let mut disconnected = false;
    // Chaos `Kill`: the thread keeps answering messages (with errors) so
    // clients never hang, but schedules and executes nothing any more.
    let mut killed = false;

    // Flight recorder + live metrics.  The recorder is thread-owned (no
    // locking on emit) and flushes into the sink when this function
    // returns; `submit_round` remembers, for sampled transactions only,
    // the round number at submission so qualification can report how many
    // rounds the request sat pending.
    let mut recorder = sink.recorder();
    let mut submit_round: SubmitRoundMap = SubmitRoundMap::default();
    let mut round_no: u64 = 0;
    let rounds_ctr = registry.counter("core.rounds");
    let executed_ctr = registry.counter("core.requests_executed");
    let rule_failures_ctr = registry.counter("core.rule_failures");
    let batch_hist = registry.histogram("core.batch_size");

    // Whether the previous round executed anything: a productive round can
    // release locks that unblock still-pending requests, so the next round
    // runs immediately instead of first blocking on the channel (which
    // would add a hard 1 ms stall to every lock handoff under light load).
    let mut made_progress = false;
    loop {
        // Collect what has arrived; block briefly so an idle middleware does
        // not spin.
        let timeout = if made_progress {
            Duration::ZERO
        } else {
            Duration::from_millis(1)
        };
        match receiver.recv_timeout(timeout) {
            Ok(first) => {
                let now_ms = started.elapsed().as_millis() as u64;
                let mut handle = |msg: ControlMessage, disconnected: &mut bool| match msg {
                    ControlMessage::Txn(msg) => {
                        if killed {
                            // A dead worker refuses instead of hanging the
                            // client.
                            let _ = msg.reply.send(Err(SchedError::Dispatch {
                                message: "chaos: scheduler worker killed".to_string(),
                            }));
                            return;
                        }
                        if let Some(requests) = tickets.accept(msg.requests, msg.reply) {
                            for request in requests {
                                if recorder.samples(request.ta) {
                                    submit_round.insert(request.key(), round_no);
                                }
                                scheduler.submit(request, now_ms);
                            }
                        }
                    }
                    ControlMessage::Shutdown => *disconnected = true,
                };
                handle(first, &mut disconnected);
                // Drain any further messages that are already queued up.
                while let Ok(msg) = receiver.try_recv() {
                    handle(msg, &mut disconnected);
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                disconnected = true;
            }
        }

        // Chaos hook: once per loop iteration, after the mailbox drain.
        match injector.fire(chaos::Hook::WorkerRound { shard: 0 }) {
            Some(chaos::Fault::Stall { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            Some(chaos::Fault::Kill) if !killed => {
                killed = true;
                recorder.freeze_anomaly("chaos: scheduler worker killed");
                tickets.fail_all(|_| SchedError::Dispatch {
                    message: "chaos: scheduler worker killed".to_string(),
                });
                submit_round.clear();
                let now_ms = started.elapsed().as_millis() as u64;
                scheduler.purge_unscheduled(now_ms);
            }
            _ => {}
        }

        depth.store(
            (scheduler.queued() + scheduler.pending()) as u64,
            Ordering::Relaxed,
        );
        made_progress = false;

        let now_ms = started.elapsed().as_millis() as u64;
        // When shutting down, keep scheduling until everything drained.
        let batch = if killed {
            None
        } else if disconnected && (scheduler.queued() > 0 || scheduler.pending() > 0) {
            Some(scheduler.run_round(now_ms))
        } else {
            match scheduler.tick(now_ms) {
                Ok(Some(b)) => Some(Ok(b)),
                Ok(None) => None,
                Err(e) => Some(Err(e)),
            }
        };

        if let Some(batch) = batch {
            match batch {
                Ok(batch) => {
                    if disconnected && batch.is_empty() && scheduler.queued() == 0 {
                        // Shutdown fixpoint: no new requests can arrive and
                        // the rule admits nothing more (e.g. a client went
                        // away without committing).  Fail the stragglers
                        // instead of spinning forever.
                        tickets.fail_all(|key| SchedError::TransactionFinished { ta: key.ta });
                        submit_round.clear();
                        break;
                    }
                    made_progress = !batch.is_empty();
                    rounds_ctr.inc();
                    batch_hist.observe(batch.requests.len() as u64);
                    let qualified_at = if recorder.enabled() && !batch.is_empty() {
                        recorder.now_us()
                    } else {
                        0
                    };
                    // Batch execution is sequential, so a request's
                    // `Executed` stamp is exactly the next request's
                    // `Dispatched` moment — chaining `last_us` halves the
                    // hot-path clock reads.  The stamp goes stale only when
                    // an unsampled request executes in between (sampled
                    // tracing), in which case the next dispatch re-reads.
                    let mut last_us = qualified_at;
                    let mut last_fresh = true;
                    for request in &batch.requests {
                        let key = request.key();
                        let sampled = recorder.samples(request.ta);
                        if sampled {
                            let waited = round_no
                                .saturating_sub(submit_round.remove(&key).unwrap_or(round_no));
                            if waited > 0 {
                                recorder.emit_at(
                                    key.ta,
                                    key.intra,
                                    qualified_at,
                                    obs::EventKind::RoundDeferred { rounds: waited },
                                );
                            }
                            recorder.emit_at(
                                key.ta,
                                key.intra,
                                qualified_at,
                                obs::EventKind::Qualified,
                            );
                            if !last_fresh {
                                last_us = recorder.now_us();
                            }
                            recorder.emit_at(
                                key.ta,
                                key.intra,
                                last_us,
                                obs::EventKind::Dispatched,
                            );
                        }
                        // Chaos hook: a `Stall` right before a terminal
                        // executes extends every lock the transaction holds.
                        if request.op.is_terminal() {
                            if let Some(chaos::Fault::Stall { millis }) =
                                injector.fire(chaos::Hook::WorkerCommit { shard: 0 })
                            {
                                std::thread::sleep(Duration::from_millis(millis));
                            }
                        }
                        let result = dispatcher.execute_request(request);
                        executed_ctr.inc();
                        if sampled {
                            last_us = recorder.now_us();
                            recorder.emit_at(key.ta, key.intra, last_us, obs::EventKind::Executed);
                        }
                        last_fresh = sampled;
                        executed_log.push(*request);
                        tickets.resolve(key, result);
                    }
                    scheduler.recycle_batch(batch.requests);
                    round_no += 1;
                }
                Err(e) => {
                    // A rule failure fails every waiting client rather than
                    // hanging them.  The recorder freezes its window so the
                    // events leading up to the failure survive post-mortem.
                    rule_failures_ctr.inc();
                    recorder.freeze_anomaly(&format!("rule failure: {e}"));
                    let err = e.clone();
                    tickets.fail_all(|_| err.clone());
                    submit_round.clear();
                    if disconnected {
                        // The drain loop cannot make progress if the rule
                        // keeps erroring, so stop instead of spinning.
                        break;
                    }
                }
            }
        }

        if disconnected && scheduler.queued() == 0 && scheduler.pending() == 0 {
            break;
        }
    }

    // Publish the true final depth (0 on a clean drain) — the loop's last
    // sample predates the final round.
    depth.store(
        (scheduler.queued() + scheduler.pending()) as u64,
        Ordering::Relaxed,
    );

    MiddlewareReport {
        scheduler: scheduler.metrics(),
        dispatch: dispatcher.totals(),
        executed_log,
        final_rows: dispatcher.final_rows(rows),
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Protocol, ProtocolKind};
    use crate::request::SlaMeta;
    use crate::trigger::TriggerPolicy;
    use txnstore::TxnId;

    fn config() -> SchedulerConfig {
        SchedulerConfig {
            trigger: TriggerPolicy::Hybrid {
                interval_ms: 1,
                threshold: 4,
            },
            ..SchedulerConfig::default()
        }
    }

    #[test]
    fn single_client_round_trip() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        client
            .submit_transaction(vec![Request::read(0, 1, 0, 5)])
            .unwrap()
            .wait()
            .unwrap();
        let mut write = Request::write(0, 1, 1, 5);
        write.write_value = Some(relalg::Value::Int(42));
        client
            .submit_transaction(vec![write])
            .unwrap()
            .wait()
            .unwrap();
        client
            .submit_transaction(vec![Request::commit(0, 1, 2)])
            .unwrap()
            .wait()
            .unwrap();
        let report = mw.shutdown();
        assert_eq!(report.dispatch.executed, 2);
        assert_eq!(report.dispatch.commits, 1);
        assert!(report.scheduler.rounds >= 1);
        assert_eq!(report.scheduler.requests_scheduled, 3);
        assert_eq!(report.executed_log.len(), 3);
        assert_eq!(report.final_rows.len(), 100);
        assert_eq!(report.final_rows[5], 42);
    }

    #[test]
    fn concurrent_clients_on_conflicting_rows_all_complete() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            10,
        )
        .unwrap();
        let mut joins = Vec::new();
        for ta in 1..=4u64 {
            let client = mw.connect();
            joins.push(std::thread::spawn(move || {
                // Every client touches the same row 3, forcing the
                // declarative rule to serialise them.
                client
                    .submit_transaction(vec![
                        Request::write(0, ta, 0, 3),
                        Request::commit(0, ta, 1),
                    ])
                    .unwrap()
                    .wait()
                    .unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let report = mw.shutdown();
        assert_eq!(report.dispatch.executed, 4);
        assert_eq!(report.dispatch.commits, 4);
    }

    #[test]
    fn pipelined_submission_keeps_many_transactions_in_flight() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        // 32 transactions in flight from one thread before any wait.
        let tickets: Vec<TxnTicket> = (1..=32u64)
            .map(|ta| {
                client
                    .submit_transaction(vec![
                        Request::write(0, ta, 0, ta as i64),
                        Request::commit(0, ta, 1),
                    ])
                    .unwrap()
            })
            .collect();
        // Wait out of submission order: reverse.
        for ticket in tickets.into_iter().rev() {
            ticket.wait().unwrap();
        }
        let report = mw.shutdown();
        assert_eq!(report.dispatch.commits, 32);
        assert_eq!(report.dispatch.executed, 32);
    }

    #[test]
    fn sla_metadata_travels_with_transaction_submissions() {
        // Regression for the old `execute_transaction` silently dropping SLA
        // metadata: with the SLA-priority protocol, a premium transaction
        // submitted *after* a free one must be dispatched first when both
        // land in the same round — which can only happen if the scheduler's
        // `sla` relation actually saw the metadata.
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::SlaPriority),
            SchedulerConfig {
                trigger: TriggerPolicy::Hybrid {
                    interval_ms: 40,
                    threshold: 64,
                },
                ..SchedulerConfig::default()
            },
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        let free = Request::read(0, 1, 0, 1).with_sla(SlaMeta {
            priority: 1,
            class: "free",
            arrival_ms: 0,
            deadline_ms: 1_000,
        });
        let premium = Request::read(0, 2, 0, 2).with_sla(SlaMeta {
            priority: 3,
            class: "premium",
            arrival_ms: 0,
            deadline_ms: 50,
        });
        let t_free = client.submit_transaction(vec![free]).unwrap();
        let t_premium = client.submit_transaction(vec![premium]).unwrap();
        t_free.wait().unwrap();
        t_premium.wait().unwrap();
        let report = mw.shutdown();
        let order: Vec<u64> = report.executed_log.iter().map(|r| r.ta).collect();
        assert_eq!(
            order,
            vec![2, 1],
            "premium (T2) must be dispatched before free (T1)"
        );
    }

    #[test]
    fn duplicate_request_keys_are_rejected() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            SchedulerConfig {
                trigger: TriggerPolicy::FillLevel { threshold: 1_000 },
                ..SchedulerConfig::default()
            },
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        let err = client
            .submit_transaction(vec![Request::write(0, 1, 0, 3), Request::write(0, 1, 0, 3)])
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate request key"));
        // Against an in-flight (still queued) ticket.
        let held = client
            .submit_transaction(vec![Request::write(0, 2, 0, 4), Request::commit(0, 2, 1)])
            .unwrap();
        let err = client
            .submit_transaction(vec![Request::write(0, 2, 0, 4)])
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate request key"));
        let report = mw.shutdown();
        held.wait().unwrap();
        assert_eq!(report.dispatch.commits, 1);
    }

    #[test]
    fn dropping_tickets_does_not_wedge_the_scheduler() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        for ta in 1..=8u64 {
            // Submit and immediately drop the ticket.
            let _ = client
                .submit_transaction(vec![
                    Request::write(0, ta, 0, ta as i64),
                    Request::commit(0, ta, 1),
                ])
                .unwrap();
        }
        let report = mw.shutdown();
        assert_eq!(report.dispatch.commits, 8);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_execute_shims_still_round_trip() {
        let mw = Middleware::start(
            Protocol::algebra(ProtocolKind::Ss2pl),
            config(),
            "bench",
            100,
        )
        .unwrap();
        let client = mw.connect();
        client
            .execute(Statement::select(TxnId(1), 0, "bench", 5))
            .unwrap();
        client
            .execute_transaction(vec![
                Statement::update(TxnId(1), 1, "bench", 5, 42),
                Statement::commit(TxnId(1), 2, "bench"),
            ])
            .unwrap();
        let report = mw.shutdown();
        assert_eq!(report.dispatch.executed, 2);
        assert_eq!(report.dispatch.commits, 1);
        assert_eq!(report.scheduler.requests_scheduled, 3);
        assert_eq!(report.scheduler.requests_submitted, 3);
    }

    #[test]
    fn shutdown_with_no_clients_is_clean() {
        let mw = Middleware::start(Protocol::datalog(ProtocolKind::Fcfs), config(), "bench", 10)
            .unwrap();
        let report = mw.shutdown();
        assert_eq!(report.dispatch.executed, 0);
        assert_eq!(report.scheduler.rounds, 0);
        assert!(report.executed_log.is_empty());
    }
}
